"""Sharded engine scaling — ingest and query throughput at 1/2/4/8 shards.

Measures wall-clock inserts/sec (batched ``extend``) and queries/sec of
:class:`repro.engine.ShardedEngine` against disk-backed shard
directories, with a *fixed per-shard resource budget*
(``buffer_capacity`` pages of buffer pool + decoded-node cache per
shard), the way a shard pool is provisioned in practice: adding shards
adds aggregate cache.  The single-shard configuration thrashes its
budget on the full working set; the sharded configurations split the
cell space so each shard's partition fits, which is where the aggregate
throughput scaling comes from — this machine has one core, so none of
the reported speedup is thread parallelism.

Query results are asserted byte-identical across every shard count.

Run directly to (re)generate ``BENCH_shard.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py

or through pytest (``pytest benchmarks/bench_shard_scaling.py``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import tempfile
import time

from repro.bench import active_params
from repro.core import Rect
from repro.engine import SerialExecutor, ShardedEngine

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_shard.json"
HOTPATH_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_hotpath.json"

#: Shard counts swept by the benchmark.
SHARD_COUNTS = (1, 2, 4, 8)

#: Fixed per-shard budget (pages of buffer pool; the decoded-node cache
#: follows it).  Chosen so the full SCALED working set overflows one
#: shard's budget but fits the 4-shard aggregate.
BUFFER_PER_SHARD = 64


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    from repro.datagen import GSTDGenerator

    return GSTDGenerator(config).materialize()


def _query_batch(engine, count: int = 60):
    """Evaluate a fixed random query batch; returns (seconds, results)."""
    rng = random.Random(1234)
    space = engine.config.space
    q_lo, q_hi = engine.config.queriable_period(engine.now)
    queries = []
    for _ in range(count):
        x0 = rng.randrange(space.x_hi - 2000)
        y0 = rng.randrange(space.y_hi - 2000)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        queries.append((Rect(x0, y0, x0 + 2000, y0 + 2000),
                        t_lo, t_lo + rng.randrange(0, 2000)))
    started = time.perf_counter()
    results = []
    for area, t_lo, t_hi in queries:
        result = engine.query_interval(area, t_lo, t_hi)
        results.append(sorted((e.oid, e.x, e.y, e.s) for e in result))
    elapsed = time.perf_counter() - started
    return elapsed, results


def _run_one(params, stream, n_shards: int, base_dir: str) -> dict:
    config = dataclasses.replace(params.index, n_shards=n_shards,
                                 buffer_capacity=BUFFER_PER_SHARD)
    path = pathlib.Path(base_dir) / f"shards-{n_shards}.d"
    with ShardedEngine(config, path, executor=SerialExecutor()) as engine:
        started = time.perf_counter()
        engine.extend(stream)
        ingest_seconds = time.perf_counter() - started
        ingest_accesses = engine.stats.node_accesses
        query_seconds, results = _query_batch(engine,
                                              params.query_count)
        engine.save()
    return {
        "n_shards": n_shards,
        "inserts_per_sec": round(len(stream) / ingest_seconds, 1),
        "queries_per_sec": round(len(results) / query_seconds, 1),
        "ingest_node_accesses": ingest_accesses,
        "_results": results,
    }


def run_shard_scaling_bench(params=None) -> dict:
    params = params if params is not None else active_params()
    stream = _stream(params)
    with tempfile.TemporaryDirectory() as base_dir:
        rows = [_run_one(params, stream, n, base_dir)
                for n in SHARD_COUNTS]
    baseline_results = rows[0].pop("_results")
    for row in rows[1:]:
        assert row.pop("_results") == baseline_results, \
            f"{row['n_shards']}-shard query results diverge"
    base_ingest = rows[0]["inserts_per_sec"]
    base_query = rows[0]["queries_per_sec"]
    for row in rows:
        row["ingest_speedup"] = round(row["inserts_per_sec"]
                                      / base_ingest, 2)
        row["query_speedup"] = round(row["queries_per_sec"]
                                     / base_query, 2)
    record = {
        "figure": "shard-scaling",
        "scale": params.name,
        "records": len(stream),
        "buffer_pages_per_shard": BUFFER_PER_SHARD,
        "shards": rows,
        "ingest_speedup_at_4_shards": next(
            r["ingest_speedup"] for r in rows if r["n_shards"] == 4),
    }
    if HOTPATH_PATH.exists():
        hotpath = json.loads(HOTPATH_PATH.read_text())
        record["hotpath_baseline_inserts_per_sec"] = \
            hotpath.get("inserts_per_sec_batched")
    return record


def test_shard_scaling(benchmark, params):
    record = run_shard_scaling_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    benchmark.extra_info["ingest_speedup_at_4_shards"] = \
        record["ingest_speedup_at_4_shards"]
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    # Noise guard below the headline 1.5x so shared CI runners don't
    # flake; the committed BENCH_shard.json carries the real figure.
    assert record["ingest_speedup_at_4_shards"] >= 1.2


if __name__ == "__main__":
    rec = run_shard_scaling_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
