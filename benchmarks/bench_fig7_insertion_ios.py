"""Fig. 7 — insertion node accesses, SWST vs MV3R, vs dataset size.

Paper expectation: the two indexes are *comparable* in insertion IOs (each
SWST report costs two insertions + one deletion; each MV3R report one
update + one insertion), both growing linearly with the record count.
"""

import dataclasses

import pytest

from repro.bench import build_mv3r, build_swst
from repro.datagen import GSTDGenerator


def _stream(params, num_objects):
    config = dataclasses.replace(params.stream, num_objects=num_objects)
    return GSTDGenerator(config).materialize()


@pytest.mark.parametrize("size_idx", [0, 1, -1],
                         ids=["small", "medium", "large"])
def test_fig7_swst_insertion(benchmark, params, size_idx):
    reports = _stream(params, params.dataset_objects[size_idx])

    def build():
        index, result = build_swst(reports, params.index)
        index.close()
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "Fig.7"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["records"] = result.records
    benchmark.extra_info["node_accesses"] = result.node_accesses
    benchmark.extra_info["accesses_per_record"] = round(
        result.accesses_per_record, 3)
    assert result.node_accesses > 0


@pytest.mark.parametrize("size_idx", [0, 1, -1],
                         ids=["small", "medium", "large"])
def test_fig7_mv3r_insertion(benchmark, params, size_idx):
    reports = _stream(params, params.dataset_objects[size_idx])

    def build():
        index, result = build_mv3r(reports,
                                   page_size=params.index.page_size,
                                   buffer_capacity=params.index
                                   .buffer_capacity)
        index.close()
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "Fig.7"
    benchmark.extra_info["index"] = "MV3R"
    benchmark.extra_info["records"] = result.records
    benchmark.extra_info["node_accesses"] = result.node_accesses
    benchmark.extra_info["accesses_per_record"] = round(
        result.accesses_per_record, 3)
    assert result.node_accesses > 0
