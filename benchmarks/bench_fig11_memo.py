"""Fig. 11 — isPresent memo benefit with 4% long-duration entries.

Paper expectation: with a small fraction of long-duration entries (0-20000
here vs the usual 0-2000), the memo prunes the huge overlap region those
entries induce, greatly reducing node accesses.  MV3R is unaffected by
long durations (version splits absorb them) — the memo is what keeps SWST
competitive on this workload.
"""

import dataclasses

import pytest

from repro.bench import build_swst, run_queries_swst
from repro.datagen import GSTDGenerator, WorkloadConfig, generate_queries

EXTENTS = [0.0, 0.05, 0.10]


@pytest.fixture(scope="module")
def long_stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1],
                                 long_fraction=0.04,
                                 long_interval_hi=20000)
    return GSTDGenerator(config).materialize()


@pytest.fixture(scope="module")
def long_config(params):
    return dataclasses.replace(params.index, d_max=20000,
                               duration_interval=1000)


@pytest.fixture(scope="module")
def with_memo(long_stream, long_config):
    index, _ = build_swst(long_stream, long_config)
    yield index
    index.close()


@pytest.fixture(scope="module")
def without_memo(long_stream, long_config):
    index, _ = build_swst(
        long_stream, dataclasses.replace(long_config, use_memo=False))
    yield index
    index.close()


def _queries(params, long_config, index, extent):
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=extent,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    return generate_queries(long_config, workload, index.now)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig11_with_memo(benchmark, params, long_config, with_memo, extent):
    queries = _queries(params, long_config, with_memo, extent)
    batch = benchmark(run_queries_swst, with_memo, queries)
    benchmark.extra_info["figure"] = "Fig.11"
    benchmark.extra_info["variant"] = "with memo"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig11_without_memo(benchmark, params, long_config, with_memo,
                            without_memo, extent):
    queries = _queries(params, long_config, with_memo, extent)
    batch = benchmark(run_queries_swst, without_memo, queries)
    benchmark.extra_info["figure"] = "Fig.11"
    benchmark.extra_info["variant"] = "without memo"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
