"""Fig. 10 — search node accesses vs query time interval (spatial 1%).

Paper expectation: MV3R wins at timeslice queries (one R-tree version to
visit); SWST wins once the interval exceeds ~4-5% of the temporal domain,
because it touches at most two B+ trees per spatial cell while MV3R walks
more and more versions.
"""

import pytest

from repro.bench import run_queries_mv3r, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

EXTENTS = [0.0, 0.05, 0.10, 0.15]


def _queries(params, index, extent):
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=extent,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    return generate_queries(params.index, workload, index.now)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig10_swst_search(benchmark, params, swst_index, extent):
    queries = _queries(params, swst_index, extent)
    batch = benchmark(run_queries_swst, swst_index, queries)
    benchmark.extra_info["figure"] = "Fig.10"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig10_mv3r_search(benchmark, params, swst_index, mv3r_index,
                           extent):
    queries = _queries(params, swst_index, extent)
    batch = benchmark(run_queries_mv3r, mv3r_index, queries)
    benchmark.extra_info["figure"] = "Fig.10"
    benchmark.extra_info["index"] = "MV3R"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
