"""Fig. 9 — search node accesses vs query spatial extent (temporal 10%).

Paper expectation: SWST beats MV3R up to ~4% spatial extent, with the gap
growing as the extent shrinks; the Z-curve key bits keep small-overlap
cells cheap.
"""

import pytest

from repro.bench import run_queries_mv3r, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

EXTENTS = [0.005, 0.01, 0.04]


def _queries(params, index, extent):
    workload = WorkloadConfig(spatial_extent=extent, temporal_extent=0.10,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    return generate_queries(params.index, workload, index.now)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig9_swst_search(benchmark, params, swst_index, extent):
    queries = _queries(params, swst_index, extent)
    batch = benchmark(run_queries_swst, swst_index, queries)
    benchmark.extra_info["figure"] = "Fig.9"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["spatial_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_fig9_mv3r_search(benchmark, params, swst_index, mv3r_index,
                          extent):
    queries = _queries(params, swst_index, extent)
    batch = benchmark(run_queries_mv3r, mv3r_index, queries)
    benchmark.extra_info["figure"] = "Fig.9"
    benchmark.extra_info["index"] = "MV3R"
    benchmark.extra_info["spatial_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
