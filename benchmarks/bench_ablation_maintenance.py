"""Ablation — sliding-window maintenance cost (Sections IV-C and V-A).

Expiring one full window:

* SWST drops the expired B+ tree of every spatial cell — O(pages), near
  zero accesses per expired entry;
* a 3D R-tree deletes each expired entry individually (with condensation
  and re-insertion);
* PIST deletes each expired *sub-entry* — splitting long entries multiplies
  the work, the paper's core argument against adapting PIST to a sliding
  window.
"""

import dataclasses

import pytest

from repro.baselines import PISTIndex, R3DIndex
from repro.bench import build_swst
from repro.bench.experiments import _closed_entries
from repro.datagen import GSTDGenerator


@pytest.fixture(scope="module")
def short_stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[0])
    horizon = 2 * params.index.w_max
    return [r for r in GSTDGenerator(config).materialize() if r.t < horizon]


def test_maintenance_swst_drop(benchmark, params, short_stream):
    cutoff = params.index.w_max
    expired = sum(1 for r in short_stream if r.t < cutoff)

    def setup():
        index, _ = build_swst(short_stream, params.index)
        return (index,), {}

    def drop(index):
        before = index.stats.snapshot()
        index.advance_time(2 * params.index.w_max)
        accesses = index.stats.diff(before).node_accesses
        index.close()
        return accesses

    accesses = benchmark.pedantic(drop, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "Ablation-M"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["expired_entries"] = expired
    benchmark.extra_info["accesses_per_entry"] = round(
        accesses / max(expired, 1), 4)
    assert accesses < max(expired, 1)


def test_maintenance_r3d_per_entry_delete(benchmark, params, short_stream):
    cutoff = params.index.w_max

    def setup():
        index = R3DIndex(page_size=params.index.page_size,
                         buffer_capacity=params.index.buffer_capacity)
        for report in short_stream:
            index.report(report.oid, report.x, report.y, report.t)
        return (index,), {}

    def expire(index):
        before = index.stats.snapshot()
        removed = index.expire_before(cutoff)
        accesses = index.stats.diff(before).node_accesses
        index.close()
        return removed, accesses

    removed, accesses = benchmark.pedantic(expire, setup=setup, rounds=1,
                                           iterations=1)
    benchmark.extra_info["figure"] = "Ablation-M"
    benchmark.extra_info["index"] = "3D R-tree"
    benchmark.extra_info["expired_entries"] = removed
    benchmark.extra_info["accesses_per_entry"] = round(
        accesses / max(removed, 1), 2)
    assert accesses > removed


def test_maintenance_pist_per_subentry_delete(benchmark, params,
                                              short_stream):
    cutoff = params.index.w_max
    closed = _closed_entries(short_stream, horizon=2 * params.index.w_max)

    def setup():
        index = PISTIndex(params.index.space, params.index.x_partitions,
                          params.index.y_partitions, lam=params.index.slide,
                          page_size=params.index.page_size,
                          buffer_capacity=params.index.buffer_capacity)
        index.build(closed)
        return (index,), {}

    def expire(index):
        before = index.stats.snapshot()
        removed = index.delete_expired(cutoff)
        accesses = index.stats.diff(before).node_accesses
        index.close()
        return removed, accesses

    removed, accesses = benchmark.pedantic(expire, setup=setup, rounds=1,
                                           iterations=1)
    benchmark.extra_info["figure"] = "Ablation-M"
    benchmark.extra_info["index"] = "PIST"
    benchmark.extra_info["expired_subentries"] = removed
    benchmark.extra_info["accesses_per_entry"] = round(
        accesses / max(removed, 1), 2)
