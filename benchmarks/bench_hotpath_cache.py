"""Storage hot path — decoded-node cache A/B on the Fig. 7 insertion workload.

Measures wall-clock inserts/sec and queries/sec with the decoded-node
cache disabled (``node_cache_capacity=0``, the pre-cache behaviour: one
parse per fetch, one serialisation per write) versus enabled (default),
plus the batched :meth:`SWSTIndex.extend` ingestion path.  Logical node
accesses must be *identical* in every configuration — the cache only
removes redundant CPU work and physical IO, never a counted access.

Run directly to (re)generate the ``BENCH_hotpath.json`` trajectory file at
the repository root::

    PYTHONPATH=src python benchmarks/bench_hotpath_cache.py

or through pytest (``pytest benchmarks/bench_hotpath_cache.py``), which
also asserts the cached/uncached equivalence.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import time

from repro.bench import active_params, build_swst, build_swst_batched
from repro.core import Rect, SWSTIndex
from repro.datagen import GSTDGenerator

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_hotpath.json"


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    return GSTDGenerator(config).materialize()


def _query_batch(index: SWSTIndex, params, count: int = 60):
    """Evaluate a fixed random query batch; returns (seconds, results,
    logical_reads)."""
    rng = random.Random(1234)
    space = index.config.space
    q_lo, q_hi = index.config.queriable_period(index.now)
    queries = []
    for _ in range(count):
        x0 = rng.randrange(space.x_hi - 2000)
        y0 = rng.randrange(space.y_hi - 2000)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        queries.append((Rect(x0, y0, x0 + 2000, y0 + 2000),
                        t_lo, t_lo + rng.randrange(0, 2000)))
    before = index.stats.snapshot()
    started = time.process_time()
    results = []
    for area, t_lo, t_hi in queries:
        result = index.query_interval(area, t_lo, t_hi)
        results.append(sorted((e.oid, e.s) for e in result))
    elapsed = time.process_time() - started
    return elapsed, results, index.stats.diff(before).logical_reads


def run_hotpath_bench(params=None) -> dict:
    """A/B the node cache; returns (and asserts) the trajectory record."""
    params = params if params is not None else active_params()
    stream = _stream(params)
    uncached_cfg = dataclasses.replace(params.index, node_cache_capacity=0)

    index_off, build_off = build_swst(stream, uncached_cfg, label="uncached")
    stats_off = index_off.stats.snapshot()
    q_secs_off, results_off, q_reads_off = _query_batch(index_off, params)
    index_off.close()

    index_on, build_on = build_swst(stream, params.index, label="cached")
    stats_on = index_on.stats.snapshot()
    q_secs_on, results_on, q_reads_on = _query_batch(index_on, params)
    parses_avoided = index_on.stats.node_cache_hits
    index_on.close()

    index_batched, build_batched = build_swst_batched(stream, params.index)
    index_batched.close()

    # The cache must be invisible to the paper's metrics.
    assert build_on.node_accesses == build_off.node_accesses, \
        "node cache changed insertion node accesses"
    assert build_batched.records == build_on.records
    assert stats_on.logical_reads == stats_off.logical_reads
    assert stats_on.logical_writes == stats_off.logical_writes
    assert q_reads_on == q_reads_off, \
        "node cache changed query node accesses"
    assert results_on == results_off, "node cache changed query results"

    def rate(count, seconds):
        return round(count / seconds, 1) if seconds > 0 else float("inf")

    record = {
        "figure": "hotpath",
        "scale": params.name,
        "records": build_on.records,
        "node_accesses": build_on.node_accesses,
        "node_parses_avoided": parses_avoided,
        "inserts_per_sec_uncached": rate(build_off.records,
                                         build_off.cpu_seconds),
        "inserts_per_sec_cached": rate(build_on.records,
                                       build_on.cpu_seconds),
        "inserts_per_sec_batched": rate(build_batched.records,
                                        build_batched.cpu_seconds),
        "insert_speedup": round(build_off.cpu_seconds
                                / max(build_on.cpu_seconds, 1e-9), 2),
        "batched_insert_speedup": round(build_off.cpu_seconds
                                        / max(build_batched.cpu_seconds,
                                              1e-9), 2),
        "queries_per_sec_uncached": rate(len(results_off), q_secs_off),
        "queries_per_sec_cached": rate(len(results_on), q_secs_on),
        "query_speedup": round(q_secs_off / max(q_secs_on, 1e-9), 2),
    }
    return record


def test_hotpath_cache(benchmark, params):
    record = run_hotpath_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    for key, value in record.items():
        benchmark.extra_info[key] = value
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    assert record["node_parses_avoided"] > 0
    assert record["insert_speedup"] > 1.0


if __name__ == "__main__":
    rec = run_hotpath_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
