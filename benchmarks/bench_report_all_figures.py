"""Regenerate every paper table/figure and write the report.

Runs :func:`repro.bench.run_all` once and writes the rendered tables to
``benchmarks/results/figures.txt`` (and to stdout, visible with ``-s``).
This is the single entry point for the EXPERIMENTS.md numbers.
"""

import pathlib

from repro.bench import run_all

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_regenerate_all_figures(benchmark, params):
    results = benchmark.pedantic(run_all, args=(params,), rounds=1,
                                 iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = "\n\n".join(result.render() for result in results)
    header = (f"SWST reproduction — all figures at scale "
              f"'{params.name}'\n\n")
    (RESULTS_DIR / "figures.txt").write_text(header + rendered + "\n")
    print()
    print(header + rendered)
    benchmark.extra_info["figures"] = [r.exp_id for r in results]
    assert len(results) == 14
