"""Ablation — Z-curve spatial key bits on vs off.

The paper's Fig. 9 discussion: "Encoding the spatial information in the
key enabled us to greatly reduce the number of node accesses... Without
the space filling curve, the spatial cells with very small and large query
overlaps will require a similar number of node accesses."  This ablation
quantifies that claim directly.
"""

import dataclasses

import pytest

from repro.bench import build_swst, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

EXTENTS = [0.005, 0.01, 0.04]


@pytest.fixture(scope="module")
def indexes(params, stream):
    with_z, _ = build_swst(stream, params.index)
    without_z, _ = build_swst(
        stream, dataclasses.replace(params.index, spatial_keys=False))
    yield {"with-z": with_z, "without-z": without_z}
    with_z.close()
    without_z.close()


@pytest.mark.parametrize("variant", ["with-z", "without-z"])
@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_zcurve_ablation(benchmark, params, indexes, variant, extent):
    index = indexes[variant]
    workload = WorkloadConfig(spatial_extent=extent, temporal_extent=0.10,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    queries = generate_queries(params.index, workload, index.now)
    batch = benchmark(run_queries_swst, index, queries)
    benchmark.extra_info["figure"] = "Ablation-Z"
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["spatial_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
