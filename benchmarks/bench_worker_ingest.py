"""Durable ingest throughput — warm worker pool vs coordinator-only.

Both engines run the same 4-shard configuration and the same report
stream under the same durability contract: **every batch must be
durable before the next one is fed**.  The two paths price that
contract very differently:

* ``ShardedEngine`` (coordinator-only) has exactly one durability
  primitive — ``save()`` — so the durable loop is ``extend(batch);
  save()``: a full two-phase epoch commit (every dirty page, catalog,
  manifest flip, fsyncs) per batch.
* ``WorkerEngine`` acknowledges an ``extend`` only after each involved
  worker's write-ahead log group commit (one append + one fsync per
  shard per batch), so ``extend(batch)`` alone already satisfies the
  contract; page files are written once, at the final ``save()``.

A third, non-durable coordinator row (one save at the end) is reported
for context but not part of the headline ratio.  Query results are
asserted byte-identical across all three runs.

Run directly to (re)generate ``BENCH_worker.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_worker_ingest.py

or through pytest (``pytest benchmarks/bench_worker_ingest.py``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import tempfile
import time

from repro.bench import active_params
from repro.core import Rect
from repro.datagen import GSTDGenerator
from repro.engine import SerialExecutor, ShardedEngine, WorkerEngine

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_worker.json"

#: Shard count of the headline comparison.
N_SHARDS = 4

#: Reports per durable batch (each batch is a durability barrier —
#: the upstream acknowledgement granularity of a streaming ingester).
DURABLE_BATCH = 64


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    return GSTDGenerator(config).materialize()


def _query_batch(engine, count: int = 60):
    """Evaluate a fixed random query batch; returns (seconds, results)."""
    rng = random.Random(1234)
    space = engine.config.space
    q_lo, q_hi = engine.config.queriable_period(engine.now)
    queries = []
    for _ in range(count):
        x0 = rng.randrange(space.x_hi - 2000)
        y0 = rng.randrange(space.y_hi - 2000)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        queries.append((Rect(x0, y0, x0 + 2000, y0 + 2000),
                        t_lo, t_lo + rng.randrange(0, 2000)))
    started = time.perf_counter()
    results = []
    for area, t_lo, t_hi in queries:
        result = engine.query_interval(area, t_lo, t_hi)
        results.append(sorted((e.oid, e.x, e.y, e.s) for e in result))
    elapsed = time.perf_counter() - started
    return elapsed, results


def _batches(stream):
    for lo in range(0, len(stream), DURABLE_BATCH):
        yield stream[lo:lo + DURABLE_BATCH]


def _run_engine(engine, stream, query_count, save_per_batch):
    started = time.perf_counter()
    for batch in _batches(stream):
        engine.extend(batch)
        if save_per_batch:
            engine.save()
    ingest_seconds = time.perf_counter() - started
    query_seconds, results = _query_batch(engine, query_count)
    engine.save()
    return {
        "inserts_per_sec": round(len(stream) / ingest_seconds, 1),
        "queries_per_sec": round(len(results) / query_seconds, 1),
        "_results": results,
    }


def run_worker_ingest_bench(params=None) -> dict:
    params = params if params is not None else active_params()
    stream = _stream(params)
    config = dataclasses.replace(params.index, n_shards=N_SHARDS)
    rows = {}
    with tempfile.TemporaryDirectory() as base_dir:
        base = pathlib.Path(base_dir)
        with ShardedEngine(config, base / "durable.d",
                           executor=SerialExecutor()) as engine:
            rows["coordinator_durable"] = _run_engine(
                engine, stream, params.query_count, save_per_batch=True)
        with ShardedEngine(config, base / "lazy.d",
                           executor=SerialExecutor()) as engine:
            rows["coordinator_lazy"] = _run_engine(
                engine, stream, params.query_count, save_per_batch=False)
        with WorkerEngine(config, str(base / "workers.d")) as engine:
            rows["workers"] = _run_engine(
                engine, stream, params.query_count, save_per_batch=False)
    baseline = rows["coordinator_durable"].pop("_results")
    for name in ("coordinator_lazy", "workers"):
        assert rows[name].pop("_results") == baseline, \
            f"{name} query results diverge from the durable coordinator"
    speedup = round(rows["workers"]["inserts_per_sec"]
                    / rows["coordinator_durable"]["inserts_per_sec"], 2)
    return {
        "figure": "worker-durable-ingest",
        "scale": params.name,
        "records": len(stream),
        "n_shards": N_SHARDS,
        "durable_batch": DURABLE_BATCH,
        "engines": rows,
        "speedup_durable_ingest": speedup,
    }


def test_worker_ingest(benchmark, params):
    record = run_worker_ingest_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    benchmark.extra_info["speedup_durable_ingest"] = \
        record["speedup_durable_ingest"]
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    # Noise guard below the headline 1.5x so shared CI runners don't
    # flake; the committed BENCH_worker.json carries the real figure.
    assert record["speedup_durable_ingest"] >= 1.2


if __name__ == "__main__":
    rec = run_worker_ingest_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
