"""CI gate: resharding must not regress >20% vs the committed
``BENCH_reshard.json``.

Re-runs :func:`benchmarks.bench_reshard.run_reshard_bench` on the
current tree and compares the *ratio* metric (4->16 generation-flip
reshard over a full 16-shard rebuild) against the committed record.
The ratio is machine-independent — both sides are measured on the same
host in the same process — so the gate is meaningful on any CI runner.
A ratio more than 20% below the committed value fails the gate.

``read_availability`` (query throughput during an online reshard over
quiesced throughput) is checked against an absolute floor instead of a
regression ratio: its headline value rides on cache warmth, so
gate-to-committed would flake, but a collapse below the floor means
reads are stalling on the build — exactly the regression the online
protocol exists to prevent.  Absolute seconds/qps numbers are reported
but never gated.

Usage::

    PYTHONPATH=src python benchmarks/gate_reshard_regression.py
    PYTHONPATH=src python benchmarks/gate_reshard_regression.py --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_reshard import RESULT_PATH, run_reshard_bench  # noqa: E402

#: Ratio metrics gated against the committed record.
GATED = ("speedup_vs_rebuild",)

#: Online reads must keep at least this fraction of quiesced throughput.
AVAILABILITY_FLOOR = 0.5


def check_regression(committed: dict, fresh: dict,
                     tolerance: float) -> list[str]:
    """Return one message per gated metric regressing past ``tolerance``."""
    problems = []
    for metric in GATED:
        baseline = committed[metric]
        current = fresh[metric]
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            problems.append(
                f"{metric}: {current:.2f} is more than "
                f"{tolerance:.0%} below the committed {baseline:.2f} "
                f"(floor {floor:.2f})")
    if fresh["read_availability"] < AVAILABILITY_FLOOR:
        problems.append(
            f"read_availability: {fresh['read_availability']:.2f} is "
            f"below the floor {AVAILABILITY_FLOOR:.2f} — reads are "
            f"stalling on the online reshard build")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--committed", type=pathlib.Path,
                        default=RESULT_PATH,
                        help="committed BENCH_reshard.json to gate against")
    args = parser.parse_args(argv)

    committed = json.loads(args.committed.read_text())
    fresh = run_reshard_bench()
    print(json.dumps(fresh, indent=2))

    if committed.get("scale") != fresh.get("scale"):
        print(f"note: committed record is {committed.get('scale')!r} "
              f"scale, fresh run is {fresh.get('scale')!r}; ratios are "
              f"still comparable but absolute numbers are not")
    problems = check_regression(committed, fresh, args.tolerance)
    for problem in problems:
        print(f"REGRESSION: {problem}")
    if problems:
        return 1
    summary = ", ".join(f"{m}={fresh[m]:.2f} (committed {committed[m]:.2f})"
                        for m in GATED)
    print(f"reshard gate passed: {summary}, "
          f"read_availability={fresh['read_availability']:.2f} "
          f"(floor {AVAILABILITY_FLOOR:.2f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
