"""Extension benches for the results the paper describes but omits.

* **Skewed data** (Section V-B text): "Our index performs better when the
  data is skewed.  For skewed data, the isPresent memo becomes more
  useful.  Due to the space constraint, we do not include the results" —
  we include them.
* **Interleaved workload** (Section V-A): queries fired at steady-state
  checkpoints while the stream keeps flowing; per-query cost must stay
  flat as windows expire and trees are recycled.
"""

import dataclasses

import pytest

from repro.bench import build_swst, run_queries_swst
from repro.bench.experiments import experiment_interleaved
from repro.datagen import GSTDGenerator, WorkloadConfig, generate_queries

DISTRIBUTIONS = ["uniform", "gaussian", "skewed"]


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_skewed_distributions(benchmark, params, distribution):
    stream_cfg = dataclasses.replace(
        params.stream, num_objects=params.dataset_objects[-1],
        initial=distribution)
    stream = GSTDGenerator(stream_cfg).materialize()
    index, _ = build_swst(stream, params.index)
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    queries = generate_queries(params.index, workload, index.now)
    batch = benchmark(run_queries_swst, index, queries)
    benchmark.extra_info["figure"] = "Sec.V-B(skew)"
    benchmark.extra_info["distribution"] = distribution
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
    index.close()


def test_interleaved_checkpoints(benchmark, params):
    result = benchmark.pedantic(experiment_interleaved, args=(params,),
                                rounds=1, iterations=1)
    costs = [row[3] for row in result.rows]
    benchmark.extra_info["figure"] = "Interleaved"
    benchmark.extra_info["accesses_per_query_by_checkpoint"] = [
        round(cost, 2) for cost in costs]
    # No degradation: the last checkpoint is not dramatically worse than
    # the first steady-state one.
    assert costs, "no steady-state checkpoint reached"
    assert max(costs) <= max(4.0 * min(costs), min(costs) + 25)
