"""Serving front end — coalesced vs uncoalesced async query path.

Both runs drive the *same* serving stack (admission control, deadline
plumbing, the async facade's engine bridge) over the same engine and
the same concurrent workload; the only difference is the coalescer
knob:

* ``uncoalesced`` — ``max_batch=1``: every request takes its own
  scalar ``query_interval`` call (the A/B baseline).
* ``coalesced`` — ``max_batch=64``: concurrent requests sharing a
  temporal signature merge into one ``query_interval_many`` call.

Per-request responses are asserted byte-identical between the two runs
(same entries for every client/request pair), so the headline
``speedup_coalesced`` is throughput at *equal correctness*.  A third
section saturates a deliberately tiny admission window and records
that overload produced typed 503 rejections (the CI gate checks the
count is non-zero).

Run directly to (re)generate ``BENCH_serving.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_serving.py

or through pytest (``pytest benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import pathlib
import random
import time

from repro.bench import active_params
from repro.datagen import GSTDGenerator
from repro.engine import SerialExecutor, ShardedEngine
from repro.serve import AsyncEngine, Request, ServeApp

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_serving.json"

#: Shard count of the served engine.
N_SHARDS = 2

#: Concurrent client tasks in the throughput sections.
CLIENTS = 16

#: Queries each client issues back-to-back.
QUERIES_PER_CLIENT = 25

#: Distinct temporal signatures cycled by the workload (coalescing
#: merges within a signature, never across).
SIGNATURES = 4

#: Distinct dashboard tiles shared by the clients — several clients
#: poll the same tile, so flushes both batch (distinct rects, one
#: engine call) and collapse (identical rects evaluated once).
TILES = 6


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[0])
    return GSTDGenerator(config).materialize()


def _build_workload(engine):
    """Fixed query mix: clients polling a shared dashboard tile set.

    The shape mirrors the workload coalescing is built for — many
    dashboard-style clients polling a small set of map tiles at the
    *same few timestamps* (timeslice queries).  Clients outnumber
    tiles, so a flush typically holds several requests for the *same*
    rectangle: the coalescer collapses those to one engine-side
    evaluation and fans the result back out, and the remaining distinct
    tiles still share one plan and one fan-out per flush.
    """
    rng = random.Random(4321)
    space = engine.config.space
    q_lo, q_hi = engine.config.queriable_period(engine.now)
    signatures = []
    for _ in range(SIGNATURES):
        t_lo = rng.randrange(q_lo, q_hi + 1)
        signatures.append((t_lo, t_lo))
    side = max(1, (space.x_hi - space.x_lo) // 10)
    tiles = []
    for _ in range(TILES):
        x0 = rng.randrange(space.x_lo, space.x_hi - side)
        y0 = rng.randrange(space.y_lo, space.y_hi - side)
        tiles.append((x0, y0, x0 + side, y0 + side))
    rects = [tiles[i % TILES] for i in range(CLIENTS)]
    return signatures, rects


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _query_request(rect, t_lo, t_hi):
    body = json.dumps({"area": list(rect), "t_lo": t_lo, "t_hi": t_hi,
                       "strict": False}).encode()
    return Request(method="POST", path="/query", body=body)


async def _drive(app, signatures, rects):
    """CLIENTS concurrent tasks, each issuing its queries in order.

    Returns (elapsed_seconds, per-request latencies, response map
    keyed by (client, i) -> (status, entries)).
    """
    latencies: list[float] = []
    responses: dict[tuple[int, int], tuple[int, list]] = {}

    async def client(tag):
        rect = rects[tag]
        for i in range(QUERIES_PER_CLIENT):
            t_lo, t_hi = signatures[i % SIGNATURES]
            started = time.perf_counter()
            response = await app.handle(_query_request(rect, t_lo,
                                                       t_hi))
            latencies.append(time.perf_counter() - started)
            responses[(tag, i)] = (response.status,
                                   response.payload.get("entries"))

    started = time.perf_counter()
    await asyncio.gather(*(client(tag) for tag in range(CLIENTS)))
    elapsed = time.perf_counter() - started
    await app.drain()
    return elapsed, latencies, responses


#: Measured repetitions per section (the best round is reported, the
#: usual defence against scheduler noise on shared runners).
ROUNDS = 3


def _run_throughput(engine, *, max_batch):
    """One measured section: a warmup drive, then best-of-N rounds."""
    with contextlib.ExitStack() as stack:
        facade = AsyncEngine(engine)
        stack.callback(facade.close)
        app = ServeApp(facade, capacity=CLIENTS + 4,
                       max_batch=max_batch, max_linger=0.0)
        signatures, rects = _build_workload(engine)
        asyncio.run(_drive(app, signatures, rects))  # warmup
        best = None
        for _ in range(ROUNDS):
            elapsed, latencies, responses = asyncio.run(
                _drive(app, signatures, rects))
            assert all(status == 200
                       for status, _ in responses.values())
            if best is None or elapsed < best[0]:
                best = (elapsed, latencies, responses)
        elapsed, latencies, responses = best
        total = CLIENTS * QUERIES_PER_CLIENT
        queries = app.stats.queries
        calls = app.stats.engine_query_calls
        return {
            "queries": total,
            "queries_per_sec": round(total / elapsed, 1),
            "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3,
                                    3),
            "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3,
                                    3),
            "engine_query_calls": calls,
            "coalesce_ratio": round(queries / calls, 2),
            "collapsed_requests": app.stats.collapsed_requests,
            "_responses": responses,
        }


def _run_overload(engine):
    """Saturate a tiny admission window; overload must reject typed."""
    with contextlib.ExitStack() as stack:
        facade = AsyncEngine(engine)
        stack.callback(facade.close)
        app = ServeApp(facade, capacity=2, max_batch=1)
        signatures, rects = _build_workload(engine)
        t_lo, t_hi = signatures[0]

        async def burst():
            requests = [app.handle(_query_request(rects[i % CLIENTS],
                                                  t_lo, t_hi))
                        for i in range(24)]
            responses = await asyncio.gather(*requests)
            await app.drain()
            return responses

        responses = asyncio.run(burst())
        statuses = [r.status for r in responses]
        rejected = [r for r in responses if r.status == 503]
        assert all(status in (200, 503) for status in statuses)
        assert all(r.payload["error"] == "overloaded" for r in rejected)
        assert all("Retry-After" in r.headers for r in rejected)
        return {
            "burst": len(responses),
            "capacity": 2,
            "served": sum(1 for s in statuses if s == 200),
            "typed_rejections": len(rejected),
        }


def run_serving_bench(params=None) -> dict:
    params = params if params is not None else active_params()
    stream = _stream(params)
    config = dataclasses.replace(params.index, n_shards=N_SHARDS)
    with contextlib.ExitStack() as stack:
        engine = stack.enter_context(
            ShardedEngine(config, executor=SerialExecutor()))
        engine.extend(stream)
        uncoalesced = _run_throughput(engine, max_batch=1)
        coalesced = _run_throughput(engine, max_batch=64)
        overload = _run_overload(engine)
    baseline = uncoalesced.pop("_responses")
    assert coalesced.pop("_responses") == baseline, \
        "coalesced responses diverge from the uncoalesced baseline"
    speedup = round(coalesced["queries_per_sec"]
                    / uncoalesced["queries_per_sec"], 2)
    return {
        "figure": "serving-coalescing",
        "scale": params.name,
        "records": len(stream),
        "n_shards": N_SHARDS,
        "clients": CLIENTS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "signatures": SIGNATURES,
        "paths": {"uncoalesced": uncoalesced, "coalesced": coalesced},
        "overload": overload,
        "speedup_coalesced": speedup,
        "coalesce_ratio": coalesced["coalesce_ratio"],
    }


def test_serving(benchmark, params):
    record = run_serving_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    benchmark.extra_info["speedup_coalesced"] = \
        record["speedup_coalesced"]
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    # Noise guard below the headline figure so shared CI runners don't
    # flake; the committed BENCH_serving.json carries the real figure.
    assert record["speedup_coalesced"] >= 1.5
    assert record["overload"]["typed_rejections"] >= 1


if __name__ == "__main__":
    rec = run_serving_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
