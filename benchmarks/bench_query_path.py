"""Query fast path — plan cache + batched multi-rectangle evaluation A/B.

The workload is a *dashboard refresh*: a fixed panel of rectangles
mixing the paper's Fig. 9 spatial extents (1%–16% of the space edge)
and Fig. 10 interval lengths (1%–16% of the window), re-evaluated
several times against the same sliding window — the repeated-query
shape the plan cache targets.  Three modes answer the identical panel:

1. ``baseline``  — plan cache disabled (``PlanCache(0)``), one
   :meth:`SWSTIndex.query_interval` per rectangle (the pre-fast-path
   behaviour: classification, plan build, memo pruning and key-range
   generation re-run for every query).
2. ``cached``    — the same scalar loop with the plan cache on.
3. ``batched``   — :meth:`SWSTIndex.query_interval_many` per refresh,
   sharing one plan and one level-wise descent per (cell, tree) across
   the whole panel.

Per-rectangle entries must be identical in all three modes, and the
scalar modes must report byte-identical node accesses (the cache only
removes CPU work, never a counted access).  Speedups are recorded as
machine-independent ratios; the CI gate compares them against the
committed ``BENCH_query.json``.

Run directly to (re)generate the trajectory file at the repo root::

    PYTHONPATH=src python benchmarks/bench_query_path.py
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import time

from repro.bench import active_params, build_swst
from repro.core import QueryStats, Rect, SWSTIndex
from repro.core.plan import PlanCache
from repro.datagen import GSTDGenerator

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_query.json"

REFRESHES = 5


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    return GSTDGenerator(config).materialize()


def _dashboard(index: SWSTIndex, params) -> tuple[list[Rect], int, int]:
    """The panel: rectangles over Fig. 9 extents, one Fig. 10 interval."""
    rng = random.Random(4321)
    space = index.config.space
    q_lo, q_hi = index.config.queriable_period(index.now)
    panels = []
    extents = [space.x_hi // 100, space.x_hi // 25, space.x_hi // 12,
               space.x_hi // 6]  # ~1%, 4%, 8%, 16% of the space edge
    for i in range(params.query_count):
        edge = extents[i % len(extents)]
        x0 = rng.randrange(space.x_hi - edge)
        y0 = rng.randrange(space.y_hi - edge)
        panels.append(Rect(x0, y0, x0 + edge, y0 + edge))
    length = min(index.config.window // 12, q_hi - q_lo)  # ~8% of W
    t_hi = q_hi
    t_lo = t_hi - length
    return panels, t_lo, t_hi


def _run_scalar(index, panels, t_lo, t_hi):
    stats = QueryStats()
    started = time.process_time()
    results = []
    for _ in range(REFRESHES):
        for area in panels:
            result = index.query_interval(area, t_lo, t_hi)
            results.append(sorted((e.oid, e.s) for e in result))
            stats.merge(result.stats)
    return time.process_time() - started, results, stats


def _run_batched(index, panels, t_lo, t_hi):
    stats = QueryStats()
    started = time.process_time()
    results = []
    for _ in range(REFRESHES):
        batch = index.query_interval_many(panels, t_lo, t_hi)
        for result in batch.results:
            results.append(sorted((e.oid, e.s) for e in result))
        stats.merge(batch.stats)
    return time.process_time() - started, results, stats


def run_query_path_bench(params=None) -> dict:
    """A/B the query fast path; returns (and asserts) the record."""
    params = params if params is not None else active_params()
    stream = _stream(params)
    index, _ = build_swst(stream, params.index, label="query-path")
    try:
        panels, t_lo, t_hi = _dashboard(index, params)
        queries = REFRESHES * len(panels)

        # Baseline: cache disabled.  PlanCache(0) retains nothing, so
        # every query re-derives classification, plan and key ranges.
        index._plans = PlanCache(0)
        base_secs, base_results, base_stats = _run_scalar(
            index, panels, t_lo, t_hi)

        index._plans = PlanCache(params.index.plan_cache_size)
        cached_secs, cached_results, cached_stats = _run_scalar(
            index, panels, t_lo, t_hi)

        index._plans = PlanCache(params.index.plan_cache_size)
        many_secs, many_results, many_stats = _run_batched(
            index, panels, t_lo, t_hi)
    finally:
        index.close()

    # Correctness before speed: identical entries in all three modes,
    # byte-identical node accesses between the scalar modes.
    assert cached_results == base_results, \
        "plan cache changed query results"
    assert many_results == base_results, \
        "batched evaluation changed query results"
    assert cached_stats.node_accesses == base_stats.node_accesses, \
        "plan cache changed query node accesses"
    assert cached_stats.plan_cache_hits == queries - 1
    assert many_stats.plan_cache_hits == REFRESHES - 1
    assert many_stats.node_accesses < base_stats.node_accesses, \
        "batched descents should share node accesses"

    def rate(count, seconds):
        return round(count / seconds, 1) if seconds > 0 else float("inf")

    record = {
        "figure": "query_path",
        "scale": params.name,
        "panel_rects": len(panels),
        "refreshes": REFRESHES,
        "queries": queries,
        "interval": [t_lo, t_hi],
        "queries_per_sec_baseline": rate(queries, base_secs),
        "queries_per_sec_cached": rate(queries, cached_secs),
        "queries_per_sec_batched": rate(queries, many_secs),
        "speedup_cached": round(base_secs / max(cached_secs, 1e-9), 2),
        "speedup_batched": round(base_secs / max(many_secs, 1e-9), 2),
        "node_accesses_scalar": base_stats.node_accesses,
        "node_accesses_batched": many_stats.node_accesses,
        "node_access_reduction": round(
            base_stats.node_accesses
            / max(many_stats.node_accesses, 1), 2),
        "plan_cache_hits_cached": cached_stats.plan_cache_hits,
        "plan_cache_hits_batched": many_stats.plan_cache_hits,
    }
    return record


def test_query_path(benchmark, params):
    record = run_query_path_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    for key, value in record.items():
        benchmark.extra_info[key] = value
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    # The acceptance floor for the fast path on the repeated-dashboard
    # workload (observed ~25-35x at the scaled parameters).
    assert record["speedup_cached"] >= 5.0
    assert record["speedup_batched"] >= 5.0
    assert record["node_access_reduction"] > 1.0


if __name__ == "__main__":
    rec = run_query_path_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
