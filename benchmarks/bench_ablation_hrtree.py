"""Ablation — HR-tree (an R-tree per timestamp) vs SWST (Section II).

The paper: HR-trees "can support efficient deletion, but they are not
suitable for interval queries and require very large storage space."
This bench quantifies all three claims on the shared workload.
"""

import dataclasses

import pytest

from repro.baselines import HRTree
from repro.bench import build_swst, run_queries_swst
from repro.datagen import GSTDGenerator, WorkloadConfig, generate_queries

EXTENTS = [0.0, 0.10]


@pytest.fixture(scope="module")
def small_stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[0])
    return GSTDGenerator(config).materialize()


@pytest.fixture(scope="module")
def hr_index(params, small_stream):
    index = HRTree(page_size=params.index.page_size,
                   buffer_capacity=params.index.buffer_capacity)
    for report in small_stream:
        index.report(report.oid, report.x, report.y, report.t)
    yield index
    index.close()


@pytest.fixture(scope="module")
def swst_small(params, small_stream):
    index, _ = build_swst(small_stream, params.index)
    yield index
    index.close()


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_hrtree_search(benchmark, params, hr_index, swst_small, extent):
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=extent,
                              temporal_domain=params.temporal_domain,
                              count=max(params.query_count // 4, 5))
    queries = generate_queries(params.index, workload, swst_small.now)

    def run():
        before = hr_index.stats.snapshot()
        for query in queries:
            if query.is_timeslice:
                hr_index.query_timeslice(query.area, query.t_lo)
            else:
                hr_index.query_interval(query.area, query.t_lo, query.t_hi)
        return hr_index.stats.diff(before).node_accesses

    accesses = benchmark(run)
    benchmark.extra_info["figure"] = "Ablation-HR"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        accesses / max(len(queries), 1), 2)
    benchmark.extra_info["hr_pages"] = hr_index.live_pages()
    benchmark.extra_info["swst_pages"] = swst_small.node_count()


def test_hrtree_expiry_is_cheap(benchmark, params, small_stream):
    """The one thing HR-trees do well: dropping whole old versions."""
    def setup():
        index = HRTree(page_size=params.index.page_size,
                       buffer_capacity=params.index.buffer_capacity)
        for report in small_stream:
            index.report(report.oid, report.x, report.y, report.t)
        return (index,), {}

    def expire(index):
        cutoff = index.now // 2
        dropped = index.drop_versions_before(cutoff)
        index.close()
        return dropped

    dropped = benchmark.pedantic(expire, setup=setup, rounds=1,
                                 iterations=1)
    benchmark.extra_info["figure"] = "Ablation-HR"
    benchmark.extra_info["versions_dropped"] = dropped
    assert dropped > 0
