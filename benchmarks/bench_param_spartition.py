"""Section V-E(b) — effect of the s-partition size.

Paper expectation: very large s-partitions generate false positives (the
column key range covers too many starts); very small ones scatter entries
that satisfy the same query across many key ranges.
"""

import dataclasses

import pytest

from repro.bench import build_swst, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

S_PARTITIONS = [25, 100, 201, 400, 800]


@pytest.mark.parametrize("sp", S_PARTITIONS, ids=[f"Sp{v}"
                                                  for v in S_PARTITIONS])
def test_spartition_sweep(benchmark, params, stream, sp):
    config = dataclasses.replace(params.index, s_partitions=sp)
    index, _ = build_swst(stream, config)
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    queries = generate_queries(config, workload, index.now)
    batch = benchmark(run_queries_swst, index, queries)
    benchmark.extra_info["figure"] = "Sec.V-E(b)"
    benchmark.extra_info["s_partitions"] = sp
    benchmark.extra_info["s_interval"] = -(-config.w_max // sp)
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
    index.close()
