"""Fig. 8 — insertion CPU time, SWST vs MV3R.

Paper expectation: SWST's simple B+ tree insert/split path makes its
insertion CPU roughly 5x cheaper than MV3R's R-tree heuristics
(choose-subtree enlargement + quadratic splits + version copies).  The
measured wall time of these two benchmarks is the figure.
"""

from repro.bench import build_mv3r, build_swst


def test_fig8_swst_insert_cpu(benchmark, params, stream):
    def build():
        index, result = build_swst(stream, params.index)
        index.close()
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "Fig.8"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["records"] = result.records
    benchmark.extra_info["cpu_seconds"] = round(result.cpu_seconds, 4)


def test_fig8_mv3r_insert_cpu(benchmark, params, stream):
    def build():
        index, result = build_mv3r(stream,
                                   page_size=params.index.page_size,
                                   buffer_capacity=params.index
                                   .buffer_capacity)
        index.close()
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "Fig.8"
    benchmark.extra_info["index"] = "MV3R"
    benchmark.extra_info["records"] = result.records
    benchmark.extra_info["cpu_seconds"] = round(result.cpu_seconds, 4)
