"""Ablation — SWST's two-tree modulo design vs per-slide sub-indexes.

Section II: prior disk sliding-window indexes partition into one
sub-index per time step so insert/expiry localise, "but a search may need
to be performed on multiple sub-indexes.  Our index scheme also employs
sub-indexes, but with an optimization to use only two of them."  This
bench measures that trade on the paper's workload: a wave-index-style
per-slide baseline pays a flat, high multi-sub-index search cost while
SWST's cost scales with the query interval.
"""

import pytest

from repro.baselines import WaveIndex
from repro.bench import build_swst, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

EXTENTS = [0.0, 0.10]


@pytest.fixture(scope="module")
def wave_index(params, stream):
    index = WaveIndex(params.index)
    for report in stream:
        index.report(report.oid, report.x, report.y, report.t)
    yield index
    index.close()


def _queries(params, index, extent):
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=extent,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    return generate_queries(params.index, workload, index.now)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_wave_search(benchmark, params, wave_index, extent):
    queries = _queries(params, wave_index, extent)

    def run():
        before = wave_index.stats.snapshot()
        for query in queries:
            wave_index.query_interval(query.area, query.t_lo, query.t_hi)
        return wave_index.stats.diff(before).node_accesses

    accesses = benchmark(run)
    benchmark.extra_info["figure"] = "Ablation-W"
    benchmark.extra_info["index"] = "wave"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        accesses / max(len(queries), 1), 2)


@pytest.mark.parametrize("extent", EXTENTS,
                         ids=[f"{e * 100:g}pct" for e in EXTENTS])
def test_swst_search_reference(benchmark, params, swst_index, extent):
    queries = _queries(params, swst_index, extent)
    batch = benchmark(run_queries_swst, swst_index, queries)
    benchmark.extra_info["figure"] = "Ablation-W"
    benchmark.extra_info["index"] = "SWST"
    benchmark.extra_info["temporal_extent"] = extent
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
