"""Shared benchmark fixtures.

Scale is selected by ``SWST_BENCH_SCALE`` (tiny | scaled | paper, default
scaled — see :mod:`repro.bench.params`).  Expensive artefacts (streams and
fully built indexes) are session-scoped so the per-figure benchmark files
only pay for the operations they measure.
"""

from __future__ import annotations

import pytest

from repro.bench import active_params, build_mv3r, build_swst
from repro.datagen import GSTDGenerator


@pytest.fixture(scope="session")
def params():
    return active_params()


@pytest.fixture(scope="session")
def stream(params):
    """The full-size report stream (largest dataset of the sweep)."""
    import dataclasses
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    return GSTDGenerator(config).materialize()


@pytest.fixture(scope="session")
def swst_index(params, stream):
    index, _ = build_swst(stream, params.index)
    yield index
    index.close()


@pytest.fixture(scope="session")
def mv3r_index(params, stream):
    index, _ = build_mv3r(stream, page_size=params.index.page_size,
                          buffer_capacity=params.index.buffer_capacity)
    yield index
    index.close()
