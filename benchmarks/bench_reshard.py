"""Reshard cost and availability — generation flip vs full rebuild.

Two questions, one record:

* **Cost** — how does ``reshard(dir, 16)`` on a saved 4-shard directory
  compare to the only alternative, rebuilding a 16-shard engine from
  the raw report stream?  The resharder streams the *live* physical
  entries of the committed shard files straight through the new
  ``GridShardMap``; the rebuild re-runs the full ingest path (slide
  maintenance, current-entry protocol, page allocation) over every
  report ever seen.  ``speedup_vs_rebuild`` is the wall-time ratio
  (rebuild over reshard, >1 means resharding wins).
* **Availability** — how many queries per second does the serving
  facade still answer *while* an online reshard is in flight?
  ``read_availability`` is that throughput over the quiesced
  throughput measured on the same facade just before; reads only
  pause for the bounded freeze/flip sections, so the ratio should
  stay well above zero on any host.

Query results are asserted identical across the original, resharded
and rebuilt engines, so all timings price the same answers.

Run directly to (re)generate ``BENCH_reshard.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/bench_reshard.py

or through pytest (``pytest benchmarks/bench_reshard.py``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import pathlib
import random
import tempfile
import time

from repro.bench import active_params
from repro.core import Rect
from repro.datagen import GSTDGenerator
from repro.engine import SerialExecutor, ShardedEngine
from repro.engine.reshard import reshard
from repro.serve.async_engine import AsyncEngine

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_reshard.json"

#: Shard counts of the headline 4 -> 16 reshard.
OLD_SHARDS = 4
NEW_SHARDS = 16


def _stream(params):
    config = dataclasses.replace(params.stream,
                                 num_objects=params.dataset_objects[-1])
    return GSTDGenerator(config).materialize()


def _queries(engine, count):
    """A fixed random query batch over the engine's queriable period."""
    rng = random.Random(1234)
    space = engine.config.space
    q_lo, q_hi = engine.config.queriable_period(engine.now)
    queries = []
    for _ in range(count):
        x0 = rng.randrange(space.x_hi - 2000)
        y0 = rng.randrange(space.y_hi - 2000)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        queries.append((Rect(x0, y0, x0 + 2000, y0 + 2000),
                        t_lo, t_lo + rng.randrange(0, 2000)))
    return queries


def _answers(engine, queries):
    return [sorted((e.oid, e.x, e.y, e.s) for e in
                   engine.query_interval(area, t_lo, t_hi))
            for area, t_lo, t_hi in queries]


def _ingest(config, path, stream):
    """Build, fill and save an engine directory; returns the wall time."""
    started = time.perf_counter()
    with ShardedEngine(config, path, executor=SerialExecutor()) as engine:
        engine.extend(stream)
        engine.save()
    return time.perf_counter() - started


async def _online_availability(engine, queries):
    """(quiesced_qps, during_qps) for reads around an online reshard."""
    facade = AsyncEngine(engine)
    try:
        async def read(i):
            area, t_lo, t_hi = queries[i % len(queries)]
            await facade.query_interval(area, t_lo, t_hi)

        started = time.perf_counter()
        for i in range(len(queries)):
            await read(i)
        quiesced_qps = len(queries) / (time.perf_counter() - started)

        reshard_task = asyncio.create_task(facade.reshard(NEW_SHARDS))
        served = 0
        started = time.perf_counter()
        while not reshard_task.done():
            await read(served)
            served += 1
        during_qps = served / (time.perf_counter() - started)
        await reshard_task
        return quiesced_qps, during_qps
    finally:
        facade.close()


def run_reshard_bench(params=None) -> dict:
    params = params if params is not None else active_params()
    stream = _stream(params)
    old_config = dataclasses.replace(params.index, n_shards=OLD_SHARDS)
    new_config = dataclasses.replace(params.index, n_shards=NEW_SHARDS)
    with tempfile.TemporaryDirectory() as base_dir:
        base = pathlib.Path(base_dir)

        # Offline: reshard a saved 4-shard directory vs rebuilding at 16.
        _ingest(old_config, base / "offline.d", stream)
        started = time.perf_counter()
        report = reshard(str(base / "offline.d"), NEW_SHARDS, old_config)
        reshard_seconds = time.perf_counter() - started
        rebuild_seconds = _ingest(new_config, base / "rebuild.d", stream)

        with ShardedEngine.open(str(base / "offline.d"), new_config,
                                executor=SerialExecutor()) as engine:
            queries = _queries(engine, params.query_count)
            resharded = _answers(engine, queries)
        with ShardedEngine.open(str(base / "rebuild.d"), new_config,
                                executor=SerialExecutor()) as engine:
            assert _answers(engine, queries) == resharded, \
                "rebuilt engine's query results diverge from the reshard"

        # Online: read throughput while the same reshard runs live.
        _ingest(old_config, base / "online.d", stream)
        engine = ShardedEngine.open(str(base / "online.d"), old_config,
                                    executor=SerialExecutor())
        quiesced_qps, during_qps = asyncio.run(
            _online_availability(engine, queries))

    return {
        "figure": "reshard-cost-availability",
        "scale": params.name,
        "records": len(stream),
        "old_n_shards": OLD_SHARDS,
        "new_n_shards": NEW_SHARDS,
        "entries_streamed": report.entries,
        "reshard_seconds": round(reshard_seconds, 3),
        "rebuild_seconds": round(rebuild_seconds, 3),
        "speedup_vs_rebuild": round(rebuild_seconds / reshard_seconds, 2),
        "quiesced_queries_per_sec": round(quiesced_qps, 1),
        "during_reshard_queries_per_sec": round(during_qps, 1),
        "read_availability": round(during_qps / quiesced_qps, 2),
    }


def test_reshard(benchmark, params):
    record = run_reshard_bench(params)

    def noop():
        return record

    benchmark.pedantic(noop, rounds=1, iterations=1)
    benchmark.extra_info["speedup_vs_rebuild"] = \
        record["speedup_vs_rebuild"]
    benchmark.extra_info["read_availability"] = \
        record["read_availability"]
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    # Noise guards well below the committed figures so shared CI
    # runners don't flake; BENCH_reshard.json carries the real numbers.
    assert record["speedup_vs_rebuild"] >= 1.0
    assert record["read_availability"] >= 0.1


if __name__ == "__main__":
    rec = run_reshard_bench()
    RESULT_PATH.write_text(json.dumps(rec, indent=2) + "\n")
    print(json.dumps(rec, indent=2))
    print(f"wrote {RESULT_PATH}")
