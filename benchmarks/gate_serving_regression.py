"""CI gate: serving-layer coalescing must not regress >20% vs the
committed ``BENCH_serving.json``, and overload must stay typed.

Re-runs :func:`benchmarks.bench_serving.run_serving_bench` on the
current tree and compares the *ratio* metrics (coalesced throughput
over the uncoalesced baseline, queries per engine call) against the
committed record.  Ratios are machine-independent — both sides of each
ratio are measured on the same host in the same process — so the gate
is meaningful on any CI runner.  A metric more than 20% below the
committed value fails the gate; absolute queries/sec numbers are
reported but never gated.  The overload section must additionally have
produced at least one typed 503 rejection (the acceptance criterion
that saturation is refused, never hung or dropped).

Usage::

    PYTHONPATH=src python benchmarks/gate_serving_regression.py
    PYTHONPATH=src python benchmarks/gate_serving_regression.py --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_serving import RESULT_PATH, run_serving_bench  # noqa: E402

#: Ratio metrics gated against the committed record.
GATED = ("speedup_coalesced", "coalesce_ratio")


def check_regression(committed: dict, fresh: dict,
                     tolerance: float) -> list[str]:
    """Return one message per gated metric regressing past ``tolerance``."""
    problems = []
    for metric in GATED:
        baseline = committed[metric]
        current = fresh[metric]
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            problems.append(
                f"{metric}: {current:.2f} is more than "
                f"{tolerance:.0%} below the committed {baseline:.2f} "
                f"(floor {floor:.2f})")
    if fresh["overload"]["typed_rejections"] < 1:
        problems.append(
            "overload.typed_rejections: saturating the admission window "
            "produced no typed 503 rejection")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--committed", type=pathlib.Path,
                        default=RESULT_PATH,
                        help="committed BENCH_serving.json to gate against")
    args = parser.parse_args(argv)

    committed = json.loads(args.committed.read_text())
    fresh = run_serving_bench()
    print(json.dumps(fresh, indent=2))

    if committed.get("scale") != fresh.get("scale"):
        print(f"note: committed record is {committed.get('scale')!r} "
              f"scale, fresh run is {fresh.get('scale')!r}; ratios are "
              f"still comparable but absolute numbers are not")
    problems = check_regression(committed, fresh, args.tolerance)
    for problem in problems:
        print(f"REGRESSION: {problem}")
    if problems:
        return 1
    summary = ", ".join(f"{m}={fresh[m]:.2f} (committed {committed[m]:.2f})"
                        for m in GATED)
    rejections = fresh["overload"]["typed_rejections"]
    print(f"serving gate passed: {summary}, "
          f"typed_rejections={rejections}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
