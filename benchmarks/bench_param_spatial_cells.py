"""Section V-E(a) — effect of the number of spatial grid cells.

Paper expectation: too few cells lose intra-cell spatial discrimination;
too many raise per-cell probing overhead.  The authors' sweet spot is
300-600 cells at paper scale.
"""

import dataclasses

import pytest

from repro.bench import build_swst, run_queries_swst
from repro.datagen import WorkloadConfig, generate_queries

GRIDS = [(2, 2), (5, 5), (10, 10), (20, 20), (30, 30)]


@pytest.mark.parametrize("grid", GRIDS, ids=[f"{x}x{y}" for x, y in GRIDS])
def test_spatial_cell_sweep(benchmark, params, stream, grid):
    config = dataclasses.replace(params.index, x_partitions=grid[0],
                                 y_partitions=grid[1])
    index, _ = build_swst(stream, config)
    workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                              temporal_domain=params.temporal_domain,
                              count=params.query_count)
    queries = generate_queries(config, workload, index.now)
    batch = benchmark(run_queries_swst, index, queries)
    benchmark.extra_info["figure"] = "Sec.V-E(a)"
    benchmark.extra_info["cells"] = grid[0] * grid[1]
    benchmark.extra_info["accesses_per_query"] = round(
        batch.accesses_per_query, 2)
    index.close()
