"""The package's public surface: imports, re-exports, docstrings."""

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.bench
        import repro.btree
        import repro.core
        import repro.datagen
        import repro.mv3r
        import repro.rtree
        import repro.sfc
        import repro.storage
        assert repro.core.SWSTIndex is repro.SWSTIndex

    def test_all_lists_are_accurate(self):
        import repro.bench
        import repro.core
        import repro.storage
        for module in (repro, repro.core, repro.storage, repro.bench):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_public_classes_have_docstrings(self):
        from repro import Entry, Rect, SWSTConfig, SWSTIndex
        from repro.btree import BPlusTree
        from repro.mv3r import MV3RTree
        for cls in (Entry, Rect, SWSTConfig, SWSTIndex, BPlusTree,
                    MV3RTree):
            assert cls.__doc__ and cls.__doc__.strip()

    def test_index_public_methods_have_docstrings(self):
        from repro import SWSTIndex
        for name in ("insert", "report", "delete", "query_timeslice",
                     "query_interval", "query_knn", "advance_time",
                     "set_retention", "save", "open", "close_object"):
            method = getattr(SWSTIndex, name)
            assert method.__doc__ and method.__doc__.strip(), name
