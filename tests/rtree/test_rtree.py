"""Disk R-tree: inserts, window search, deletes, structural invariants."""

import random

import pytest

from repro.rtree import Box, RTree
from repro.storage import MEMORY, BufferPool, Pager

PAYLOAD = 8


def payload(i: int) -> bytes:
    return i.to_bytes(PAYLOAD, "little")


@pytest.fixture
def pool():
    return BufferPool(Pager(MEMORY, page_size=1024), capacity=256)


@pytest.fixture
def tree(pool):
    return RTree(pool, ndim=2, payload_size=PAYLOAD)


def random_boxes(n, seed=0, size=20, domain=1000):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.randrange(domain), rng.randrange(domain)
        out.append((Box((x, y), (x + rng.randrange(size),
                                 y + rng.randrange(size))), payload(i)))
    return out


class TestInsertSearch:
    def test_empty_tree(self, tree):
        assert tree.search(Box((0, 0), (10 ** 6, 10 ** 6))) == []

    def test_single_entry(self, tree):
        tree.insert(Box((5, 5), (10, 10)), payload(1))
        assert tree.search(Box((0, 0), (7, 7))) == \
            [(Box((5, 5), (10, 10)), payload(1))]

    def test_search_misses_disjoint(self, tree):
        tree.insert(Box((5, 5), (10, 10)), payload(1))
        assert tree.search(Box((11, 11), (20, 20))) == []

    def test_bulk_matches_linear_scan(self, tree):
        data = random_boxes(1500, seed=1)
        for box, pay in data:
            tree.insert(box, pay)
        for probe, _ in random_boxes(40, seed=2, size=120):
            expected = sorted(p for b, p in data if b.intersects(probe))
            got = sorted(p for _, p in tree.search(probe))
            assert got == expected

    def test_invariants_after_many_splits(self, tree):
        for box, pay in random_boxes(2000, seed=3):
            tree.insert(box, pay)
        tree.check_invariants()
        assert tree.node_count() > 1

    def test_wrong_dimensionality_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.insert(Box((0, 0, 0), (1, 1, 1)), payload(0))

    def test_wrong_payload_size_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.insert(Box((0, 0), (1, 1)), b"xy")

    def test_len_counts_entries(self, tree):
        for box, pay in random_boxes(100, seed=4):
            tree.insert(box, pay)
        assert len(tree) == 100


class TestDelete:
    def test_delete_existing(self, tree):
        tree.insert(Box((5, 5), (10, 10)), payload(1))
        assert tree.delete(Box((5, 5), (10, 10)), payload(1))
        assert tree.search(Box((0, 0), (20, 20))) == []

    def test_delete_missing_returns_false(self, tree):
        tree.insert(Box((5, 5), (10, 10)), payload(1))
        assert not tree.delete(Box((5, 5), (10, 10)), payload(2))
        assert not tree.delete(Box((0, 0), (1, 1)), payload(1))

    def test_delete_half_then_search(self, tree):
        data = random_boxes(800, seed=5)
        for box, pay in data:
            tree.insert(box, pay)
        rng = random.Random(6)
        rng.shuffle(data)
        removed, kept = data[:400], data[400:]
        for box, pay in removed:
            assert tree.delete(box, pay)
        tree.check_invariants()
        for probe, _ in random_boxes(30, seed=7, size=150):
            expected = sorted(p for b, p in kept if b.intersects(probe))
            got = sorted(p for _, p in tree.search(probe))
            assert got == expected

    def test_delete_everything(self, tree):
        data = random_boxes(300, seed=8)
        for box, pay in data:
            tree.insert(box, pay)
        for box, pay in data:
            assert tree.delete(box, pay)
        assert len(tree) == 0


class Test3D:
    def test_3d_time_axis_search(self, pool):
        tree = RTree(pool, ndim=3, payload_size=PAYLOAD)
        # A point that exists during [100, 200].
        tree.insert(Box((5, 5, 100), (5, 5, 200)), payload(1))
        assert tree.search(Box((0, 0, 150), (10, 10, 150)))
        assert not tree.search(Box((0, 0, 201), (10, 10, 300)))

    def test_3d_bulk(self, pool):
        tree = RTree(pool, ndim=3, payload_size=PAYLOAD)
        rng = random.Random(9)
        data = []
        for i in range(600):
            x, y, t = rng.randrange(100), rng.randrange(100), \
                rng.randrange(1000)
            box = Box((x, y, t), (x, y, t + rng.randrange(50)))
            tree.insert(box, payload(i))
            data.append((box, payload(i)))
        probe = Box((20, 20, 100), (60, 60, 400))
        expected = sorted(p for b, p in data if b.intersects(probe))
        assert sorted(p for _, p in tree.search(probe)) == expected
        tree.check_invariants()
