"""N-dimensional boxes: set operations and measures."""

import pytest

from repro.rtree import Box, union_all


class TestConstruction:
    def test_point_box(self):
        box = Box.point(3, 4, 5)
        assert box.lo == box.hi == (3, 4, 5)
        assert box.ndim == 3

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            Box((5, 0), (4, 10))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1, 1))


class TestSetOperations:
    def test_intersects_closed_semantics(self):
        a = Box((0, 0), (5, 5))
        assert a.intersects(Box((5, 5), (9, 9)))  # touching corners
        assert not a.intersects(Box((6, 0), (9, 9)))

    def test_intersects_3d(self):
        a = Box((0, 0, 0), (10, 10, 10))
        assert a.intersects(Box((5, 5, 10), (6, 6, 20)))
        assert not a.intersects(Box((5, 5, 11), (6, 6, 20)))

    def test_contains(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains(Box((2, 3), (4, 5)))
        assert outer.contains(outer)
        assert not outer.contains(Box((2, 3), (11, 5)))

    def test_union(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 1), (6, 9))
        assert a.union(b) == Box((0, 0), (6, 9))

    def test_union_all(self):
        boxes = [Box.point(1, 1), Box.point(9, 0), Box.point(4, 7)]
        assert union_all(boxes) == Box((1, 0), (9, 7))

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            union_all([])


class TestMeasures:
    def test_volume(self):
        assert Box((0, 0), (2, 3)).volume() == 6
        assert Box((0, 0, 0), (2, 3, 4)).volume() == 24
        assert Box.point(5, 5).volume() == 0

    def test_margin(self):
        assert Box((0, 0), (2, 3)).margin() == 5

    def test_enlargement(self):
        a = Box((0, 0), (2, 2))
        assert a.enlargement(Box((0, 0), (1, 1))) == 0
        assert a.enlargement(Box((0, 0), (4, 2))) == 4
