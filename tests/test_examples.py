"""Every example script must run clean as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent
                   / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_clean(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must narrate what they do"
