"""Disk B+ tree: insertion, search, deletion, rebalancing, wholesale drop."""

import pytest

from repro.btree import BPlusTree
from repro.storage import MEMORY, BufferPool, Pager

VALUE = 8


def value(i: int) -> bytes:
    return i.to_bytes(VALUE, "big")


@pytest.fixture
def pool():
    return BufferPool(Pager(MEMORY, page_size=512), capacity=128)


@pytest.fixture
def tree(pool):
    return BPlusTree(pool, value_size=VALUE)


class TestInsertSearch:
    def test_empty_tree_has_no_entries(self, tree):
        assert tree.range_search(0, 10**9) == []
        assert len(tree) == 0

    def test_single_insert_found(self, tree):
        tree.insert(5, value(50))
        assert tree.search(5) == [value(50)]

    def test_absent_key_not_found(self, tree):
        tree.insert(5, value(50))
        assert tree.search(6) == []

    def test_many_inserts_stay_sorted(self, tree):
        for key in range(200, 0, -1):
            tree.insert(key, value(key))
        items = list(tree.items())
        assert [k for k, _ in items] == list(range(1, 201))

    def test_splits_preserve_entries(self, tree):
        n = tree.leaf_cap * 10
        for key in range(n):
            tree.insert(key, value(key))
        assert len(tree) == n
        assert tree.height() >= 2
        tree.check_invariants()

    def test_duplicate_keys_supported(self, tree):
        for i in range(50):
            tree.insert(7, value(i))
        assert sorted(tree.search(7)) == [value(i) for i in range(50)]

    def test_duplicate_run_across_splits(self, tree):
        n = tree.leaf_cap * 5
        for i in range(n):
            tree.insert(42, value(i))
        tree.check_invariants()
        assert len(tree.search(42)) == n

    def test_key_out_of_range_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.insert(-1, value(0))
        with pytest.raises(ValueError):
            tree.insert(1 << 128, value(0))

    def test_wrong_value_size_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.insert(1, b"wrong-size")


class TestRangeSearch:
    def test_closed_range_bounds(self, tree):
        for key in range(10):
            tree.insert(key, value(key))
        got = [k for k, _ in tree.range_search(3, 6)]
        assert got == [3, 4, 5, 6]

    def test_empty_range_returns_nothing(self, tree):
        tree.insert(5, value(5))
        assert tree.range_search(7, 6) == []

    def test_range_spans_leaves(self, tree):
        n = tree.leaf_cap * 4
        for key in range(n):
            tree.insert(key, value(key))
        got = [k for k, _ in tree.range_search(1, n - 2)]
        assert got == list(range(1, n - 1))

    def test_range_finds_duplicates_at_separator(self, tree):
        # Fill a leaf with equal keys, force a split, then search the key.
        n = tree.leaf_cap + 5
        for i in range(n):
            tree.insert(100, value(i))
        tree.insert(99, value(0))
        tree.insert(101, value(0))
        assert len(tree.range_search(100, 100)) == n

    def test_iter_range_is_lazy(self, tree):
        for key in range(100):
            tree.insert(key, value(key))
        iterator = tree.iter_range(0, 99)
        first = next(iterator)
        assert first == (0, value(0))


class TestDelete:
    def test_delete_by_exact_value(self, tree):
        tree.insert(5, value(1))
        tree.insert(5, value(2))
        assert tree.delete(5, value(1))
        assert tree.search(5) == [value(2)]

    def test_delete_missing_returns_false(self, tree):
        tree.insert(5, value(1))
        assert not tree.delete(6, value(1))
        assert not tree.delete(5, value(9))

    def test_delete_any_with_none_match(self, tree):
        tree.insert(5, value(1))
        assert tree.delete(5)
        assert tree.search(5) == []

    def test_delete_by_predicate(self, tree):
        tree.insert(5, value(10))
        tree.insert(5, value(11))
        assert tree.delete(5, lambda v: v == value(11))
        assert tree.search(5) == [value(10)]

    def test_delete_everything_leaves_empty_tree(self, tree):
        n = tree.leaf_cap * 6
        for key in range(n):
            tree.insert(key, value(key))
        for key in range(n):
            assert tree.delete(key, value(key))
        assert len(tree) == 0
        tree.check_invariants()

    def test_delete_collapses_height(self, tree):
        n = tree.leaf_cap * 6
        for key in range(n):
            tree.insert(key, value(key))
        tall = tree.height()
        for key in range(n - 2):
            tree.delete(key, value(key))
        assert tree.height() < tall
        tree.check_invariants()

    def test_interleaved_insert_delete_keeps_invariants(self, tree):
        import random
        rng = random.Random(5)
        live = []
        for step in range(2000):
            if rng.random() < 0.6 or not live:
                key = rng.randrange(100)
                tree.insert(key, value(step))
                live.append((key, value(step)))
            else:
                key, val = live.pop(rng.randrange(len(live)))
                assert tree.delete(key, val)
        tree.check_invariants()
        assert sorted(live) == sorted(
            (k, v) for k, v in tree.items())

    def test_delete_duplicate_at_separator_boundary(self, tree):
        n = tree.leaf_cap + 3
        for i in range(n):
            tree.insert(50, value(i))
        for i in range(n):
            assert tree.delete(50, value(i)), f"failed at duplicate {i}"
        assert tree.search(50) == []


class TestDrop:
    def test_drop_frees_all_pages(self, tree, pool):
        n = tree.leaf_cap * 8
        for key in range(n):
            tree.insert(key, value(key))
        pages = tree.node_count()
        frees_before = pool.stats.frees
        freed = tree.drop()
        assert freed == pages
        assert pool.stats.frees - frees_before == pages

    def test_dropped_tree_is_empty_and_usable(self, tree):
        for key in range(100):
            tree.insert(key, value(key))
        tree.drop()
        assert len(tree) == 0
        tree.insert(7, value(7))
        assert tree.search(7) == [value(7)]

    def test_drop_cost_is_pages_not_entries(self, tree, pool):
        n = tree.leaf_cap * 8
        for key in range(n):
            tree.insert(key, value(key))
        before = pool.stats.snapshot()
        tree.drop()
        delta = pool.stats.diff(before)
        # O(pages): far fewer accesses than entries.
        assert delta.logical_reads < n / 4


class TestPersistence:
    def test_reopen_by_root_page(self, tmp_path):
        path = tmp_path / "t.db"
        pager = Pager(path, page_size=512)
        pool = BufferPool(pager, capacity=64)
        tree = BPlusTree(pool, value_size=VALUE)
        for key in range(300):
            tree.insert(key, value(key))
        root = tree.root_page
        pool.close()
        pager.close()
        pager = Pager(path, page_size=512)
        pool = BufferPool(pager, capacity=64)
        reopened = BPlusTree(pool, value_size=VALUE, root_page=root)
        assert [k for k, _ in reopened.items()] == list(range(300))
        pool.close()
        pager.close()
