"""Property-based B+ tree tests against a sorted-list model."""

from bisect import insort

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, multi_range_search
from repro.storage import MEMORY, BufferPool, Pager

VALUE = 8


def value(i: int) -> bytes:
    return (i % (1 << 32)).to_bytes(VALUE, "big")


def fresh_tree() -> BPlusTree:
    pool = BufferPool(Pager(MEMORY, page_size=512), capacity=256)
    return BPlusTree(pool, value_size=VALUE)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 60), st.integers(0, 999)),
        st.tuples(st.just("delete"), st.integers(0, 60), st.integers(0, 999)),
    ),
    max_size=300,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops)
def test_tree_matches_sorted_list_model(operations):
    """Arbitrary insert/delete sequences agree with a sorted-list model."""
    tree = fresh_tree()
    model: list[tuple[int, bytes]] = []
    for op, key, payload in operations:
        if op == "insert":
            tree.insert(key, value(payload))
            insort(model, (key, value(payload)))
        else:
            expected = (key, value(payload)) in model
            assert tree.delete(key, value(payload)) == expected
            if expected:
                model.remove((key, value(payload)))
    # Equal keys keep insertion order (not value order) in the tree, so
    # compare as multisets.
    assert sorted(tree.items()) == model
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=400),
       st.integers(0, 200), st.integers(0, 200))
def test_range_search_matches_filter(keys, lo, hi):
    """range_search(lo, hi) equals filtering the inserted multiset."""
    tree = fresh_tree()
    for idx, key in enumerate(keys):
        tree.insert(key, value(idx))
    got = [k for k, _ in tree.range_search(min(lo, hi), max(lo, hi))]
    expected = sorted(k for k in keys if min(lo, hi) <= k <= max(lo, hi))
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 300), min_size=1, max_size=300),
       st.lists(st.tuples(st.integers(0, 300), st.integers(0, 60)),
                min_size=1, max_size=8))
def test_multisearch_matches_union_of_ranges(keys, raw_ranges):
    """Multi-range search equals the union of individual range searches."""
    tree = fresh_tree()
    for idx, key in enumerate(keys):
        tree.insert(key, value(idx))
    ranges = [(lo, lo + width) for lo, width in raw_ranges]
    got = multi_range_search(tree, ranges)
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(ranges):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    expected = []
    for lo, hi in merged:
        expected.extend(tree.range_search(lo, hi))
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=500))
def test_heavy_duplicates_keep_invariants(keys):
    """Massive duplicate runs never break structural invariants."""
    tree = fresh_tree()
    for idx, key in enumerate(keys):
        tree.insert(key, value(idx))
    tree.check_invariants()
    for key in set(keys):
        assert len(tree.search(key)) == keys.count(key)
