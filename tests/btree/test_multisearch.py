"""Level-wise multi-range search: correctness + the never-twice guarantee."""

import pytest

from repro.btree import (BPlusTree, hits_in_ranges, multi_range_search,
                         multi_range_search_many, normalize_ranges)
from repro.storage import MEMORY, BufferPool, Pager

VALUE = 8


def value(i: int) -> bytes:
    return i.to_bytes(VALUE, "big")


@pytest.fixture
def loaded():
    pool = BufferPool(Pager(MEMORY, page_size=512), capacity=256)
    tree = BPlusTree(pool, value_size=VALUE)
    for key in range(1000):
        tree.insert(key, value(key))
    return pool, tree


class TestNormalize:
    def test_sorts_and_keeps_disjoint(self):
        assert normalize_ranges([(10, 20), (1, 5)]) == [(1, 5), (10, 20)]

    def test_merges_overlapping(self):
        assert normalize_ranges([(1, 10), (5, 20)]) == [(1, 20)]

    def test_merges_adjacent(self):
        assert normalize_ranges([(1, 5), (6, 9)]) == [(1, 9)]

    def test_drops_empty_ranges(self):
        assert normalize_ranges([(5, 1), (2, 3)]) == [(2, 3)]

    def test_empty_input(self):
        assert normalize_ranges([]) == []


class TestSearch:
    def test_single_range_matches_range_search(self, loaded):
        _, tree = loaded
        assert multi_range_search(tree, [(100, 200)]) == \
            tree.range_search(100, 200)

    def test_multiple_disjoint_ranges(self, loaded):
        _, tree = loaded
        ranges = [(0, 10), (500, 510), (990, 999)]
        got = [k for k, _ in multi_range_search(tree, ranges)]
        expected = [k for lo, hi in ranges for k in range(lo, hi + 1)]
        assert got == expected

    def test_ranges_beyond_data_are_harmless(self, loaded):
        _, tree = loaded
        got = multi_range_search(tree, [(5000, 6000)])
        assert got == []

    def test_overlapping_ranges_coalesced(self, loaded):
        _, tree = loaded
        got = [k for k, _ in multi_range_search(tree, [(10, 50), (40, 80)])]
        assert got == list(range(10, 81))

    def test_results_in_key_order(self, loaded):
        _, tree = loaded
        got = [k for k, _ in multi_range_search(tree,
                                                [(700, 720), (100, 120)])]
        assert got == sorted(got)

    def test_no_node_visited_twice(self, loaded):
        pool, tree = loaded
        ranges = [(i * 50, i * 50 + 30) for i in range(20)]
        before = pool.stats.snapshot()
        multi_range_search(tree, ranges)
        delta = pool.stats.diff(before)
        assert delta.logical_reads <= tree.node_count()

    def test_cheaper_than_individual_searches(self, loaded):
        pool, tree = loaded
        ranges = [(i * 10, i * 10 + 5) for i in range(60)]
        before = pool.stats.snapshot()
        multi = multi_range_search(tree, ranges)
        multi_cost = pool.stats.diff(before).logical_reads
        before = pool.stats.snapshot()
        single = []
        for lo, hi in ranges:
            single.extend(tree.range_search(lo, hi))
        single_cost = pool.stats.diff(before).logical_reads
        assert multi == single
        assert multi_cost < single_cost

    def test_finds_duplicates_straddling_separators(self):
        pool = BufferPool(Pager(MEMORY, page_size=512), capacity=64)
        tree = BPlusTree(pool, value_size=VALUE)
        n = tree.leaf_cap + 7
        for i in range(n):
            tree.insert(55, value(i))
        got = multi_range_search(tree, [(55, 55)])
        assert len(got) == n


class TestSearchMany:
    """The batched entry point: one descent over the union of several
    range groups, sliced back per group with :func:`hits_in_ranges`."""

    def test_union_equals_flat_search(self, loaded):
        _, tree = loaded
        groups = [[(0, 10), (500, 510)], [(5, 30)], [(990, 999)]]
        assert multi_range_search_many(tree, groups) == \
            multi_range_search(tree, [r for g in groups for r in g])

    def test_single_descent_io(self, loaded):
        pool, tree = loaded
        groups = [[(i * 30, i * 30 + 10)] for i in range(20)]
        before = pool.stats.snapshot()
        multi_range_search_many(tree, groups)
        delta = pool.stats.diff(before)
        assert delta.logical_reads <= tree.node_count()

    def test_empty_groups(self, loaded):
        _, tree = loaded
        assert multi_range_search_many(tree, []) == []
        assert multi_range_search_many(tree, [[], []]) == []

    def test_slicing_recovers_each_group(self, loaded):
        _, tree = loaded
        groups = [[(0, 20), (100, 120)], [(10, 110)], [(115, 130)]]
        hits = multi_range_search_many(tree, groups)
        keys = [k for k, _ in hits]
        for group in groups:
            own = hits_in_ranges(hits, keys, sorted(group))
            expected = multi_range_search(tree, group)
            assert own == expected


class TestHitsInRanges:
    HITS = [(k, value(k)) for k in [1, 3, 3, 5, 8, 13, 21, 34]]
    KEYS = [k for k, _ in HITS]

    def test_selects_in_key_order(self):
        got = hits_in_ranges(self.HITS, self.KEYS, [(3, 8), (21, 40)])
        assert [k for k, _ in got] == [3, 3, 5, 8, 21, 34]

    def test_each_hit_once(self):
        got = hits_in_ranges(self.HITS, self.KEYS, [(0, 100)])
        assert got == self.HITS

    def test_empty_inputs(self):
        assert hits_in_ranges([], [], [(1, 5)]) == []
        assert hits_in_ranges(self.HITS, self.KEYS, []) == []

    def test_non_matching_ranges(self):
        assert hits_in_ranges(self.HITS, self.KEYS, [(9, 12), (35, 99)]) == []

    def test_boundary_keys_inclusive(self):
        got = hits_in_ranges(self.HITS, self.KEYS, [(1, 1), (34, 34)])
        assert [k for k, _ in got] == [1, 34]

    def test_duplicate_keys_all_returned(self):
        got = hits_in_ranges(self.HITS, self.KEYS, [(3, 3)])
        assert got == [(3, value(3)), (3, value(3))]
