"""B+ tree node serialisation round-trips and capacity arithmetic."""

import pytest

from repro.btree.node import (InternalNode, KEY_MAX, LeafNode,
                              NodeFormatError, internal_capacity,
                              leaf_capacity, node_type_of)

PAGE = 1024
VALUE = 16


class TestLeafSerialisation:
    def test_empty_leaf_round_trips(self):
        node = LeafNode()
        raw = node.to_bytes(PAGE, VALUE)
        assert len(raw) == PAGE
        assert LeafNode.from_bytes(raw, VALUE) == node

    def test_populated_leaf_round_trips(self):
        node = LeafNode(keys=[1, 5, 9], values=[b"a" * VALUE, b"b" * VALUE,
                                                b"c" * VALUE], next_leaf=42)
        parsed = LeafNode.from_bytes(node.to_bytes(PAGE, VALUE), VALUE)
        assert parsed == node

    def test_max_key_round_trips(self):
        node = LeafNode(keys=[KEY_MAX], values=[b"x" * VALUE])
        parsed = LeafNode.from_bytes(node.to_bytes(PAGE, VALUE), VALUE)
        assert parsed.keys == [KEY_MAX]

    def test_wrong_value_size_rejected(self):
        node = LeafNode(keys=[1], values=[b"short"])
        with pytest.raises(NodeFormatError):
            node.to_bytes(PAGE, VALUE)

    def test_mismatched_lists_rejected(self):
        node = LeafNode(keys=[1, 2], values=[b"a" * VALUE])
        with pytest.raises(NodeFormatError):
            node.to_bytes(PAGE, VALUE)

    def test_overflow_rejected(self):
        cap = leaf_capacity(PAGE, VALUE)
        node = LeafNode(keys=list(range(cap + 1)),
                        values=[b"v" * VALUE] * (cap + 1))
        with pytest.raises(NodeFormatError):
            node.to_bytes(PAGE, VALUE)


class TestInternalSerialisation:
    def test_internal_round_trips(self):
        node = InternalNode(keys=[10, 20], children=[1, 2, 3])
        parsed = InternalNode.from_bytes(node.to_bytes(PAGE))
        assert parsed == node

    def test_children_arity_enforced(self):
        node = InternalNode(keys=[10], children=[1, 2, 3])
        with pytest.raises(NodeFormatError):
            node.to_bytes(PAGE)

    def test_type_confusion_rejected(self):
        leaf_raw = LeafNode().to_bytes(PAGE, VALUE)
        with pytest.raises(NodeFormatError):
            InternalNode.from_bytes(leaf_raw)
        internal_raw = InternalNode(keys=[1],
                                    children=[2, 3]).to_bytes(PAGE)
        with pytest.raises(NodeFormatError):
            LeafNode.from_bytes(internal_raw, VALUE)


class TestCapacities:
    def test_leaf_capacity_formula(self):
        assert leaf_capacity(1024, 16) == (1024 - 11) // 32

    def test_internal_capacity_formula(self):
        assert internal_capacity(1024) == (1024 - 11) // 24

    def test_bigger_pages_hold_more(self):
        assert leaf_capacity(8192, 16) > leaf_capacity(1024, 16)

    def test_node_type_peek(self):
        assert node_type_of(LeafNode().to_bytes(PAGE, VALUE)) == 1
        raw = InternalNode(keys=[1], children=[2, 3]).to_bytes(PAGE)
        assert node_type_of(raw) == 2

    def test_node_type_rejects_garbage(self):
        with pytest.raises(NodeFormatError):
            node_type_of(b"\x07" + b"\x00" * 100)
        with pytest.raises(NodeFormatError):
            node_type_of(b"")
