"""Bottom-up bulk loading of the B+ tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.storage import MEMORY, BufferPool, Pager

VALUE = 8


def value(i: int) -> bytes:
    return i.to_bytes(VALUE, "big")


def fresh_tree(page_size=512, capacity=256):
    pool = BufferPool(Pager(MEMORY, page_size=page_size), capacity=capacity)
    return pool, BPlusTree(pool, value_size=VALUE)


class TestBulkLoad:
    def test_empty_input(self):
        _, tree = fresh_tree()
        tree.bulk_load([])
        assert len(tree) == 0
        tree.insert(1, value(1))
        assert tree.search(1) == [value(1)]

    def test_single_leaf(self):
        _, tree = fresh_tree()
        items = [(k, value(k)) for k in range(5)]
        tree.bulk_load(items)
        assert list(tree.items()) == items
        tree.check_invariants()

    def test_multi_level(self):
        _, tree = fresh_tree()
        items = [(k, value(k)) for k in range(5000)]
        tree.bulk_load(items)
        assert tree.height() >= 3
        assert list(tree.items()) == items
        tree.check_invariants()

    def test_duplicates_allowed(self):
        _, tree = fresh_tree()
        items = [(7, value(i)) for i in range(200)]
        tree.bulk_load(items)
        assert len(tree.search(7)) == 200
        tree.check_invariants()

    def test_unsorted_input_rejected(self):
        _, tree = fresh_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(2, value(2)), (1, value(1))])

    def test_nonempty_tree_rejected(self):
        _, tree = fresh_tree()
        tree.insert(1, value(1))
        with pytest.raises(ValueError):
            tree.bulk_load([(2, value(2))])

    def test_bad_fill_rejected(self):
        _, tree = fresh_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([], fill=0.0)

    def test_cheaper_than_repeated_inserts(self):
        items = [(k, value(k)) for k in range(3000)]
        pool_a, bulk = fresh_tree()
        before = pool_a.stats.snapshot()
        bulk.bulk_load(items)
        bulk_cost = pool_a.stats.diff(before).node_accesses
        pool_b, incremental = fresh_tree()
        before = pool_b.stats.snapshot()
        for key, payload in items:
            incremental.insert(key, payload)
        incremental_cost = pool_b.stats.diff(before).node_accesses
        assert bulk_cost < incremental_cost / 10

    def test_inserts_and_deletes_work_after_bulk_load(self):
        _, tree = fresh_tree()
        items = [(k * 2, value(k)) for k in range(1000)]
        tree.bulk_load(items)
        tree.insert(5, value(9999))
        assert tree.delete(10, value(5))
        tree.check_invariants()
        assert tree.search(5) == [value(9999)]
        assert tree.search(10) == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=2000),
           st.floats(0.3, 1.0))
    def test_bulk_load_equals_sorted_input(self, keys, fill):
        keys.sort()
        items = [(k, value(i)) for i, k in enumerate(keys)]
        _, tree = fresh_tree()
        tree.bulk_load(items, fill=fill)
        assert list(tree.items()) == items
        tree.check_invariants()

    def test_range_and_multisearch_on_bulk_loaded_tree(self):
        from repro.btree import multi_range_search
        _, tree = fresh_tree()
        items = [(k, value(k)) for k in range(2000)]
        tree.bulk_load(items)
        assert [k for k, _ in tree.range_search(100, 200)] == \
            list(range(100, 201))
        got = multi_range_search(tree, [(0, 10), (500, 510), (1990, 1999)])
        assert len(got) == 11 + 11 + 10
