"""Hilbert curve: bijectivity, locality, and the corner-property violation
that disqualifies it for SWST key ranges (paper Section III-B.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import hc_decode, hc_encode, zc_encode

coord = st.integers(0, (1 << 16) - 1)


class TestEncodeDecode:
    def test_origin_is_zero(self):
        assert hc_encode(0, 0) == 0

    @settings(max_examples=200, deadline=None)
    @given(coord, coord)
    def test_round_trip(self, x, y):
        assert hc_decode(hc_encode(x, y)) == (x, y)

    def test_bijective_on_small_grid(self):
        values = {hc_encode(x, y, order=4)
                  for x in range(16) for y in range(16)}
        assert values == set(range(256))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hc_encode(1 << 16, 0)
        with pytest.raises(ValueError):
            hc_decode(1 << 32)

    def test_curve_is_continuous(self):
        # Consecutive Hilbert distances map to 4-adjacent points.
        prev = hc_decode(0, order=4)
        for d in range(1, 256):
            cur = hc_decode(d, order=4)
            assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
            prev = cur

    def test_zcurve_is_not_continuous(self):
        # Contrast: the Z-curve jumps (the long diagonal seams).
        jumps = 0
        prev = (0, 0)
        for z in range(1, 256):
            from repro.sfc import zc_decode
            cur = zc_decode(z, order=4)
            if abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) > 1:
                jumps += 1
            prev = cur
        assert jumps > 0


class TestCornerPropertyViolation:
    def test_hilbert_violates_rectangle_corner_property(self):
        """There exists a rectangle where an interior point has a Hilbert
        value above the upper-right corner's or below the lower-left's —
        the paper's Fig. 2 argument for choosing the Z-curve."""
        violations = 0
        order = 3
        size = 1 << order
        for x_lo in range(size):
            for y_lo in range(size):
                for x_hi in range(x_lo, size):
                    for y_hi in range(y_lo, size):
                        lo = hc_encode(x_lo, y_lo, order=order)
                        hi = hc_encode(x_hi, y_hi, order=order)
                        for x in range(x_lo, x_hi + 1):
                            for y in range(y_lo, y_hi + 1):
                                h = hc_encode(x, y, order=order)
                                if not (min(lo, hi) <= h <= max(lo, hi)):
                                    violations += 1
        assert violations > 0

    def test_zcurve_never_violates_on_same_grid(self):
        order = 3
        size = 1 << order
        for x_lo in range(size):
            for y_lo in range(size):
                for x_hi in range(x_lo, size):
                    for y_hi in range(y_lo, size):
                        lo = zc_encode(x_lo, y_lo, order=order)
                        hi = zc_encode(x_hi, y_hi, order=order)
                        assert lo <= hi
