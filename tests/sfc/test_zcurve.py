"""Z-curve: bijectivity, monotonicity, the rectangle corner property,
and equivalence of the table-driven / batched paths with the reference
bit loops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import (zc_decode, zc_decode_many, zc_encode, zc_encode_many,
                       zc_in_rect, zc_range)
from repro.sfc.zcurve import (_compact1by1, _compact1by1_ref, _part1by1,
                              _part1by1_ref)

coord = st.integers(0, (1 << 16) - 1)


class TestEncodeDecode:
    def test_origin_is_zero(self):
        assert zc_encode(0, 0) == 0

    def test_known_small_values(self):
        # x bits land in even positions, y bits in odd positions.
        assert zc_encode(1, 0) == 1
        assert zc_encode(0, 1) == 2
        assert zc_encode(1, 1) == 3
        assert zc_encode(2, 0) == 4
        assert zc_encode(3, 3) == 15

    @settings(max_examples=200, deadline=None)
    @given(coord, coord)
    def test_round_trip(self, x, y):
        assert zc_decode(zc_encode(x, y)) == (x, y)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            zc_encode(1 << 16, 0)
        with pytest.raises(ValueError):
            zc_encode(0, -1)
        with pytest.raises(ValueError):
            zc_decode(1 << 32)

    def test_custom_order(self):
        assert zc_encode(3, 3, order=2) == 15
        assert zc_decode(15, order=2) == (3, 3)


class TestMonotonicity:
    """The property SWST needs: zc is monotone in each coordinate, so a
    rectangle's lower-left corner carries the minimum Z-value and its
    upper-right corner the maximum (paper Fig. 2)."""

    @settings(max_examples=200, deadline=None)
    @given(coord, coord, st.integers(1, 100))
    def test_monotone_in_x(self, x, y, step):
        if x + step < (1 << 16):
            assert zc_encode(x + step, y) > zc_encode(x, y)

    @settings(max_examples=200, deadline=None)
    @given(coord, coord, st.integers(1, 100))
    def test_monotone_in_y(self, x, y, step):
        if y + step < (1 << 16):
            assert zc_encode(x, y + step) > zc_encode(x, y)

    def test_corner_property_exhaustive_small(self):
        # Every point of every rectangle in an 8x8 grid lies inside the
        # [zc(lower-left), zc(upper-right)] range.
        for x_lo in range(8):
            for y_lo in range(8):
                for x_hi in range(x_lo, 8):
                    for y_hi in range(y_lo, 8):
                        lo, hi = zc_range(x_lo, y_lo, x_hi, y_hi, order=3)
                        for x in range(x_lo, x_hi + 1):
                            for y in range(y_lo, y_hi + 1):
                                z = zc_encode(x, y, order=3)
                                assert lo <= z <= hi


class TestRange:
    def test_range_endpoints(self):
        lo, hi = zc_range(2, 3, 10, 12)
        assert lo == zc_encode(2, 3)
        assert hi == zc_encode(10, 12)

    def test_empty_rectangle_rejected(self):
        with pytest.raises(ValueError):
            zc_range(5, 5, 4, 5)

    def test_range_may_contain_outside_points(self):
        # The classic false-positive: the Z range of a thin rectangle
        # covers z-values of points outside it — why SWST needs the
        # refinement step.
        lo, hi = zc_range(0, 1, 3, 1, order=2)
        outside = [z for z in range(lo, hi + 1)
                   if not zc_in_rect(z, 0, 1, 3, 1, order=2)]
        assert outside  # refinement is genuinely necessary

    def test_zc_in_rect(self):
        z = zc_encode(5, 6)
        assert zc_in_rect(z, 0, 0, 10, 10)
        assert not zc_in_rect(z, 6, 0, 10, 10)


class TestTableDrivenPaths:
    """The precomputed-table interleave must agree with the per-bit
    reference loops everywhere, including multi-byte inputs."""

    @settings(max_examples=200, deadline=None)
    @given(coord)
    def test_part_matches_reference(self, value):
        assert _part1by1(value, 16) == _part1by1_ref(value, 16)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, (1 << 32) - 1))
    def test_compact_matches_reference(self, value):
        assert _compact1by1(value, 16) == _compact1by1_ref(value, 16)

    def test_exhaustive_single_byte(self):
        for value in range(256):
            assert _part1by1(value, 8) == _part1by1_ref(value, 8)
        for value in range(1 << 16):
            assert _compact1by1(value, 8) == _compact1by1_ref(value, 8)

    def test_multi_byte_boundaries(self):
        for value in (0xFF, 0x100, 0x101, 0xFFFF, 0x8000, 0x7FFF):
            assert _part1by1(value, 16) == _part1by1_ref(value, 16)


class TestBatchedCodec:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(coord, coord), max_size=40))
    def test_encode_many_equals_scalar_loop(self, points):
        assert zc_encode_many(points) == \
            [zc_encode(x, y) for x, y in points]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(coord, coord), max_size=40))
    def test_batch_round_trip(self, points):
        assert zc_decode_many(zc_encode_many(points)) == points

    def test_decode_many_equals_scalar_loop(self):
        zs = [0, 1, 2, 3, 255, 1 << 20, (1 << 32) - 1]
        assert zc_decode_many(zs) == [zc_decode(z) for z in zs]

    def test_empty_batches(self):
        assert zc_encode_many([]) == []
        assert zc_decode_many([]) == []

    def test_custom_order_batches(self):
        points = [(0, 0), (3, 3), (1, 2)]
        assert zc_encode_many(points, order=2) == \
            [zc_encode(x, y, order=2) for x, y in points]
        assert zc_decode_many([15, 6], order=2) == \
            [zc_decode(z, order=2) for z in [15, 6]]

    def test_encode_many_validates_every_point(self):
        with pytest.raises(ValueError):
            zc_encode_many([(0, 0), (1 << 16, 0)])
        with pytest.raises(ValueError):
            zc_encode_many([(0, -1)])

    def test_decode_many_validates_every_value(self):
        with pytest.raises(ValueError):
            zc_decode_many([0, 1 << 32])
        with pytest.raises(ValueError):
            zc_decode_many([-1])
