"""Road-network generator: connectivity, ordering, dwell behaviour."""

import pytest

from repro.core import Rect
from repro.datagen import RoadNetConfig, RoadNetGenerator


def _config(**overrides):
    defaults = dict(num_vehicles=20, nodes_x=6, nodes_y=6, max_time=8000,
                    space=Rect(0, 0, 999, 999), seed=5)
    defaults.update(overrides)
    return RoadNetConfig(**defaults)


class TestNetwork:
    def test_network_is_connected(self):
        import networkx as nx
        gen = RoadNetGenerator(_config(removed_fraction=0.3))
        assert nx.is_connected(gen.graph)

    def test_edges_removed(self):
        full = RoadNetGenerator(_config(removed_fraction=0.0))
        pruned = RoadNetGenerator(_config(removed_fraction=0.3))
        assert pruned.graph.number_of_edges() < full.graph.number_of_edges()

    def test_node_positions_inside_domain(self):
        gen = RoadNetGenerator(_config())
        space = Rect(0, 0, 999, 999)
        for x, y in gen._positions.values():
            assert space.contains(x, y)


class TestStream:
    def test_stream_is_time_ordered(self):
        stream = RoadNetGenerator(_config()).materialize()
        assert [r.t for r in stream] == sorted(r.t for r in stream)

    def test_deterministic(self):
        a = RoadNetGenerator(_config(seed=9)).materialize()
        b = RoadNetGenerator(_config(seed=9)).materialize()
        assert a == b

    def test_reports_only_at_intersections(self):
        gen = RoadNetGenerator(_config())
        positions = set(gen._positions.values())
        for report in gen.materialize():
            assert (report.x, report.y) in positions

    def test_every_vehicle_reports(self):
        stream = RoadNetGenerator(_config()).materialize()
        assert {r.oid for r in stream} == set(range(20))

    def test_consecutive_reports_are_road_neighbours_or_dwells(self):
        gen = RoadNetGenerator(_config())
        position_to_node = {pos: node
                            for node, pos in gen._positions.items()}
        last: dict[int, tuple] = {}
        for report in gen.materialize():
            node = position_to_node[(report.x, report.y)]
            if report.oid in last:
                previous = last[report.oid]
                assert previous == node or \
                    gen.graph.has_edge(previous, node)
            last[report.oid] = node

    def test_dwells_create_long_gaps(self):
        cfg = _config(dwell_lo=2000, dwell_hi=3000, max_time=20000)
        stream = RoadNetGenerator(cfg).materialize()
        gaps = []
        last: dict[int, int] = {}
        for report in stream:
            if report.oid in last:
                gaps.append(report.t - last[report.oid])
            last[report.oid] = report.t
        assert max(gaps) >= 2000

    def test_feeds_the_index(self):
        from repro.core import SWSTConfig, SWSTIndex
        cfg = SWSTConfig(window=4000, slide=100, x_partitions=4,
                         y_partitions=4, d_max=4000, duration_interval=200,
                         space=Rect(0, 0, 999, 999), page_size=1024)
        index = SWSTIndex(cfg)
        for report in RoadNetGenerator(_config()).stream():
            index.report(report.oid, report.x, report.y, report.t)
        index.check_integrity()
        hits = index.query_interval(Rect(0, 0, 999, 999),
                                    *cfg.queriable_period(index.now))
        assert len(hits) > 0
        index.close()


class TestValidation:
    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            _config(nodes_x=1)

    def test_bad_travel_rejected(self):
        with pytest.raises(ValueError):
            _config(travel_lo=10, travel_hi=5)

    def test_bad_removed_fraction_rejected(self):
        with pytest.raises(ValueError):
            _config(removed_fraction=0.6)
