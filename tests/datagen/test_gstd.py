"""GSTD generator: ordering, determinism, distributions, duration bounds."""

import pytest

from repro.core import Rect
from repro.datagen import GSTDConfig, GSTDGenerator


def _config(**overrides):
    defaults = dict(num_objects=50, max_time=5000, interval_lo=1,
                    interval_hi=100, space=Rect(0, 0, 999, 999), seed=3)
    defaults.update(overrides)
    return GSTDConfig(**defaults)


class TestStream:
    def test_stream_is_time_ordered(self):
        stream = GSTDGenerator(_config()).materialize()
        times = [r.t for r in stream]
        assert times == sorted(times)

    def test_deterministic_for_same_seed(self):
        a = GSTDGenerator(_config(seed=9)).materialize()
        b = GSTDGenerator(_config(seed=9)).materialize()
        assert a == b

    def test_different_seeds_differ(self):
        a = GSTDGenerator(_config(seed=1)).materialize()
        b = GSTDGenerator(_config(seed=2)).materialize()
        assert a != b

    def test_every_object_reports(self):
        stream = GSTDGenerator(_config()).materialize()
        assert {r.oid for r in stream} == set(range(50))

    def test_positions_inside_domain(self):
        stream = GSTDGenerator(_config()).materialize()
        space = Rect(0, 0, 999, 999)
        assert all(space.contains(r.x, r.y) for r in stream)

    def test_timestamps_bounded(self):
        stream = GSTDGenerator(_config()).materialize()
        assert all(0 <= r.t <= 5000 for r in stream)

    def test_report_gaps_bounded_by_interval(self):
        stream = GSTDGenerator(_config()).materialize()
        last: dict[int, int] = {}
        for report in stream:
            if report.oid in last:
                gap = report.t - last[report.oid]
                assert 1 <= gap <= 100
            last[report.oid] = report.t

    def test_expected_record_count_ratio(self):
        # ~ max_time / mean_interval reports per object.
        cfg = _config(num_objects=20, max_time=10000, interval_lo=1,
                      interval_hi=199)
        stream = GSTDGenerator(cfg).materialize()
        per_object = len(stream) / 20
        assert 70 <= per_object <= 130  # mean interval ~100


class TestDistributions:
    def test_skewed_concentrates_near_origin(self):
        uniform = GSTDGenerator(_config(initial="uniform",
                                        agility=0.0)).materialize()
        skewed = GSTDGenerator(_config(initial="skewed",
                                       agility=0.0)).materialize()
        mean_uniform = sum(r.x for r in uniform) / len(uniform)
        mean_skewed = sum(r.x for r in skewed) / len(skewed)
        assert mean_skewed < mean_uniform

    def test_gaussian_concentrates_near_center(self):
        stream = GSTDGenerator(_config(initial="gaussian",
                                       agility=0.0)).materialize()
        xs = sorted(r.x for r in stream)
        # Middle half of the domain holds most gaussian mass.
        inside = sum(1 for x in xs if 250 <= x <= 750)
        assert inside / len(xs) > 0.7

    def test_long_fraction_produces_long_gaps(self):
        cfg = _config(num_objects=200, max_time=3000, interval_hi=50,
                      long_fraction=0.5, long_interval_hi=2000)
        stream = GSTDGenerator(cfg).materialize()
        gaps = []
        last: dict[int, int] = {}
        for report in stream:
            if report.oid in last:
                gaps.append(report.t - last[report.oid])
            last[report.oid] = report.t
        assert any(g > 50 for g in gaps)

    def test_wrap_boundary_keeps_domain(self):
        stream = GSTDGenerator(_config(boundary="wrap",
                                       agility=0.3)).materialize()
        space = Rect(0, 0, 999, 999)
        assert all(space.contains(r.x, r.y) for r in stream)


class TestValidation:
    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            _config(initial="exponential")

    def test_bad_boundary_rejected(self):
        with pytest.raises(ValueError):
            _config(boundary="bounce")

    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError):
            _config(interval_lo=10, interval_hi=5)

    def test_bad_long_fraction_rejected(self):
        with pytest.raises(ValueError):
            _config(long_fraction=1.5)
