"""Query workload generation: extents, placement inside the window."""

import math

import pytest

from repro.core import SWSTConfig
from repro.datagen import WorkloadConfig, generate_queries

CFG = SWSTConfig(window=20000, slide=100)


class TestGeneration:
    def test_count(self):
        queries = generate_queries(CFG, WorkloadConfig(count=37), now=50000)
        assert len(queries) == 37

    def test_spatial_extent_matches_fraction(self):
        workload = WorkloadConfig(spatial_extent=0.01)
        queries = generate_queries(CFG, workload, now=50000)
        domain_area = 10000 * 10000
        for query in queries:
            area = ((query.area.x_hi - query.area.x_lo)
                    * (query.area.y_hi - query.area.y_lo))
            assert area / domain_area == pytest.approx(0.01, rel=0.05)

    def test_temporal_extent_matches_fraction(self):
        workload = WorkloadConfig(temporal_extent=0.10,
                                  temporal_domain=100_000)
        queries = generate_queries(CFG, workload, now=50000)
        for query in queries:
            assert query.t_hi - query.t_lo <= 10_000
        assert any(q.t_hi - q.t_lo > 9000 for q in queries)

    def test_zero_temporal_extent_gives_timeslices(self):
        workload = WorkloadConfig(temporal_extent=0.0)
        queries = generate_queries(CFG, workload, now=50000)
        assert all(q.is_timeslice for q in queries)

    def test_queries_inside_queriable_period(self):
        workload = WorkloadConfig(temporal_extent=0.10)
        queries = generate_queries(CFG, workload, now=50000)
        q_lo, q_hi = CFG.queriable_period(50000)
        for query in queries:
            assert q_lo <= query.t_lo <= query.t_hi <= q_hi

    def test_queries_inside_spatial_domain(self):
        queries = generate_queries(CFG, WorkloadConfig(spatial_extent=0.04),
                                   now=50000)
        for query in queries:
            assert CFG.space.covers(query.area)

    def test_deterministic_by_seed(self):
        a = generate_queries(CFG, WorkloadConfig(seed=5), now=50000)
        b = generate_queries(CFG, WorkloadConfig(seed=5), now=50000)
        assert a == b
        c = generate_queries(CFG, WorkloadConfig(seed=6), now=50000)
        assert a != c

    def test_interval_longer_than_window_is_clipped(self):
        workload = WorkloadConfig(temporal_extent=0.5,
                                  temporal_domain=100_000)
        queries = generate_queries(CFG, workload, now=50000)
        q_lo, q_hi = CFG.queriable_period(50000)
        for query in queries:
            assert query.t_hi <= q_hi


class TestPlacement:
    def test_gaussian_placement_concentrates_centrally(self):
        uniform = generate_queries(CFG, WorkloadConfig(count=300),
                                   now=50000)
        gaussian = generate_queries(
            CFG, WorkloadConfig(count=300, placement="gaussian"),
            now=50000)
        def spread(queries):
            centers = [(q.area.x_lo + q.area.x_hi) / 2 for q in queries]
            mean = sum(centers) / len(centers)
            return sum((c - mean) ** 2 for c in centers) / len(centers)
        assert spread(gaussian) < spread(uniform)

    def test_skewed_placement_biases_toward_origin(self):
        skewed = generate_queries(
            CFG, WorkloadConfig(count=300, placement="skewed"), now=50000)
        centers = [(q.area.x_lo + q.area.x_hi) / 2 for q in skewed]
        assert sum(centers) / len(centers) < 5000

    def test_placement_queries_stay_in_domain(self):
        for placement in ("uniform", "gaussian", "skewed"):
            queries = generate_queries(
                CFG, WorkloadConfig(count=100, placement=placement),
                now=50000)
            assert all(CFG.space.covers(q.area) for q in queries)

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(placement="zipf")


class TestValidation:
    def test_bad_spatial_extent(self):
        with pytest.raises(ValueError):
            WorkloadConfig(spatial_extent=0.0)

    def test_bad_temporal_extent(self):
        with pytest.raises(ValueError):
            WorkloadConfig(temporal_extent=1.2)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            WorkloadConfig(count=0)
