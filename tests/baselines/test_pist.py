"""PIST baseline: splitting, λ-search correctness, maintenance cost."""

import random

import pytest

from repro.baselines import PISTIndex
from repro.core import Entry, Rect

SPACE = Rect(0, 0, 999, 999)
EVERYWHERE = SPACE


def _entries(n=500, seed=1, d_max=120):
    rng = random.Random(seed)
    out = []
    t = 0
    for i in range(n):
        t += rng.randrange(0, 5)
        out.append(Entry(oid=i, x=rng.randrange(1000),
                         y=rng.randrange(1000), s=t,
                         d=rng.randrange(1, d_max)))
    return out


class TestBuild:
    def test_build_splits_long_entries(self):
        pist = PISTIndex(SPACE, 4, 4, lam=10)
        pist.build([Entry(1, 5, 5, 0, 35)])
        assert len(pist) == 4  # 10 + 10 + 10 + 5

    def test_short_entries_not_split(self):
        pist = PISTIndex(SPACE, 4, 4, lam=100)
        pist.build(_entries(100, d_max=50))
        assert len(pist) == 100

    def test_build_twice_rejected(self):
        pist = PISTIndex(SPACE, 4, 4, lam=10)
        pist.build([])
        with pytest.raises(RuntimeError):
            pist.build([])

    def test_current_entries_rejected(self):
        pist = PISTIndex(SPACE, 4, 4, lam=10)
        with pytest.raises(ValueError):
            pist.build([Entry(1, 5, 5, 0, None)])

    def test_lambda_defaults_to_median_duration(self):
        pist = PISTIndex(SPACE, 4, 4)
        pist.build([Entry(1, 0, 0, 0, 10), Entry(2, 0, 0, 0, 20),
                    Entry(3, 0, 0, 0, 90)])
        assert pist.lam == 20


class TestQueries:
    @pytest.fixture(scope="class")
    def loaded(self):
        entries = _entries(800, seed=2)
        pist = PISTIndex(SPACE, 5, 5, lam=30, page_size=1024)
        pist.build(entries)
        return pist, entries

    def test_interval_matches_oracle(self, loaded):
        pist, entries = loaded
        rng = random.Random(3)
        for _ in range(60):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 250, y0 + 250)
            t_lo = rng.randrange(500)
            t_hi = t_lo + rng.randrange(0, 200)
            expected = {(e.oid, e.x, e.y) for e in entries
                        if e.s <= t_hi and e.end > t_lo
                        and area.contains(e.x, e.y)}
            got = {(e.oid, e.x, e.y)
                   for e in pist.query_interval(area, t_lo, t_hi)}
            assert got == expected

    def test_timeslice_matches_oracle(self, loaded):
        pist, entries = loaded
        rng = random.Random(4)
        for _ in range(40):
            area = Rect(0, 0, 999, 999)
            t = rng.randrange(600)
            expected = {(e.oid, e.x, e.y) for e in entries
                        if e.valid_at(t)}
            got = {(e.oid, e.x, e.y)
                   for e in pist.query_timeslice(area, t)}
            assert got == expected


class TestMaintenance:
    def test_delete_expired_removes_sub_entries(self):
        pist = PISTIndex(SPACE, 4, 4, lam=10)
        pist.build([Entry(1, 5, 5, 0, 35), Entry(2, 5, 5, 100, 5)])
        removed = pist.delete_expired(50)
        assert removed == 4  # all four sub-entries of entry 1
        assert len(pist) == 1

    def test_maintenance_cost_scales_with_sub_entries(self):
        # The structural point of Section V-A: splitting multiplies the
        # deletion work.
        unsplit = PISTIndex(SPACE, 4, 4, lam=1000, page_size=1024)
        unsplit.build(_entries(300, seed=5))
        split = PISTIndex(SPACE, 4, 4, lam=5, page_size=1024)
        split.build(_entries(300, seed=5))
        assert len(split) > len(unsplit)
        cutoff = 400
        before = split.stats.snapshot()
        split_removed = split.delete_expired(cutoff)
        split_cost = split.stats.diff(before).node_accesses
        before = unsplit.stats.snapshot()
        unsplit_removed = unsplit.delete_expired(cutoff)
        unsplit_cost = unsplit.stats.diff(before).node_accesses
        assert split_removed > unsplit_removed
        assert split_cost > unsplit_cost
