"""HR-tree baseline: versioned correctness, sharing, refcounted expiry."""

import random

import pytest

from repro.baselines import HRTree
from repro.core import Rect

EVERYWHERE = Rect(0, 0, 10 ** 6, 10 ** 6)


def _drive(index, reports=1500, objects=30, seed=1, domain=800):
    """Returns per-version oracle: list of (t, {oid: (x, y)})."""
    rng = random.Random(seed)
    t = 0
    positions: dict[int, tuple[int, int]] = {}
    snapshots: list[tuple[int, dict]] = []
    for _ in range(reports):
        t += rng.randrange(1, 4)
        oid = rng.randrange(objects)
        x, y = rng.randrange(domain), rng.randrange(domain)
        index.report(oid, x, y, t)
        positions[oid] = (x, y)
        snapshots.append((t, dict(positions)))
    return snapshots


def _oracle_at(snapshots, t):
    state: dict[int, tuple[int, int]] = {}
    for version_t, snapshot in snapshots:
        if version_t > t:
            break
        state = snapshot
    return state


class TestVersions:
    @pytest.fixture(scope="class")
    def loaded(self):
        index = HRTree(page_size=512, fanout=8)
        snapshots = _drive(index)
        return index, snapshots

    def test_timeslice_matches_any_version(self, loaded):
        index, snapshots = loaded
        rng = random.Random(2)
        for _ in range(50):
            t = rng.randrange(snapshots[-1][0] + 2)
            x0, y0 = rng.randrange(600), rng.randrange(600)
            area = Rect(x0, y0, x0 + 200, y0 + 200)
            expected = {(oid, x, y)
                        for oid, (x, y) in _oracle_at(snapshots, t).items()
                        if area.contains(x, y)}
            got = set(index.query_timeslice(area, t))
            assert got == expected

    def test_query_before_first_version_is_empty(self, loaded):
        index, snapshots = loaded
        first = snapshots[0][0]
        assert index.query_timeslice(EVERYWHERE, first - 1) == []

    def test_interval_unions_versions(self, loaded):
        index, snapshots = loaded
        rng = random.Random(3)
        for _ in range(20):
            t_lo = rng.randrange(snapshots[-1][0])
            t_hi = t_lo + rng.randrange(0, 300)
            area = Rect(100, 100, 500, 500)
            # Oracle: every distinct (oid, x, y) present at some t in
            # [t_lo, t_hi] — probe t_lo plus every version boundary.
            expected = set()
            times = sorted({t for t, _ in snapshots
                            if t_lo <= t <= t_hi})
            probe_times = [t_lo] + times
            for t in probe_times:
                for oid, (x, y) in _oracle_at(snapshots, t).items():
                    if area.contains(x, y):
                        expected.add((oid, x, y))
            got = set(index.query_interval(area, t_lo, t_hi))
            assert got == expected

    def test_storage_grows_with_updates(self, loaded):
        index, snapshots = loaded
        # "Very large storage": pages grow with versions, far beyond a
        # single R-tree of 30 objects.
        assert index.version_count() == len(snapshots)
        assert index.live_pages() > 100


class TestExpiry:
    def test_drop_old_versions_frees_pages(self):
        index = HRTree(page_size=512, fanout=8)
        snapshots = _drive(index, reports=800, seed=4)
        pages_before = index.live_pages()
        cutoff = snapshots[len(snapshots) // 2][0]
        dropped = index.drop_versions_before(cutoff)
        assert dropped > 0
        assert index.live_pages() < pages_before
        index.close()

    def test_recent_versions_still_queryable_after_drop(self):
        index = HRTree(page_size=512, fanout=8)
        snapshots = _drive(index, reports=800, seed=5)
        cutoff = snapshots[len(snapshots) // 2][0]
        index.drop_versions_before(cutoff)
        rng = random.Random(6)
        for _ in range(25):
            t = rng.randrange(cutoff, snapshots[-1][0] + 1)
            area = Rect(0, 0, 500, 500)
            expected = {(oid, x, y)
                        for oid, (x, y) in _oracle_at(snapshots, t).items()
                        if area.contains(x, y)}
            assert set(index.query_timeslice(area, t)) == expected
        index.close()

    def test_refcounts_balance_when_everything_dropped(self):
        index = HRTree(page_size=512, fanout=8)
        snapshots = _drive(index, reports=400, seed=7)
        index.drop_versions_before(snapshots[-1][0] + 1)
        # Only the final retained version's pages survive.
        assert index.version_count() == 1
        reachable = _count_reachable(index)
        assert index.live_pages() == reachable
        index.close()

    def test_out_of_order_rejected(self):
        index = HRTree(page_size=512)
        index.report(1, 0, 0, 10)
        with pytest.raises(ValueError):
            index.report(2, 0, 0, 9)
        index.close()


def _count_reachable(index) -> int:
    seen = set()
    stack = [root for root in index._version_roots if root]
    while stack:
        page = stack.pop()
        if page in seen:
            continue
        seen.add(page)
        node = index._read(page)
        if not node.is_leaf:
            stack.extend(child for _, child in node.entries)
    return len(seen)
