"""3D R-tree baseline: correctness and per-entry expiry cost."""

import random

import pytest

from repro.baselines import R3DIndex
from repro.core import Rect

EVERYWHERE = Rect(0, 0, 10 ** 6, 10 ** 6)


def _drive(index, reports=1200, objects=30, seed=1):
    rng = random.Random(seed)
    t = 0
    history = []
    cur = {}
    for _ in range(reports):
        t += rng.randrange(0, 3)
        oid = rng.randrange(objects)
        x, y = rng.randrange(800), rng.randrange(800)
        if oid in cur and t > cur[oid][2]:
            px, py, ps = cur[oid]
            history.append((oid, px, py, ps, t))
        index.report(oid, x, y, t)
        cur[oid] = (x, y, t)
    return history, cur, t


class TestQueries:
    @pytest.fixture(scope="class")
    def loaded(self):
        index = R3DIndex(page_size=1024)
        history, cur, now = _drive(index)
        return index, history, cur, now

    def test_interval_matches_oracle(self, loaded):
        index, history, cur, now = loaded
        rng = random.Random(2)
        for _ in range(40):
            x0, y0 = rng.randrange(600), rng.randrange(600)
            area = Rect(x0, y0, x0 + 180, y0 + 180)
            t_lo = rng.randrange(now + 1)
            t_hi = t_lo + rng.randrange(0, 800)
            expected = {(o, ts) for o, x, y, ts, te in history
                        if ts <= t_hi and te > t_lo and area.contains(x, y)}
            expected |= {(o, ts) for o, (x, y, ts) in cur.items()
                         if ts <= t_hi and area.contains(x, y)}
            got = {(e.oid, e.s)
                   for e in index.query_interval(area, t_lo, t_hi)}
            assert got == expected

    def test_timeslice_matches_oracle(self, loaded):
        index, history, cur, now = loaded
        rng = random.Random(3)
        for _ in range(30):
            t = rng.randrange(now + 1)
            area = Rect(100, 100, 600, 600)
            expected = {(o, ts) for o, x, y, ts, te in history
                        if ts <= t < te and area.contains(x, y)}
            expected |= {(o, ts) for o, (x, y, ts) in cur.items()
                         if ts <= t and area.contains(x, y)}
            got = {(e.oid, e.s) for e in index.query_timeslice(area, t)}
            assert got == expected


class TestExpiry:
    def test_expire_before_removes_old_starts(self):
        index = R3DIndex(page_size=1024)
        _drive(index, reports=600, seed=4)
        now = index.now
        cutoff = now // 2
        removed = index.expire_before(cutoff)
        assert removed > 0
        remaining = index.query_interval(EVERYWHERE, 0, now)
        assert all(e.s >= cutoff for e in remaining)

    def test_expiry_cost_is_per_entry(self):
        # Contrast with SWST's O(pages) drop: here accesses scale with the
        # number of expired entries (>= 1 access per deleted entry).
        index = R3DIndex(page_size=1024)
        _drive(index, reports=800, seed=5)
        before = index.stats.snapshot()
        removed = index.expire_before(index.now // 2)
        cost = index.stats.diff(before).node_accesses
        assert removed > 10
        assert cost > removed

    def test_expire_purges_current_table(self):
        index = R3DIndex(page_size=1024)
        index.report(1, 10, 10, 100)
        index.report(2, 20, 20, 500)
        index.expire_before(300)
        assert index.query_timeslice(EVERYWHERE, 600) and \
            {e.oid for e in index.query_timeslice(EVERYWHERE, 600)} == {2}
