"""Naive store: the oracle itself must implement the model exactly."""

import pytest

from repro.baselines import NaiveStore
from repro.core import Entry, Rect, SWSTConfig

CFG = SWSTConfig(window=1000, slide=100, d_max=200, duration_interval=50,
                 space=Rect(0, 0, 999, 999))
EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def store():
    return NaiveStore(CFG)


class TestModelSemantics:
    def test_closed_entry_valid_interval(self, store):
        store.insert(1, 10, 10, 100, 50)
        assert store.query_timeslice(EVERYWHERE, 100)
        assert store.query_timeslice(EVERYWHERE, 149)
        assert store.query_timeslice(EVERYWHERE, 150) == []

    def test_current_entry_open_ended(self, store):
        store.report(1, 10, 10, 100)
        store.now = 900
        assert store.query_timeslice(EVERYWHERE, 800)

    def test_report_closes_previous(self, store):
        store.report(1, 10, 10, 100)
        store.report(1, 20, 20, 160)
        entries = sorted(store.query_interval(EVERYWHERE, 0, 200),
                         key=lambda e: e.s)
        assert entries == [Entry(1, 10, 10, 100, 60),
                           Entry(1, 20, 20, 160, None)]

    def test_expired_entries_excluded(self, store):
        store.insert(1, 10, 10, 0, 50)
        store.insert(2, 10, 10, 1500, 50)
        assert store.query_interval(EVERYWHERE, 0, 1500,
                                    ) == [Entry(2, 10, 10, 1500, 50)]

    def test_start_after_query_end_excluded(self, store):
        store.insert(1, 10, 10, 100, 50)
        assert store.query_interval(EVERYWHERE, 0, 99) == []

    def test_logical_window(self, store):
        store.insert(1, 10, 10, 100, 50)
        store.insert(2, 10, 10, 900, 50)
        store.now = 1000
        assert {e.oid for e in store.query_interval(EVERYWHERE, 0, 1000,
                                                    window=200)} == {2}

    def test_delete_closed_and_current(self, store):
        store.insert(1, 10, 10, 100, 50)
        store.report(2, 20, 20, 100)
        assert store.delete(1, 10, 10, 100, 50)
        assert store.delete(2, 20, 20, 100, None)
        assert not store.delete(1, 10, 10, 100, 50)
        assert store.query_interval(EVERYWHERE, 0, 200) == []

    def test_close_object(self, store):
        store.report(1, 10, 10, 100)
        assert store.close_object(1, 180)
        assert not store.close_object(1, 200)
        assert store.query_interval(EVERYWHERE, 0, 300) == \
            [Entry(1, 10, 10, 100, 80)]

    def test_out_of_order_rejected(self, store):
        store.insert(1, 10, 10, 100, 5)
        with pytest.raises(ValueError):
            store.insert(2, 10, 10, 50, 5)
