"""Wave-index baseline: correctness vs oracle; slot recycling; the
multi-sub-index search cost SWST's two-tree design avoids."""

import random

import pytest

from repro.baselines import NaiveStore, WaveIndex
from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=5, y_partitions=5,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


def _drive(index, oracle, steps=2000, seed=1, objects=25):
    rng = random.Random(seed)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        oid = rng.randrange(objects)
        x, y = rng.randrange(1000), rng.randrange(1000)
        if rng.random() < 0.75:
            index.report(oid, x, y, t)
            oracle.report(oid, x, y, t)
        else:
            d = rng.randrange(1, 301)
            index.insert(oid + 1000, x, y, t, d)
            oracle.insert(oid + 1000, x, y, t, d)
    return rng


def _key_set(entries):
    return {(e.oid, e.x, e.y, e.s) for e in entries}


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_interval_queries_match_oracle(self, seed):
        index = WaveIndex(CFG)
        oracle = NaiveStore(CFG)
        rng = _drive(index, oracle, seed=seed)
        q_lo, q_hi = CFG.queriable_period(index.now)
        for _ in range(80):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 250, y0 + 250)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 500)
            got = _key_set(index.query_interval(area, t_lo, t_hi))
            expected = _key_set(oracle.query_interval(area, t_lo, t_hi))
            assert got == expected
        index.close()

    def test_logical_window(self):
        index = WaveIndex(CFG)
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 200, 200, 1500, 50)
        index._clock = 1600
        got = {e.oid for e in index.query_interval(EVERYWHERE, 0, 1600,
                                                   window=500)}
        assert got == {2}
        index.close()


class TestRecycling:
    def test_slots_recycled_on_wrap(self):
        index = WaveIndex(CFG)
        index.insert(1, 100, 100, 10, 50)
        size_before = len(index)
        # Jump a full slot cycle ahead: same slot, new period.
        jump = index._num_slots * CFG.slide + 10
        index.insert(2, 100, 100, 10 + jump, 50)
        assert len(index) == size_before  # old entry dropped, new added
        index.close()

    def test_vacuum_drops_expired_slots(self):
        index = WaveIndex(CFG)
        for i in range(20):
            index.insert(i, 50 * i, 50 * i, 10 * i, 50)
        index._clock = 10 * 19 + 3 * CFG.window
        freed = index.vacuum()
        assert freed > 0
        assert len(index.query_interval(EVERYWHERE, 0, index.now)) == 0
        index.close()


class TestComparisonWithSWST:
    def test_search_cost_flat_and_high_unlike_swst(self):
        """The structural claim of Section II: per-slide partitioning must
        search one sub-index per slide step.  Worse, without a duration
        dimension every live partition can hold a still-valid entry, so
        even a *short* query interval pays the full multi-sub-index cost,
        while SWST's duration partitioning makes short queries cheap."""
        rng = random.Random(9)
        wave = WaveIndex(CFG)
        swst = SWSTIndex(CFG)
        t = 0
        for _ in range(4000):
            t += rng.randrange(0, 3)
            oid = rng.randrange(40)
            x, y = rng.randrange(1000), rng.randrange(1000)
            wave.report(oid, x, y, t)
            swst.report(oid, x, y, t)
        q_lo, q_hi = CFG.queriable_period(t)
        area = Rect(200, 200, 500, 500)

        def cost(index, t_lo, t_hi):
            before = index.stats.snapshot()
            index.query_interval(area, t_lo, t_hi)
            return index.stats.diff(before).node_accesses

        wave_short = cost(wave, q_hi - 100, q_hi)
        swst_short = cost(swst, q_hi - 100, q_hi)
        wave_long = cost(wave, q_lo, q_hi)
        swst_long = cost(swst, q_lo, q_hi)
        assert wave_short > 3 * swst_short  # short queries: SWST far ahead
        assert wave_long >= swst_long       # long queries: still behind
        # The wave index's cost barely depends on the interval length.
        assert wave_long <= wave_short * 1.5
        wave.close()
        swst.close()

    def test_same_results_as_swst(self):
        rng = random.Random(10)
        wave = WaveIndex(CFG)
        swst = SWSTIndex(CFG)
        t = 0
        for _ in range(1500):
            t += rng.randrange(0, 4)
            oid = rng.randrange(20)
            x, y = rng.randrange(1000), rng.randrange(1000)
            d = rng.randrange(1, 301)
            wave.insert(oid, x, y, t, d)
            swst.insert(oid, x, y, t, d)
        q_lo, q_hi = CFG.queriable_period(t)
        for _ in range(40):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 250, y0 + 250)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 500)
            assert _key_set(wave.query_interval(area, t_lo, t_hi)) == \
                _key_set(swst.query_interval(area, t_lo, t_hi))
        wave.close()
        swst.close()
