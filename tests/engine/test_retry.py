"""RetryPolicy backoff/seams and CircuitBreaker state machine."""

import pytest

from repro.engine import CircuitBreaker, RetryPolicy


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", exc=OSError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"fault #{self.calls}")
        return self.value


class TestRetryPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0},
        {"base_delay": -1.0},
        {"max_delay": -0.5},
        {"multiplier": 0.5},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryPolicyBackoff:
    def test_exponential_schedule_capped_at_max(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5)
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_uses_injected_rng(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, rng=lambda: 1.0)
        assert policy.delay_for(0) == pytest.approx(1.5)

    def test_default_seams_are_deterministic(self):
        # No jitter, no sleeping: two policies built alike agree exactly.
        a, b = RetryPolicy(attempts=4), RetryPolicy(attempts=4)
        assert [a.delay_for(i) for i in range(3)] \
            == [b.delay_for(i) for i in range(3)]


class TestRetryPolicyCall:
    def test_retries_retryable_until_success(self):
        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.25, multiplier=2.0,
                             sleep=slept.append)
        flaky = Flaky(failures=2)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert slept == pytest.approx([0.25, 0.5])

    def test_exhausted_attempts_raise_last_error(self):
        policy = RetryPolicy(attempts=3)
        flaky = Flaky(failures=99)
        with pytest.raises(OSError, match="fault #3"):
            policy.call(flaky)
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(attempts=5)
        flaky = Flaky(failures=99, exc=ValueError)
        with pytest.raises(ValueError, match="fault #1"):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_single_attempt_never_sleeps(self):
        slept = []
        policy = RetryPolicy(attempts=1, sleep=slept.append)
        with pytest.raises(OSError):
            policy.call(Flaky(failures=1))
        assert slept == []

    def test_custom_retryable_classes(self):
        policy = RetryPolicy(attempts=2, retryable=(KeyError,))
        assert policy.call(Flaky(failures=1, exc=KeyError)) == "ok"
        with pytest.raises(OSError):
            policy.call(Flaky(failures=1, exc=OSError))


class TestCircuitBreaker:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_at_threshold_and_blocks(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=100.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        # Default clock ticks once per allow(): cooldown measures
        # dispatch attempts.
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3.0)
        breaker.record_failure()
        outcomes = [breaker.allow() for _ in range(5)]
        assert outcomes.count(True) == 1  # exactly one probe let through
        assert breaker.state == "half-open"
        # Further traffic is held while the probe is in flight.
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure()
        while not breaker.allow():
            pass
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0)
        breaker.record_failure()
        while not breaker.allow():
            pass
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # new cooldown, not instantly probing

    def test_injected_clock_controls_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 9.9
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.state == "half-open"
