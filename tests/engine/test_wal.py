"""WAL unit tests: codec, writer, reader, torn tails, resume, rebase."""

import os
import pathlib
import struct

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.engine.errors import WalCorruptError
from repro.engine.wal import (HEADER_SIZE, NONE_ARG, OP_ADVANCE, OP_CLOSE,
                              OP_INSERT, OP_RETAIN, OP_RUN, WalRecord,
                              WalReport, WalWriter, base_file_name,
                              read_wal, rebase_wal, replay, wal_file_name)
from repro.storage import FaultInjectingFileOps, InjectedFault


def make_config(**overrides):
    params = dict(window=100, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512)
    params.update(overrides)
    return SWSTConfig(**params)


class TestNames:
    def test_wal_and_base_names_are_per_shard(self):
        assert wal_file_name(3) == "shard-003.wal"
        assert base_file_name(12) == "shard-012.pages.base"


class TestCodec:
    def test_record_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=4)
        assert writer.log(OP_INSERT, (7, 1, 2, 10, NONE_ARG)) == 0
        assert writer.log(OP_ADVANCE, (11,)) == 1
        assert writer.pending == 2
        writer.commit()
        assert writer.pending == 0
        scan = read_wal(path)
        assert scan.epoch == 4
        assert not scan.torn
        assert scan.records == (
            WalRecord(0, OP_INSERT, (7, 1, 2, 10, NONE_ARG)),
            WalRecord(1, OP_ADVANCE, (11,)),
        )

    def test_negative_args_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=0)
        writer.log(OP_RETAIN, (5, NONE_ARG))
        writer.commit()
        assert read_wal(path).records[0].args == (5, NONE_ARG)

    def test_empty_commit_is_a_noop(self, tmp_path):
        path = str(tmp_path / "w.wal")
        WalWriter.reset(path, epoch=1).commit()
        assert os.path.getsize(path) == HEADER_SIZE

    def test_log_is_not_durable_until_commit(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=0)
        writer.log(OP_ADVANCE, (5,))
        assert read_wal(path).records == ()
        writer.commit()
        assert len(read_wal(path).records) == 1


class TestReaderRejections:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_bytes(b"SW")
        with pytest.raises(WalCorruptError, match="header truncated"):
            read_wal(str(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_bytes(b"NOPE" + b"\x00" * (HEADER_SIZE - 4))
        with pytest.raises(WalCorruptError, match="bad magic"):
            read_wal(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "w.wal"
        path.write_bytes(struct.pack("<4sHHQ", b"SWAL", 99, 0, 0))
        with pytest.raises(WalCorruptError, match="unsupported version"):
            read_wal(str(path))

    def test_unknown_op_is_corruption(self, tmp_path):
        path = str(tmp_path / "w.wal")
        WalWriter.reset(path, epoch=0)
        with open(path, "ab") as handle:
            handle.write(WalRecord(0, 200, (1,)).encode())
        with pytest.raises(WalCorruptError, match="unknown op"):
            read_wal(path)

    def test_sequence_discontinuity_is_corruption(self, tmp_path):
        path = str(tmp_path / "w.wal")
        WalWriter.reset(path, epoch=0)
        with open(path, "ab") as handle:
            handle.write(WalRecord(0, OP_ADVANCE, (1,)).encode())
            handle.write(WalRecord(5, OP_ADVANCE, (2,)).encode())
        with pytest.raises(WalCorruptError, match="discontinuity"):
            read_wal(path)


class TestTornTail:
    def _committed(self, tmp_path, n=3):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=2)
        for t in range(n):
            writer.log(OP_ADVANCE, (t,))
        writer.commit()
        return path

    def test_short_final_record_is_torn_not_corrupt(self, tmp_path):
        path = self._committed(tmp_path)
        whole = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(WalRecord(3, OP_ADVANCE, (9,)).encode()[:-2])
        scan = read_wal(path)
        assert scan.torn
        assert len(scan.records) == 3
        assert scan.valid_bytes == whole

    def test_crc_flip_in_final_record_is_torn(self, tmp_path):
        path = self._committed(tmp_path)
        blob = bytearray(pathlib.Path(path).read_bytes())
        blob[-1] ^= 0xFF
        pathlib.Path(path).write_bytes(bytes(blob))
        scan = read_wal(path)
        assert scan.torn
        assert len(scan.records) == 2  # final record dropped

    def test_resume_truncates_the_tail(self, tmp_path):
        path = self._committed(tmp_path)
        whole = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        writer, scan = WalWriter.resume(path)
        assert scan.torn
        assert os.path.getsize(path) == whole
        assert writer.next_seq == 3
        writer.log(OP_ADVANCE, (99,))
        writer.commit()
        resumed = read_wal(path)
        assert not resumed.torn
        assert resumed.records[-1] == WalRecord(3, OP_ADVANCE, (99,))


class TestResumeAndRebase:
    def test_resume_continues_sequence_numbers(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=7)
        writer.log(OP_ADVANCE, (1,))
        writer.commit()
        resumed, scan = WalWriter.resume(path)
        assert (resumed.epoch, resumed.next_seq) == (7, 1)
        assert scan.records == (WalRecord(0, OP_ADVANCE, (1,)),)

    def test_reset_replaces_previous_log_atomically(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=1)
        writer.log(OP_ADVANCE, (1,))
        writer.commit()
        WalWriter.reset(path, epoch=2)
        scan = read_wal(path)
        assert (scan.epoch, scan.records) == (2, ())

    def test_rebase_moves_epoch_and_keeps_records(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=3)
        writer.log(OP_INSERT, (1, 2, 3, 4, 5))
        writer.commit()
        assert rebase_wal(path, None, 4)
        scan = read_wal(path)
        assert scan.epoch == 4
        assert scan.records == (WalRecord(0, OP_INSERT, (1, 2, 3, 4, 5)),)

    def test_rebase_is_idempotent_and_drops_torn_tails(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=3)
        writer.log(OP_ADVANCE, (1,))
        writer.commit()
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff")
        assert rebase_wal(path, None, 4)
        assert not rebase_wal(path, None, 4)  # already claims epoch 4
        scan = read_wal(path)
        assert not scan.torn and len(scan.records) == 1

    def test_rebase_missing_file_is_false(self, tmp_path):
        assert not rebase_wal(str(tmp_path / "absent.wal"), None, 1)


class TestDurabilityBarrier:
    def test_commit_is_one_append_plus_one_fsync(self, tmp_path):
        path = str(tmp_path / "w.wal")
        ops = FaultInjectingFileOps()
        writer = WalWriter.reset(path, ops, epoch=0)
        before = len(ops.ops)
        for t in range(10):
            writer.log(OP_ADVANCE, (t,))
        writer.commit()
        names = [name for name, _ in ops.ops[before:]]
        assert names == ["append_file", "fsync_file"]

    def test_failed_fsync_surfaces_before_acknowledgement(self, tmp_path):
        path = str(tmp_path / "w.wal")
        ops = FaultInjectingFileOps()
        writer = WalWriter.reset(path, ops, epoch=0)
        # Reset spent some fsyncs; schedule the failure on the *next*
        # one, which is commit's group-commit barrier.
        ops.fsync_errors[ops.fsyncs_seen + 1] = InjectedFault("barrier")
        writer.log(OP_ADVANCE, (1,))
        with pytest.raises(InjectedFault):
            writer.commit()


class TestReplay:
    def test_replay_equals_direct_apply(self, tmp_path):
        config = make_config()
        direct = SWSTIndex(config)
        direct.insert(1, 5, 5, 0)
        direct.insert(2, 20, 20, 3, 10)
        direct.advance_time(6)
        direct._ingest_run_reports([WalReport(3, 40, 40, 5),
                                    WalReport(1, 6, 6, 6)])
        direct.close_object(1, 9)

        path = str(tmp_path / "w.wal")
        writer = WalWriter.reset(path, epoch=0)
        writer.log(OP_INSERT, (1, 5, 5, 0, NONE_ARG))
        writer.log(OP_INSERT, (2, 20, 20, 3, 10))
        writer.log(OP_RUN, (6, 3, 40, 40, 5, 1, 6, 6, 6))
        writer.log(OP_CLOSE, (1, 9))
        writer.commit()

        replayed = SWSTIndex(make_config())
        assert replay(replayed, read_wal(path).records) == 4
        key = lambda e: (e.oid, e.x, e.y, e.s,  # noqa: E731
                         -1 if e.d is None else e.d)
        assert sorted(map(key, replayed.scan())) \
            == sorted(map(key, direct.scan()))
        assert replayed.now == direct.now
