"""Crash behaviour: fault-inject a single shard's device — the healthy
siblings reopen cleanly, the failing shard raises a typed error naming it."""

import dataclasses
import random

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.engine import (EpochTornError, SerialExecutor, ShardedEngine,
                          ShardOpenError)
from repro.storage import InjectedFault, per_path_device_factory


def make_config(n_shards=3, **overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=n_shards)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def build_saved_engine(path, config, snapshots=True):
    rng = random.Random(3)
    t = 0
    reports = []
    for _ in range(300):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    with ShardedEngine(config, path, executor=SerialExecutor(),
                       snapshots=snapshots) as eng:
        eng.extend(reports)
        eng.save()
        return eng.now


class TestShardOpenFailure:
    def test_failing_shard_raises_typed_error(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        build_saved_engine(path, config)
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory(
                "shard-001",
                read_errors={1: InjectedFault("device gone")}))
        with pytest.raises(ShardOpenError) as excinfo:
            ShardedEngine.open(path, faulty, executor=SerialExecutor())
        assert excinfo.value.shard_id == 1
        assert "shard-001" in excinfo.value.path
        assert isinstance(excinfo.value.__cause__, Exception)

    def test_healthy_shards_unaffected_by_siblings_fault(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        now = build_saved_engine(path, config)
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory(
                "shard-001",
                read_errors={1: InjectedFault("device gone")}))
        with pytest.raises(ShardOpenError):
            ShardedEngine.open(path, faulty, executor=SerialExecutor())
        # The fault was confined to one device: the full directory still
        # opens once the fault clears, data intact...
        with ShardedEngine.open(path, config,
                                executor=SerialExecutor()) as eng:
            assert len(eng) > 0
            eng.check_integrity()
        # ...and each healthy shard also opens fine on its own while the
        # faulty device is still broken.
        for shard_id in (0, 2):
            shard_path = path / f"shard-{shard_id:03d}.pages"
            with SWSTIndex.open(shard_path, faulty) as shard:
                assert shard.now == now

    def test_fault_between_shard_commits_is_detected_as_torn(self,
                                                             tmp_path):
        # snapshots=False throughout: with CoW epoch snapshots enabled
        # (the default) this exact crash rolls back on reopen instead —
        # see tests/engine/test_reshard_crash_matrix.py.
        config = make_config()
        path = tmp_path / "index.d"
        build_saved_engine(path, config, snapshots=False)
        # Crash shard-002's device at its next write: save() commits
        # shards 0 and 1 to the new epoch, then fails on shard 2.  The
        # storage layer commits in place, so neither the old nor the new
        # snapshot is whole across the directory.
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory("shard-002",
                                                   fail_write=1))
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                                 snapshots=False)
        try:
            t = eng.now
            for oid in range(20):
                eng.report(oid, (oid * 13) % 100, (oid * 29) % 100, t)
            with pytest.raises(OSError):
                eng.save()
        finally:
            with pytest.raises(OSError):
                eng.close()
        # Reopen refuses the mixed snapshot with a typed error naming
        # both shard groups — deterministically, on every attempt —
        # instead of silently resynchronising shard clocks.
        for _ in range(2):
            with pytest.raises(EpochTornError) as excinfo:
                ShardedEngine.open(path, config, executor=SerialExecutor())
            assert excinfo.value.committed == [0, 1]
            assert excinfo.value.pending == [2]

    def test_transient_save_fault_is_retryable_in_process(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        build_saved_engine(path, config)
        # A *transient* write error (not a crash) fails one save()
        # mid-epoch; the process is still alive, so simply calling
        # save() again completes the epoch and the directory is whole.
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory(
                "shard-002",
                write_errors={1: InjectedFault("transient write fault")}))
        with ShardedEngine.open(path, faulty,
                                executor=SerialExecutor()) as eng:
            t = eng.now
            for oid in range(20):
                eng.report(oid, (oid * 13) % 100, (oid * 29) % 100, t)
            epoch_before = eng.epoch
            with pytest.raises(OSError):
                eng.save()
            eng.save()
            assert eng.epoch == epoch_before + 1
            expected_len = len(eng)
        with ShardedEngine.open(path, config,
                                executor=SerialExecutor()) as eng:
            eng.check_integrity()
            assert len(eng) == expected_len
