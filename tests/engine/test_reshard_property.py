"""Property tests: resharding and snapshot-restore preserve state.

Random interleaved workloads (the PR 3 equivalence-oracle strategy)
drive two invariants:

* an ``n -> m`` reshard — any pair, including identity and repeated
  flips — changes *nothing* observable: every query result, the scan,
  the length and the clock come back identical;
* a save torn at a random shard commit recovers (via the CoW epoch
  snapshot) to exactly the pre-save state.
"""

import dataclasses
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig
from repro.engine import SerialExecutor, ShardedEngine, reshard
from repro.storage import crash_devices, per_path_device_factory


def make_config(n_shards):
    return SWSTConfig(window=200, slide=20, x_partitions=3, y_partitions=3,
                      d_max=40, duration_interval=10,
                      space=Rect(0, 0, 99, 99), page_size=512,
                      n_shards=n_shards)


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


# One workload step: (op, oid, x, y, time gap, duration).
op_strategy = st.tuples(
    st.sampled_from(["report", "insert", "close", "forget", "advance"]),
    st.integers(0, 5),
    st.integers(0, 99),
    st.integers(0, 99),
    st.one_of(st.integers(0, 6), st.integers(150, 500)),
    st.integers(1, 40),
)

query_strategy = st.lists(
    st.tuples(
        st.integers(0, 80), st.integers(0, 80),
        st.integers(1, 60), st.integers(1, 60),
        st.integers(0, 700), st.integers(0, 120),
        st.sampled_from([None, 50, 200]),
    ),
    min_size=1, max_size=8,
)


def apply_workload(target, ops, t0=0):
    t = t0
    for op, oid, x, y, gap, duration in ops:
        t += gap
        if op == "report":
            target.report(oid, x, y, t)
        elif op == "insert":
            target.insert(oid, x, y, t, duration)
        elif op == "close":
            try:
                target.close_object(oid, t)
            except ValueError:
                pass
        elif op == "forget":
            target.forget_object(oid)
        elif op == "advance":
            target.advance_time(t)
    return t


def observe(engine, queries):
    """Every query result plus the full physical state, keyed for
    equality."""
    record = {
        "now": engine.now,
        "len": len(engine),
        "scan": sorted(entry_key(e) for e in engine.scan()),
        "currents": dict(engine.current_objects()),
    }
    for index, (x, y, w, h, t_lo, span, window) in enumerate(queries):
        area = Rect(x, y, x + w, y + h)
        result = engine.query_interval(area, t_lo, t_lo + span, window)
        count, _ = engine.count_interval(area, t_lo, t_lo + span, window)
        record[f"q{index}"] = sorted(entry_key(e) for e in result.entries)
        record[f"c{index}"] = count
    return record


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=60),
       queries=query_strategy,
       old_n=st.sampled_from([1, 2, 4]),
       new_n=st.sampled_from([1, 3, 5, 9]))
def test_reshard_preserves_every_query_result(ops, queries, old_n, new_n):
    directory = tempfile.mkdtemp(prefix="reshard-prop-")
    try:
        path = f"{directory}/idx.d"
        with ShardedEngine(make_config(old_n), path,
                           executor=SerialExecutor()) as eng:
            apply_workload(eng, ops)
            eng.save()
            before = observe(eng, queries)
        report = reshard(path, new_n, make_config(new_n))
        assert report.old_n_shards == old_n
        assert report.new_n_shards == new_n
        with ShardedEngine.open(path, make_config(new_n),
                                executor=SerialExecutor()) as eng:
            eng.check_integrity()
            assert observe(eng, queries) == before
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(phase1=st.lists(op_strategy, min_size=1, max_size=40),
       phase2=st.lists(op_strategy, min_size=1, max_size=30),
       queries=query_strategy,
       kill_shard=st.integers(0, 2))
def test_torn_save_restores_presave_state(phase1, phase2, queries,
                                          kill_shard):
    n_shards = 3
    directory = tempfile.mkdtemp(prefix="snap-restore-prop-")
    try:
        path = f"{directory}/idx.d"
        with ShardedEngine(make_config(n_shards), path,
                           executor=SerialExecutor()) as eng:
            apply_workload(eng, phase1)
            eng.save()
            before = observe(eng, queries)
        devices = []
        faulty = dataclasses.replace(
            make_config(n_shards),
            device_factory=per_path_device_factory(
                "shard", registry=devices))
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor())
        try:
            apply_workload(eng, phase2, t0=eng.now + 1)
            device = devices[kill_shard]
            device.fail_write = device.writes_seen + 1
            try:
                eng.save()
            except OSError:
                pass
        finally:
            crash_devices(devices)
            try:
                eng.close()
            except (Exception, OSError):
                pass
        with ShardedEngine.open(path, make_config(n_shards),
                                executor=SerialExecutor()) as eng:
            eng.check_integrity()
            assert observe(eng, queries) == before
    finally:
        shutil.rmtree(directory, ignore_errors=True)
