"""ShardedEngine behaviour: routing, cross-shard protocol, lifecycle."""

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (EngineClosedError, EngineError, SerialExecutor,
                          ShardedEngine, ThreadedExecutor)


def make_config(n_shards=4, **overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=n_shards)
    params.update(overrides)
    return SWSTConfig(**params)


@pytest.fixture
def engine():
    with ShardedEngine(make_config(), executor=SerialExecutor()) as eng:
        yield eng


def cells_in_different_shards(engine):
    """Two (x, y) positions whose cells live in different shards."""
    width = (engine.config.space.x_hi + 1) // engine.config.x_partitions
    first = (0, 0)
    first_shard = engine.shard_map.shard_of_cell(0, 0)
    for cx in range(engine.config.x_partitions):
        for cy in range(engine.config.y_partitions):
            if engine.shard_map.shard_of_cell(cx, cy) != first_shard:
                return ((first[0] * width, first[1] * width),
                        (cx * width, cy * width))
    raise AssertionError("map assigned every cell to one shard")


class TestRouting:
    def test_insert_lands_in_owning_shard_only(self, engine):
        engine.insert(1, 5, 5, 0, 10)
        owner = engine._shard_id_of(5, 5)
        for shard_id, shard in enumerate(engine.shards):
            assert len(shard) == (1 if shard_id == owner else 0)

    def test_query_returns_routed_entry(self, engine):
        engine.insert(1, 5, 5, 0, 10)
        result = engine.query_timeslice(Rect(0, 0, 20, 20), 5)
        assert [(e.oid, e.x, e.y, e.s, e.d) for e in result] == \
            [(1, 5, 5, 0, 10)]

    def test_query_fans_out_only_to_overlapping_shards(self, engine):
        area = Rect(0, 0, 10, 10)
        shard_ids = engine._shards_for_area(area)
        cells = {(c.cx, c.cy) for c in engine.grid.overlapping_cells(area)}
        expected = sorted({engine.shard_map.shard_of_cell(cx, cy)
                           for cx, cy in cells})
        assert shard_ids == expected
        assert len(shard_ids) < engine.n_shards

    def test_len_sums_shards(self, engine):
        engine.insert(1, 5, 5, 0, 10)
        engine.insert(2, 95, 95, 1, 10)
        assert len(engine) == 2


class TestCrossShardCurrents:
    def test_object_moving_between_shards_is_finalised(self, engine):
        (x1, y1), (x2, y2) = cells_in_different_shards(engine)
        engine.report(7, x1, y1, 10)
        first_home = engine._home[7]
        engine.report(7, x2, y2, 25)
        assert engine._home[7] != first_home
        assert engine.current_objects() == {7: (x2, y2, 25)}
        entries = {(e.x, e.y, e.s, e.d)
                   for e in engine.query_interval(engine.config.space, 0, 30)}
        assert entries == {(x1, y1, 10, 15), (x2, y2, 25, None)}
        engine.check_integrity()

    def test_same_timestamp_rereport_is_position_correction(self, engine):
        (x1, y1), (x2, y2) = cells_in_different_shards(engine)
        engine.report(7, x1, y1, 10)
        engine.report(7, x2, y2, 10)
        entries = [(e.x, e.y, e.s, e.d)
                   for e in engine.query_interval(engine.config.space, 0, 30)]
        assert entries == [(x2, y2, 10, None)]
        assert len(engine) == 1
        engine.check_integrity()

    def test_extend_routes_cross_shard_objects(self, engine):
        (x1, y1), (x2, y2) = cells_in_different_shards(engine)

        class R:
            def __init__(self, oid, x, y, t):
                self.oid, self.x, self.y, self.t = oid, x, y, t

        engine.extend([R(1, x1, y1, 0), R(2, x2, y2, 1), R(1, x2, y2, 5),
                       R(2, x2, y2 + 1, 6)])
        assert engine.current_objects() == {1: (x2, y2, 5),
                                            2: (x2, y2 + 1, 6)}
        engine.check_integrity()

    def test_close_object_routes_to_home_shard(self, engine):
        (x1, y1), (x2, y2) = cells_in_different_shards(engine)
        engine.report(7, x2, y2, 10)
        assert engine.close_object(7, 30) is True
        assert engine.current_objects() == {}
        assert engine.close_object(7, 31) is False
        entries = [(e.x, e.y, e.s, e.d)
                   for e in engine.query_interval(engine.config.space, 0, 40)]
        assert entries == [(x2, y2, 10, 20)]

    def test_rejected_close_keeps_home_map_entry(self, engine):
        (x1, y1), _ = cells_in_different_shards(engine)
        engine.report(7, x1, y1, 10)
        with pytest.raises(ValueError):
            engine.close_object(7, 10)
        assert engine.current_objects() == {7: (x1, y1, 10)}
        engine.check_integrity()
        assert engine.close_object(7, 30) is True

    def test_delete_routed_by_cell(self, engine):
        engine.insert(1, 5, 5, 0, 10)
        assert engine.delete(1, 5, 5, 0, 10) is True
        assert engine.delete(1, 5, 5, 0, 10) is False
        assert len(engine) == 0

    def test_forget_object_sweeps_every_shard(self, engine):
        (x1, y1), (x2, y2) = cells_in_different_shards(engine)
        engine.report(7, x1, y1, 10)
        engine.report(7, x2, y2, 20)
        engine.insert(8, x1, y1, 21, 5)
        assert engine.forget_object(7) == 2
        assert engine.current_objects() == {}
        assert len(engine) == 1

    def test_retention_applies_across_shards(self, engine):
        engine.set_retention(5, 40)
        assert engine.retention_of(5) == 40
        for shard in engine.shards:
            assert shard.retention_of(5) == 40


class TestCoordinatedWindow:
    def test_clocks_advance_in_lockstep(self, engine):
        engine.insert(1, 5, 5, 0, 10)
        engine.advance_time(150)
        assert engine.now == 150
        assert all(shard.now == 150 for shard in engine.shards)

    def test_drop_epoch_fires_on_every_shard(self):
        config = make_config()
        with ShardedEngine(config, executor=SerialExecutor()) as eng:
            for oid in range(16):
                x = (oid % 4) * 25
                y = (oid // 4) * 25
                eng.insert(oid, x, y, 0, 10)
            populated = len(eng)
            assert populated == 16
            eng.advance_time(3 * config.w_max)
            assert len(eng) == 0
            assert all(shard.now == 3 * config.w_max
                       for shard in eng.shards)
            eng.check_integrity()

    def test_clock_cannot_move_backwards(self, engine):
        engine.advance_time(50)
        with pytest.raises(ValueError):
            engine.advance_time(49)


class TestValidation:
    def test_rejects_out_of_domain(self, engine):
        with pytest.raises(ValueError):
            engine.insert(1, 1000, 5, 0, 10)

    def test_rejects_out_of_order(self, engine):
        engine.insert(1, 5, 5, 10, 10)
        with pytest.raises(ValueError):
            engine.insert(2, 5, 5, 9, 10)

    def test_rejects_bad_duration(self, engine):
        with pytest.raises(ValueError):
            engine.insert(1, 5, 5, 0, 0)

    def test_rejects_empty_interval(self, engine):
        with pytest.raises(ValueError):
            engine.query_interval(engine.config.space, 10, 9)

    def test_rejects_bad_k(self, engine):
        with pytest.raises(ValueError):
            engine.query_knn(5, 5, 0, 0)

    def test_rejects_oversized_logical_window(self, engine):
        with pytest.raises(ValueError):
            engine.query_timeslice(engine.config.space, 0, window=10_000)


class TestLifecycle:
    def test_closed_engine_raises_typed_error(self):
        eng = ShardedEngine(make_config(), executor=SerialExecutor())
        eng.close()
        with pytest.raises(EngineClosedError):
            eng.insert(1, 5, 5, 0, 10)
        with pytest.raises(EngineClosedError):
            eng.query_timeslice(Rect(0, 0, 10, 10), 0)
        eng.close()  # idempotent

    def test_owned_executor_closed_with_engine(self):
        eng = ShardedEngine(make_config())
        assert isinstance(eng._executor, ThreadedExecutor)
        eng.extend([])
        eng.close()
        assert eng._executor._pool is None

    def test_borrowed_executor_left_running(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            eng = ShardedEngine(make_config(), executor=ex)
            ex.map(lambda n: n, [1, 2])  # spin the pool up
            eng.close()
            assert ex._pool is not None
        finally:
            ex.close()

    def test_stats_aggregate_supports_snapshot_diff(self, engine):
        before = engine.stats.snapshot()
        engine.insert(1, 5, 5, 0, 10)
        delta = engine.stats.diff(before)
        assert delta.node_accesses > 0
        per_shard = engine.shard_stats()
        assert sum(s.node_accesses for s in per_shard) == \
            engine.stats.node_accesses

    def test_memory_engine_has_no_directory(self, engine):
        assert engine.directory is None
        assert engine.shard_path(0) == ":memory:"
