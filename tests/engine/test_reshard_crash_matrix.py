"""Reshard and snapshot-enabled-save crash matrices.

Two atomicity claims, proved op-by-op:

* ``reshard()`` flips a directory to a new shard count in a single
  manifest write.  A :class:`FaultInjectingFileOps` kills the protocol
  at every file-operation ordinal; the reopened directory must be
  *exactly* the old generation (before the manifest replace) or
  *exactly* the new one (from the replace on) — same data either way,
  never a mix, never an error.

* a snapshot-enabled ``save()`` (the default) has **no** unrecoverable
  window: the CoW snapshot of the *previous* committed epoch — written
  at the end of the save that committed it, while every page file was
  provably clean — lets recovery restore all shards and roll the whole
  directory back.  Device kills at *every* in-place shard commit —
  including the mixed middle that is a typed :class:`EpochTornError`
  for ``snapshots=False`` engines (see
  tests/engine/test_engine_crash_matrix.py) — must reopen as exactly
  the pre-save state, and a file-op kill matrix over the
  snapshot-enabled protocol must land on the pre/post boundary
  deterministically.
"""

import dataclasses
import json
import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (EngineError, SerialExecutor, ShardedEngine,
                          reshard)
from repro.storage import (FaultInjectingFileOps, InjectedFault,
                           crash_devices, per_path_device_factory)

OLD_SHARDS = 3
NEW_SHARDS = 5
#: One reshard of a 3-shard directory (built with snapshots on) to 5
#: shards = 34 durable file operations (stage 6, build 4, flip 4,
#: new-generation snapshot 10, cleanup 10); pinned by the probe below.
RESHARD_FILE_OPS = 34
#: The manifest replace — the single commit point — is op 13 of 34.
RESHARD_FLIP_OP = 13
#: A snapshot-enabled 3-shard save of an already-snapshotted directory
#: = the 8-op manifest protocol + 8 snapshot ops (two mkdirs, three
#: copies, three fsyncs) copying the just-committed epoch + 5 prune
#: ops dropping the previous epoch's snapshot.
SNAP_SAVE_FILE_OPS = 21
#: Last file op before the save's point of no return: the in-place
#: shard commits land between the PREPARE fsync (op 3) and the FLIP
#: write (op 4), so a file-op kill from 4 on finds every shard
#: committed and recovery rolls *forward*.
SNAP_SAVE_COMMIT_BOUNDARY = 3
#: Ordinal of the FLIP's manifest replace in the op stream.
SNAP_SAVE_FLIP_OP = 5


def make_config(n_shards=OLD_SHARDS, **overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=n_shards)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed, count, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


PHASE_1 = lambda: workload(11, 150)  # noqa: E731
PHASE_2 = lambda: workload(12, 100, t0=PHASE_1()[-1].t)  # noqa: E731


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def build_phase1(path, config):
    """Fault-free phase-1 directory: extend + save (epoch 1)."""
    with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
        eng.extend(PHASE_1())
        eng.save()


def snapshot(path, n_shards):
    """Observable state of a directory: full scan plus query results."""
    config = make_config(n_shards)
    with ShardedEngine.open(path, config,
                            executor=SerialExecutor()) as eng:
        q_lo, q_hi = config.queriable_period(eng.now)
        full = eng.query_interval(config.space, q_lo, q_hi)
        sub = eng.query_interval(Rect(10, 10, 60, 60), q_lo, q_hi)
        count, _ = eng.count_interval(config.space, q_lo, q_hi)
        return {
            "now": eng.now,
            "len": len(eng),
            "scan": sorted(entry_key(e) for e in eng.scan()),
            "full": sorted(entry_key(e) for e in full),
            "sub": sorted(entry_key(e) for e in sub),
            "count": count,
        }


def read_manifest(path):
    return json.loads((path / "engine.json").read_text())


class TestReshardFileOpKillMatrix:
    """Kill reshard() at every durable file op; reopen must be a whole
    old or whole new generation with identical data."""

    @pytest.fixture(scope="class")
    def oracle(self, tmp_path_factory):
        """Query-state oracle (identical for both generations) plus the
        exact old/new manifests a crash must resolve to."""
        path = tmp_path_factory.mktemp("oracle") / "idx.d"
        build_phase1(path, make_config())
        old_manifest = read_manifest(path)
        state = snapshot(path, OLD_SHARDS)
        reshard(path, NEW_SHARDS, make_config())
        new_manifest = read_manifest(path)
        assert snapshot(path, NEW_SHARDS) == state
        return {"state": state, "old": old_manifest, "new": new_manifest}

    @pytest.mark.parametrize("fail_op", range(1, RESHARD_FILE_OPS + 1))
    def test_reopen_is_whole_old_or_new_generation(self, tmp_path, oracle,
                                                   fail_op):
        path = tmp_path / "victim.d"
        build_phase1(path, make_config())
        ops = FaultInjectingFileOps(fail_op=fail_op)
        with pytest.raises(InjectedFault):
            reshard(path, NEW_SHARDS, make_config(), file_ops=ops)
        manifest = read_manifest(path)
        # Deterministic boundary: the single manifest replace commits.
        arm = "old" if fail_op <= RESHARD_FLIP_OP else "new"
        assert manifest == oracle[arm], (
            f"fault point {fail_op}: manifest matches neither "
            f"generation exactly")
        assert snapshot(path, manifest["n_shards"]) == oracle["state"], (
            f"fault point {fail_op}: reopened data diverged")

    def test_protocol_length_matches_matrix(self, tmp_path):
        """The matrix covers every op: a fault-free reshard is 34 ops,
        with the manifest replace at ordinal 13."""
        path = tmp_path / "probe.d"
        build_phase1(path, make_config())
        ops = FaultInjectingFileOps()
        reshard(path, NEW_SHARDS, make_config(), file_ops=ops)
        names = [name for name, _ in ops.ops]
        assert len(names) == RESHARD_FILE_OPS
        assert names == (
            ["mkdir", "fsync_dir"]                    # STAGE: gen dir
            + ["copy_file"] * OLD_SHARDS + ["fsync_dir"]
            + ["unlink"] * OLD_SHARDS + ["fsync_dir"]  # BUILD: drop copies
            + ["fsync_dir", "write_file", "replace",   # FLIP
               "fsync_dir"]
            + ["mkdir", "mkdir"]                       # SNAPSHOT: new gen
            + ["copy_file"] * NEW_SHARDS
            + ["fsync_dir", "fsync_dir", "fsync_dir"]
            + ["unlink"] * OLD_SHARDS + ["fsync_dir"]  # CLEANUP: old gen
            + ["unlink"] * OLD_SHARDS + ["rmdir"]      # stale snapshot
            + ["fsync_dir", "fsync_dir"])              # snap root + dir
        assert names[RESHARD_FLIP_OP - 1] == "replace"

    def test_crashed_reshard_then_retry_succeeds(self, tmp_path, oracle):
        """Debris from a mid-build crash never blocks the next attempt."""
        path = tmp_path / "victim.d"
        build_phase1(path, make_config())
        with pytest.raises(InjectedFault):
            reshard(path, NEW_SHARDS, make_config(),
                    file_ops=FaultInjectingFileOps(fail_op=4))
        report = reshard(path, NEW_SHARDS, make_config())
        assert report.new_n_shards == NEW_SHARDS
        assert snapshot(path, NEW_SHARDS) == oracle["state"]

    def test_reshard_from_nonzero_generation(self, tmp_path, oracle):
        """gen-1 -> gen-2 keeps the same crash-free equivalence."""
        path = tmp_path / "victim.d"
        build_phase1(path, make_config())
        reshard(path, NEW_SHARDS, make_config())
        report = reshard(path, 2, make_config())
        assert report.generation == 2
        assert snapshot(path, 2) == oracle["state"]
        assert not (path / "gen-001").exists()


@pytest.fixture(scope="module")
def save_oracles(tmp_path_factory):
    """Pre-save and post-save oracle snapshots (fault-free runs)."""
    pre_dir = tmp_path_factory.mktemp("oracle") / "pre.d"
    post_dir = tmp_path_factory.mktemp("oracle") / "post.d"
    build_phase1(pre_dir, make_config())
    build_phase1(post_dir, make_config())
    with ShardedEngine.open(post_dir, make_config(),
                            executor=SerialExecutor()) as eng:
        eng.extend(PHASE_2())
        eng.save()
    return {"pre": snapshot(pre_dir, OLD_SHARDS),
            "post": snapshot(post_dir, OLD_SHARDS)}


class TestSnapshotSaveDeviceKillMatrix:
    """Device kills at every in-place shard commit of a snapshot-enabled
    save: always a clean rollback, never EpochTornError."""

    @pytest.mark.parametrize("kill_shard", range(OLD_SHARDS))
    def test_kill_at_shard_commit_rolls_back(self, tmp_path, save_oracles,
                                             kill_shard):
        path = tmp_path / "victim.d"
        build_phase1(path, make_config())
        devices = []
        faulty = dataclasses.replace(
            make_config(),
            device_factory=per_path_device_factory(
                "shard", registry=devices))
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor())
        try:
            eng.extend(PHASE_2())
            # Arm after ingestion so the kill lands on this shard's
            # first write of the commit phase — i.e. after every
            # earlier shard already committed the new epoch in place.
            device = devices[kill_shard]
            device.fail_write = device.writes_seen + 1
            with pytest.raises(OSError):
                eng.save()
        finally:
            crash_devices(devices)
            try:
                eng.close()
            except (EngineError, OSError):
                pass
        # The previous epoch's snapshot (written while its files were
        # clean) makes every arm — including the snapshots=False torn
        # middle — a rollback.
        first = snapshot(path, OLD_SHARDS)
        assert first == save_oracles["pre"], (
            f"kill at shard {kill_shard}: reopen is not the pre-save "
            f"state")
        # Recovery is idempotent and leaves a directory that can save.
        assert snapshot(path, OLD_SHARDS) == first
        with ShardedEngine.open(path, make_config(),
                                executor=SerialExecutor()) as eng:
            eng.extend(PHASE_2())
            eng.save()
        assert snapshot(path, OLD_SHARDS) == save_oracles["post"]


class TestSnapshotSaveFileOpKillMatrix:
    """File-op kills over the snapshot-enabled save protocol."""

    @pytest.mark.parametrize("fail_op", range(1, SNAP_SAVE_FILE_OPS + 1))
    def test_reopen_yields_pre_or_post_snapshot(self, tmp_path,
                                                save_oracles, fail_op):
        path = tmp_path / "victim.d"
        build_phase1(path, make_config())
        devices = []
        faulty = dataclasses.replace(
            make_config(),
            device_factory=per_path_device_factory(
                "shard", registry=devices))
        ops = FaultInjectingFileOps(fail_op=fail_op)
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                                 file_ops=ops)
        try:
            with pytest.raises(InjectedFault):
                eng.extend(PHASE_2())
                eng.save()
        finally:
            crash_devices(devices)
            try:
                eng.close()
            except (EngineError, OSError):
                pass
        expected = "pre" if fail_op <= SNAP_SAVE_COMMIT_BOUNDARY \
            else "post"
        assert snapshot(path, OLD_SHARDS) == save_oracles[expected], (
            f"fault point {fail_op}: expected the {expected}-save "
            f"oracle")

    def test_protocol_length_matches_matrix(self, tmp_path):
        """Manifest protocol (8) + snapshot (8) + prune (5) = 21 ops."""
        path = tmp_path / "probe.d"
        build_phase1(path, make_config())
        ops = FaultInjectingFileOps()
        with ShardedEngine.open(path, make_config(),
                                executor=SerialExecutor(),
                                file_ops=ops) as eng:
            eng.extend(PHASE_2())
            eng.save()
        names = [name for name, _ in ops.ops]
        assert len(names) == SNAP_SAVE_FILE_OPS
        assert names == (
            ["write_file", "replace", "fsync_dir"]           # PREPARE
            + ["write_file", "replace", "fsync_dir"]         # FLIP
            + ["unlink", "fsync_dir"]                        # cleanup
            + ["mkdir", "mkdir"] + ["copy_file"] * OLD_SHARDS  # SNAPSHOT
            + ["fsync_dir", "fsync_dir", "fsync_dir"]
            + ["unlink"] * OLD_SHARDS + ["rmdir",            # prune old
               "fsync_dir"])                                 # snapshot
        assert names[SNAP_SAVE_FLIP_OP - 1] == "replace"
