"""Executor implementations: ordering, errors, lifecycle, spec parsing."""

import pytest

from repro.engine import (Executor, ProcessExecutor, SerialExecutor,
                          TaskTimeoutError, ThreadedExecutor,
                          resolve_executor)


class TestSerialExecutor:
    def test_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(lambda n: n * n, [3, 1, 2]) == [9, 1, 4]
        ex.close()

    def test_propagates_exception(self):
        ex = SerialExecutor()
        with pytest.raises(ZeroDivisionError):
            ex.map(lambda n: 1 // n, [1, 0, 2])
        ex.close()

    def test_is_local(self):
        assert SerialExecutor.remote is False


class TestThreadedExecutor:
    def test_preserves_order(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            assert ex.map(lambda n: n + 10, list(range(8))) == \
                [n + 10 for n in range(8)]
        finally:
            ex.close()

    def test_single_item_runs_inline_without_pool(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            assert ex.map(lambda n: n * 2, [21]) == [42]
            assert ex._pool is None
        finally:
            ex.close()

    def test_propagates_first_exception(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            with pytest.raises(ValueError, match="boom"):
                ex.map(lambda n: (_ for _ in ()).throw(ValueError("boom"))
                       if n == 1 else n, [0, 1, 2])
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ThreadedExecutor()
        ex.map(lambda n: n, [1, 2])
        ex.close()
        ex.close()

    def test_satisfies_protocol(self):
        assert isinstance(ThreadedExecutor(), Executor)
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ProcessExecutor(), Executor)


class TestResolveExecutor:
    def test_serial(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_thread_with_workers(self):
        ex = resolve_executor("thread:3")
        assert isinstance(ex, ThreadedExecutor)
        assert ex._max_workers == 3

    def test_process(self):
        ex = resolve_executor("process")
        assert isinstance(ex, ProcessExecutor)
        assert ex.remote is True

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            resolve_executor("fiber")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            resolve_executor("thread:0")
        with pytest.raises(ValueError):
            resolve_executor("thread:abc")

    def test_serial_takes_no_worker_count(self):
        with pytest.raises(ValueError):
            resolve_executor("serial:2")


def _sleepy(seconds):
    import time

    time.sleep(seconds)
    return seconds


class TestPerTaskDeadlines:
    def test_threaded_timeout_is_typed_with_item_index(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            with pytest.raises(TaskTimeoutError) as excinfo:
                ex.map(_sleepy, [0.0, 5.0], timeout=0.2)
            assert excinfo.value.item_index == 1
            assert excinfo.value.timeout == pytest.approx(0.2)
        finally:
            ex.close()

    def test_threaded_within_deadline_succeeds(self):
        ex = ThreadedExecutor(max_workers=2)
        try:
            assert ex.map(_sleepy, [0.0, 0.01], timeout=30.0) \
                == [0.0, 0.01]
        finally:
            ex.close()

    def test_serial_executor_ignores_timeout(self):
        # Inline execution cannot be preempted; documented no-op.
        ex = SerialExecutor()
        assert ex.map(_sleepy, [0.05], timeout=0.001) == [0.05]
        ex.close()

    def test_process_timeout_is_typed(self):
        ex = ProcessExecutor(max_workers=2)
        try:
            with pytest.raises(TaskTimeoutError) as excinfo:
                ex.map(_sleepy, [5.0], timeout=0.2)
            assert excinfo.value.item_index == 0
        finally:
            ex.close()


class TestAbandonedFutureRecycle:
    def test_timeout_counts_abandoned_futures(self):
        ex = ProcessExecutor(max_workers=2)
        try:
            with pytest.raises(TaskTimeoutError):
                ex.map(_sleepy, [1.0], timeout=0.05)
            # One task keeps running detached; the pool survives
            # because a single abandonment cannot wedge both workers.
            assert ex.abandoned_futures == 1
            assert ex.pool_recycles == 0
            assert ex._pool is not None
        finally:
            ex.close()

    def test_recycle_when_abandonment_covers_every_worker(self):
        ex = ProcessExecutor(max_workers=1)
        try:
            with pytest.raises(TaskTimeoutError):
                ex.map(_sleepy, [1.0], timeout=0.05)
            # The only worker slot may be wedged: the pool is recycled
            # and the counters reset for the replacement.
            assert ex.pool_recycles == 1
            assert ex.abandoned_futures == 0
            assert ex._pool is None
            # The next map self-heals on a fresh pool with a live
            # worker, not the one stuck behind the abandoned task.
            assert ex.map(_sleepy, [0.0], timeout=30.0) == [0.0]
        finally:
            ex.close()
