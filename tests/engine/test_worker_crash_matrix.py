"""Worker-kill crash matrix: SIGKILL the pool at scripted points.

The warm-worker durability claim: every *acknowledged* mutation
survives any worker death, because acknowledgement happens only after
the WAL group commit, and a restarted worker replays its log (plus the
coordinator re-delivers exactly the non-durable suffix of a batch whose
acknowledgement the crash swallowed).  The matrix proves it against a
no-crash oracle:

* the oracle runs the whole workload fault-free;
* each victim runs the same workload with a scripted SIGKILL —
  before/after the WAL commit, after apply, during restart *replay*,
  during ``save()``, during the post-save checkpoint, or via an
  injected WAL-device failure — on a chosen shard;
* the driver re-drives a chunk whose dispatch crashed (re-reporting a
  position at the same timestamp is a correction, not a new entry);
* the victim's final state, its reopened state, and a
  ``ShardedEngine`` interop open of the saved directory must all equal
  the oracle exactly.

The workload deliberately crosses ``w_max`` window boundaries so kills
land around slides as well as plain ingest.
"""

import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (SerialExecutor, ShardedEngine, WorkerCrashError,
                          WorkerEngine)

N_SHARDS = 3


def make_config():
    return SWSTConfig(window=100, slide=20, x_partitions=4, y_partitions=4,
                      d_max=40, duration_interval=10,
                      space=Rect(0, 0, 99, 99), page_size=512,
                      n_shards=N_SHARDS)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed, count, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(15), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


#: Three chunked phases; w_max = 119, so the stream crosses two window
#: boundaries and every victim sees at least one slide.
PHASE_1 = lambda: workload(11, 120)            # noqa: E731
PHASE_2 = lambda: workload(12, 120, t0=130)    # noqa: E731
PHASE_3 = lambda: workload(13, 80, t0=260)     # noqa: E731

CHUNK = 16


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def state_of(engine):
    config = engine.config
    q_lo, q_hi = config.queriable_period(engine.now)
    full = engine.query_interval(config.space, q_lo, q_hi)
    sub = engine.query_interval(Rect(20, 20, 70, 70), q_lo, q_hi)
    return {
        "now": engine.now,
        "len": len(engine),
        "scan": sorted(entry_key(e) for e in engine.scan()),
        "full": sorted(entry_key(e) for e in full),
        "sub": sorted(entry_key(e) for e in sub),
    }


def drive(engine, reports, max_crashes=8):
    """Feed ``reports`` chunk by chunk, re-driving crashed chunks.

    After a crash the engine resynchronises; everything the crashed
    dispatch acknowledged (or re-delivered on restart) is already in,
    so the re-drive submits only the chunk's tail from the settled
    clock on.  Reports exactly *at* the clock are re-sent — a
    re-report at the same timestamp is a position correction, which
    makes the overlap idempotent.
    """
    crashes = 0
    sent = 0
    while sent < len(reports):
        chunk = [r for r in reports[sent:sent + CHUNK]
                 if r.t >= engine.now]
        try:
            if chunk:
                engine.extend(chunk, batch_size=CHUNK)
            sent += CHUNK
        except WorkerCrashError:
            crashes += 1
            if crashes > max_crashes:
                raise
            try:
                # Settle: resync the mirror and raise the coordinator
                # clock to whatever the restarted workers replayed, so
                # the next filter drops everything already applied.
                engine.advance_time(engine.now)
            except WorkerCrashError:
                crashes += 1
    return crashes


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """Fault-free run: state after phase 2 + save, and after phase 3."""
    config = make_config()
    path = str(tmp_path_factory.mktemp("oracle") / "oracle.d")
    with WorkerEngine(config, path) as eng:
        drive(eng, PHASE_1())
        drive(eng, PHASE_2())
        eng.save()
        saved = state_of(eng)
        drive(eng, PHASE_3())
        final = state_of(eng)
    return {"saved": saved, "final": final}


def run_victim(path, fault_specs_at):
    """Run the full workload; ``fault_specs_at[phase]`` arms (shard,
    spec) pairs by killing the shard so the respawn consumes the spec.

    Returns (engine-final-state, crash-count).  The engine is closed.
    """
    config = make_config()
    crashes = 0
    with WorkerEngine(config, path) as eng:
        for phase_index, phase in enumerate((PHASE_1, PHASE_2)):
            for sid, spec in fault_specs_at.get(phase_index, ()):
                eng.pool.fault_specs[sid] = spec
                eng.pool.kill(sid)
            crashes += drive(eng, phase())
        eng.save()
        for sid, spec in fault_specs_at.get(2, ()):
            eng.pool.fault_specs[sid] = spec
            eng.pool.kill(sid)
        crashes += drive(eng, PHASE_3())
        final = state_of(eng)
    return final, crashes


def reopened_state(path):
    config = make_config()
    with WorkerEngine.open(path, config) as eng:
        return state_of(eng)


INGEST_KILLS = [
    {"kill_before_commit": 2},   # batch lost pre-fsync: full redelivery
    {"kill_after_commit": 2},    # durable but unapplied: replay applies
    {"kill_after_apply": 2},     # applied but unacknowledged
    {"kill_before_commit": 1},   # first post-restart batch
    {"kill_after_apply": 1},
]


class TestIngestKillMatrix:
    @pytest.mark.parametrize("spec", INGEST_KILLS,
                             ids=[f"{k}={v}" for s in INGEST_KILLS
                                  for k, v in s.items()])
    @pytest.mark.parametrize("victim_shard", [0, 1])
    def test_kill_during_ingest_converges_to_oracle(
            self, tmp_path, oracle, spec, victim_shard):
        path = str(tmp_path / "victim.d")
        final, crashes = run_victim(
            path, {1: [(victim_shard, dict(spec))]})
        assert crashes >= 1, "the scripted kill never fired"
        assert final == oracle["final"]
        assert reopened_state(path) == oracle["final"]

    def test_kill_during_slide_phase(self, tmp_path, oracle):
        # Phase 3 starts past the second w_max boundary: the kill lands
        # on a batch that carries a window slide.
        path = str(tmp_path / "victim.d")
        final, crashes = run_victim(
            path, {2: [(1, {"kill_after_commit": 1})]})
        assert crashes >= 1
        assert final == oracle["final"]
        assert reopened_state(path) == oracle["final"]

    def test_two_shards_killed_in_the_same_phase(self, tmp_path, oracle):
        path = str(tmp_path / "victim.d")
        final, crashes = run_victim(
            path, {1: [(0, {"kill_after_apply": 1}),
                       (2, {"kill_before_commit": 2})]})
        assert crashes >= 1
        assert final == oracle["final"]


class TestReplayKill:
    def test_kill_during_restart_replay(self, tmp_path, oracle):
        """The restart itself dies mid-WAL-replay; the supervisor's
        retry spawns again and the second recovery must still be exact."""
        config = make_config()
        path = str(tmp_path / "victim.d")
        with WorkerEngine(config, path) as eng:
            drive(eng, PHASE_1())
            drive(eng, PHASE_2())
            # Shard 1 holds a long epoch-0 WAL; kill it, then make its
            # *next* incarnation die after replaying one record.
            eng.pool.fault_specs[1] = {"kill_at_replay": 1}
            eng.pool.kill(1)
            eng.save()
            drive(eng, PHASE_3())
            assert eng.pool.spawn_counts[1] >= 3  # initial + 2 restarts
            assert state_of(eng) == oracle["final"]


class TestSaveKills:
    def test_kill_during_worker_save_then_retry(self, tmp_path, oracle):
        config = make_config()
        path = str(tmp_path / "victim.d")
        with WorkerEngine(config, path) as eng:
            drive(eng, PHASE_1())
            drive(eng, PHASE_2())
            eng.pool.fault_specs[1] = {"kill_at_save": True}
            eng.pool.kill(1)
            with pytest.raises(WorkerCrashError):
                eng.save()
            # The failed save healed the directory; state is intact and
            # a retried save commits.
            assert state_of(eng) == oracle["saved"]
            eng.save()
            assert state_of(eng) == oracle["saved"]
            drive(eng, PHASE_3())
            assert state_of(eng) == oracle["final"]
        assert reopened_state(path) == oracle["final"]

    def test_kill_after_worker_save_commit(self, tmp_path, oracle):
        config = make_config()
        path = str(tmp_path / "victim.d")
        with WorkerEngine(config, path) as eng:
            drive(eng, PHASE_1())
            drive(eng, PHASE_2())
            eng.pool.fault_specs[0] = {"kill_after_save": True}
            eng.pool.kill(0)
            with pytest.raises(WorkerCrashError):
                eng.save()
            assert state_of(eng) == oracle["saved"]
            eng.save()
            drive(eng, PHASE_3())
            assert state_of(eng) == oracle["final"]

    def test_kill_during_checkpoint_is_absorbed(self, tmp_path, oracle):
        """The epoch is committed before checkpoints run; a checkpoint
        kill costs a restart, never data."""
        config = make_config()
        path = str(tmp_path / "victim.d")
        with WorkerEngine(config, path) as eng:
            drive(eng, PHASE_1())
            drive(eng, PHASE_2())
            eng.pool.fault_specs[1] = {"kill_at_checkpoint": True}
            eng.pool.kill(1)
            eng.save()  # checkpoint failures are absorbed
            assert state_of(eng) == oracle["saved"]
            drive(eng, PHASE_3())
            assert state_of(eng) == oracle["final"]
        assert reopened_state(path) == oracle["final"]


class TestWalDeviceFaults:
    def test_failed_wal_commit_fsync_is_a_clean_crash(self, tmp_path,
                                                      oracle):
        """An injected fsync failure on the WAL barrier downs the
        worker pre-acknowledgement; recovery treats it like any kill."""
        path = str(tmp_path / "victim.d")
        final, crashes = run_victim(
            path, {1: [(1, {"wal_fsync_errors": {2: OSError("barrier")}})]})
        assert crashes >= 1
        assert final == oracle["final"]
        assert reopened_state(path) == oracle["final"]

    def test_short_wal_append_tears_only_the_unacked_tail(self, tmp_path,
                                                          oracle):
        # Op ordinal 4: the respawn's base refresh spends ops 1-3
        # (write/replace/fsync_dir), so 4 is the first WAL append.
        path = str(tmp_path / "victim.d")
        final, crashes = run_victim(
            path, {1: [(1, {"wal_short_writes": {4: 9}})]})
        assert crashes >= 1
        assert final == oracle["final"]


class TestInterop:
    def test_sharded_engine_reads_a_saved_worker_directory(self, tmp_path,
                                                           oracle):
        """After save(), the directory is a valid ShardedEngine
        directory; queries agree byte for byte (WALs are additive)."""
        config = make_config()
        path = str(tmp_path / "victim.d")
        with WorkerEngine(config, path) as eng:
            drive(eng, PHASE_1())
            drive(eng, PHASE_2())
            eng.save()
        with ShardedEngine.open(path, config,
                                executor=SerialExecutor()) as eng:
            assert state_of(eng) == oracle["saved"]
