"""Directory-level scrub: manifest validation, per-shard sweeps,
generation cross-checks, and marker reporting."""

import json
import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import SerialExecutor, ShardedEngine, scrub_directory
from repro.storage import FaultInjectingPageDevice, FilePageDevice

N_SHARDS = 3


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


@pytest.fixture
def saved_dir(tmp_path):
    path = tmp_path / "index.d"
    rng = random.Random(21)
    t = 0
    reports = []
    for _ in range(200):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    with ShardedEngine(make_config(), path,
                       executor=SerialExecutor()) as eng:
        eng.extend(reports)
        eng.save()
    return path


class TestCleanDirectory:
    def test_clean_directory_is_ok(self, saved_dir):
        report = scrub_directory(saved_dir)
        assert report.ok
        assert report.manifest_ok
        assert report.problems == []
        assert len(report.reports) == N_SHARDS
        assert all(shard.ok for shard in report.reports)
        assert "directory verdict: clean" in report.render()

    def test_render_names_every_shard_file(self, saved_dir):
        rendered = scrub_directory(saved_dir).render()
        for shard_id in range(N_SHARDS):
            assert f"shard-{shard_id:03d}.pages" in rendered


class TestProblems:
    def test_bit_flip_in_one_shard_fails_the_directory(self, saved_dir):
        shard = saved_dir / "shard-001.pages"
        device = FaultInjectingPageDevice(FilePageDevice(shard, 512))
        device.flip_stored_bit(device.page_count() - 1, 9, 0x20)
        device.close()
        report = scrub_directory(saved_dir)
        assert not report.ok
        assert report.manifest_ok  # manifest itself is intact
        # The sweep still covers every shard; exactly one is corrupt.
        assert len(report.reports) == N_SHARDS
        assert sum(1 for shard in report.reports if not shard.ok) == 1
        assert "CORRUPT" in report.render()

    def test_missing_shard_file_is_reported(self, saved_dir):
        (saved_dir / "shard-002.pages").unlink()
        report = scrub_directory(saved_dir)
        assert not report.ok
        assert any("shard-002.pages is missing" in problem
                   for problem in report.problems)
        # The surviving shards were still swept.
        assert len(report.reports) == N_SHARDS - 1

    def test_unreadable_manifest_is_reported(self, saved_dir):
        (saved_dir / "engine.json").write_text("{not json")
        report = scrub_directory(saved_dir)
        assert not report.manifest_ok
        assert not report.ok
        # Without a manifest the sweep falls back to globbing: the
        # shard files themselves still get verified.
        assert len(report.reports) == N_SHARDS

    def test_shard_behind_manifest_generation(self, saved_dir):
        manifest_path = saved_dir / "engine.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"] = [gen + 10 for gen in manifest["shards"]]
        manifest_path.write_text(json.dumps(manifest) + "\n")
        report = scrub_directory(saved_dir)
        assert not report.ok
        assert all("behind the manifest" in problem
                   for problem in report.problems)
        assert len(report.problems) == N_SHARDS


class TestNotes:
    def test_leftover_save_marker_is_a_note_not_a_problem(self, saved_dir):
        marker = saved_dir / "engine.prepare.json"
        manifest = json.loads((saved_dir / "engine.json").read_text())
        marker.write_text(json.dumps({
            "format": 2, "epoch": manifest["epoch"] + 1,
            "n_shards": N_SHARDS,
            "expected": [gen + 1 for gen in manifest["shards"]]}) + "\n")
        report = scrub_directory(saved_dir)
        assert any("interrupted save marker" in note
                   for note in report.notes)
        # The marker alone does not fail the scrub: open() resolves it.
        assert report.ok
        assert "note:" in report.render()


def tear_save(path, snapshots):
    """Crash shard-002's device mid-save, leaving a torn epoch behind."""
    import dataclasses

    from repro.storage import per_path_device_factory

    faulty = dataclasses.replace(
        make_config(),
        device_factory=per_path_device_factory("shard-002", fail_write=1))
    eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                             snapshots=snapshots)
    try:
        t = eng.now
        for oid in range(20):
            eng.report(oid, (oid * 13) % 100, (oid * 29) % 100, t)
        with pytest.raises(OSError):
            eng.save()
    finally:
        with pytest.raises(OSError):
            eng.close()


class TestTornEpochClassification:
    def test_torn_epoch_with_snapshot_is_recoverable_note(self, saved_dir):
        manifest = json.loads((saved_dir / "engine.json").read_text())
        tear_save(saved_dir, snapshots=True)
        report = scrub_directory(saved_dir)
        # The snapshot generation written before the crashed save makes
        # the tear recoverable: a note naming the generation, not a
        # problem, and the scrub exits clean.
        assert report.ok
        note = next(note for note in report.notes if "RECOVERABLE" in note)
        assert f"snapshot generation {manifest['epoch']:06d}" in note
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            eng.check_integrity()

    def test_torn_epoch_without_snapshot_is_a_problem(self, tmp_path):
        path = tmp_path / "index.d"
        rng = random.Random(21)
        t = 0
        reports = []
        for _ in range(200):
            t += rng.choice([0, 1, 1, 2])
            reports.append(R(rng.randrange(25), rng.randrange(100),
                             rng.randrange(100), t))
        with ShardedEngine(make_config(), path, executor=SerialExecutor(),
                           snapshots=False) as eng:
            eng.extend(reports)
            eng.save()
        tear_save(path, snapshots=False)
        report = scrub_directory(path)
        assert not report.ok
        assert any("EpochTornError" in problem
                   for problem in report.problems)
        assert "PROBLEM" in report.render()


class TestGenerations:
    def test_resharded_directory_scrubs_clean(self, saved_dir):
        from repro.engine import reshard

        reshard(saved_dir, 5, make_config())
        report = scrub_directory(saved_dir)
        assert report.ok
        assert len(report.reports) == 5
        assert "gen-001" in report.reports[0].path

    def test_staged_generation_debris_is_a_note(self, saved_dir):
        (saved_dir / "gen-007").mkdir()
        report = scrub_directory(saved_dir)
        assert report.ok
        assert any("gen-007" in note and "crashed reshard" in note
                   for note in report.notes)
