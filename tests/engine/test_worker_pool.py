"""Warm worker pool supervision: restarts, heartbeats, breakers,
degraded mode, graceful shutdown, and durability across kills."""

import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (CircuitBreaker, CircuitOpenError, PartialResult,
                          RetryPolicy, ShardQueryError, WorkerCrashError,
                          WorkerEngine)

N_SHARDS = 3


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed, count, t0=0):
    rng = random.Random(seed)
    t = t0
    return [R(rng.randrange(20), rng.randrange(100), rng.randrange(100),
              (t := t + rng.choice([0, 1, 2])))
            for _ in range(count)]


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def state_of(engine):
    return (engine.now, len(engine),
            sorted(entry_key(e) for e in engine.scan()))


class TestSupervisedRestart:
    def test_killed_worker_restarts_transparently(self, tmp_path):
        config = make_config()
        with WorkerEngine(config, str(tmp_path / "e.d")) as eng:
            eng.extend(workload(1, 80))
            before = state_of(eng)
            victim = 1
            eng.pool.kill(victim)
            assert not eng.pool.alive(victim)
            # The next operation touching the shard restarts it; WAL
            # replay restores every acknowledged write.
            assert state_of(eng) == before
            assert eng.pool.spawn_counts[victim] == 2
            eng.check_integrity()

    def test_kill_all_then_full_resync(self, tmp_path):
        config = make_config()
        with WorkerEngine(config, str(tmp_path / "e.d")) as eng:
            eng.extend(workload(2, 120))
            before = state_of(eng)
            q_lo, q_hi = config.queriable_period(eng.now)
            expected = sorted(
                entry_key(e) for e in
                eng.query_interval(config.space, q_lo, q_hi))
            eng.pool.kill_all()
            result = eng.query_interval(config.space, q_lo, q_hi)
            assert sorted(entry_key(e) for e in result) == expected
            assert state_of(eng) == before

    def test_mutations_resume_after_kill(self, tmp_path):
        config = make_config()
        oracle_dir = str(tmp_path / "oracle.d")
        victim_dir = str(tmp_path / "victim.d")
        phase1, phase2 = workload(3, 60), workload(4, 60, t0=200)
        with WorkerEngine(config, oracle_dir) as oracle:
            oracle.extend(phase1)
            oracle.extend(phase2)
            expected = state_of(oracle)
        with WorkerEngine(config, victim_dir) as eng:
            eng.extend(phase1)
            eng.pool.kill_all()
            eng.extend(phase2)
            assert state_of(eng) == expected


class TestHeartbeat:
    def test_poison_task_trips_the_deadline_then_recovers(self, tmp_path):
        config = make_config()
        eng = WorkerEngine(config, str(tmp_path / "e.d"),
                           heartbeat_timeout=1.0)
        try:
            eng.extend(workload(5, 40))
            before = state_of(eng)
            # Arm a poison task on shard 0's next restart: its first
            # batch blocks forever, and the pool's heartbeat deadline
            # kills the wedged worker instead of hanging the engine.
            eng.pool.fault_specs[0] = {"hang_at_apply": 1}
            eng.pool.kill(0)
            target = before[0] + 50
            with pytest.raises(WorkerCrashError, match="heartbeat"):
                eng.advance_time(target)
            # The hung worker was killed pre-acknowledgement; the
            # restart replays its WAL and the engine converges on the
            # advanced clock everywhere.
            assert eng.now == target
            eng.check_integrity()
        finally:
            eng.close()


class TestCircuitBreaker:
    def test_crash_loop_opens_the_breaker(self, tmp_path):
        config = make_config()
        eng = WorkerEngine(
            config, str(tmp_path / "e.d"),
            retry_policy=RetryPolicy(attempts=1),
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1,
                                                   cooldown=1000.0))
        try:
            eng.extend(workload(6, 40))
            # Crash-loop shard 2: every respawn dies before the ready
            # handshake.
            eng.pool.fault_specs[2] = {"kill_at_ready": True,
                                       "persistent": True}
            eng.pool.kill(2)
            q_lo, q_hi = config.queriable_period(eng.now)
            with pytest.raises(ShardQueryError):
                eng.query_interval(config.space, q_lo, q_hi)
            # The failed restart tripped the breaker: the shard now
            # fails fast without a spawn attempt.
            spawns = eng.pool.spawn_counts[2]
            with pytest.raises(CircuitOpenError):
                eng._ensure(2)
            assert eng.pool.spawn_counts[2] == spawns
        finally:
            eng.pool.fault_specs.clear()
            eng.close()

    def test_degraded_query_while_crash_looping(self, tmp_path):
        config = make_config()
        eng = WorkerEngine(config, str(tmp_path / "e.d"),
                           retry_policy=RetryPolicy(attempts=1))
        try:
            eng.extend(workload(7, 80))
            q_lo, q_hi = config.queriable_period(eng.now)
            full = eng.query_interval(config.space, q_lo, q_hi)
            eng.pool.fault_specs[1] = {"kill_at_ready": True,
                                       "persistent": True}
            eng.pool.kill(1)
            result = eng.query_interval(config.space, q_lo, q_hi,
                                        strict=False)
            assert isinstance(result, PartialResult)
            assert result.stats.degraded
            assert [f.shard_id for f in result.failures] == [1]
            surviving = {entry_key(e) for e in result}
            assert surviving <= {entry_key(e) for e in full}
            # Heal the shard: the same query is whole again.
            del eng.pool.fault_specs[1]
            healed = eng.query_interval(config.space, q_lo, q_hi,
                                        strict=False)
            assert not healed.stats.degraded
            assert {entry_key(e) for e in healed} \
                == {entry_key(e) for e in full}
        finally:
            eng.pool.fault_specs.clear()
            eng.close()


class TestShutdown:
    def test_graceful_close_reopens_from_wal(self, tmp_path):
        config = make_config()
        path = str(tmp_path / "e.d")
        with WorkerEngine(config, path) as eng:
            eng.extend(workload(8, 100))
            expected = state_of(eng)
        # close() stops the workers without a save: everything lives in
        # the epoch-0 WALs and comes back on open.
        with WorkerEngine.open(path, config) as eng:
            assert state_of(eng) == expected

    def test_closed_engine_rejects_use(self, tmp_path):
        config = make_config()
        eng = WorkerEngine(config, str(tmp_path / "e.d"))
        eng.close()
        from repro.engine import EngineClosedError
        with pytest.raises(EngineClosedError):
            eng.extend(workload(9, 5))
        with pytest.raises(EngineClosedError):
            len(eng)
        eng.close()  # idempotent

    def test_workers_do_not_outlive_the_engine(self, tmp_path):
        config = make_config()
        eng = WorkerEngine(config, str(tmp_path / "e.d"))
        eng.extend(workload(10, 30))
        processes = [eng.pool._handles[sid].process
                     for sid in range(N_SHARDS)]
        eng.close()
        for process in processes:
            assert not process.is_alive()
