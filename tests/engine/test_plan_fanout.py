"""Engine-side query planning: one plan per fan-out (S2 — retried shard
tasks reuse the original plan, with no stats double-count), the engine
plan cache's epoch fence (S1), the batched multi-rectangle scatter-gather
equivalence oracle (S4), and plan picklability for the process path."""

import contextlib
import dataclasses
import pickle
import random

import pytest

from repro.core import (QueryPlan, Rect, SWSTConfig, build_query_plan,
                        classify_interval)
from repro.engine import (EngineCloseError, PartialResult, RetryPolicy,
                          SerialExecutor, ShardedEngine)
from repro.storage import per_path_device_factory

N_SHARDS = 3


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed=11, count=300, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def stats_without_cache_hits(stats):
    clone = dataclasses.replace(stats)
    clone.plan_cache_hits = 0
    return clone


def close_quietly(eng):
    with contextlib.suppress(OSError, EngineCloseError):
        eng.close()


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("planfanout") / "index.d"
    with ShardedEngine(make_config(), path,
                       executor=SerialExecutor()) as eng:
        eng.extend(workload())
        eng.save()
    return path


class _FlakyOnce:
    """Wraps a shard's bound ``_query_area_planned``; the first call
    raises a retryable fault *before* doing any work, later calls pass
    through.  Records ``id(plan)`` per attempt."""

    def __init__(self, inner):
        self.inner = inner
        self.plan_ids = []
        self.failures_left = 1

    def __call__(self, area, plan):
        self.plan_ids.append(id(plan))
        if self.failures_left:
            self.failures_left -= 1
            raise OSError("injected transient fault")
        return self.inner(area, plan)


class TestRetriedTasksSharePlan:
    """S2 regression: a retried shard task must re-enter the planned
    entry point with the *original* plan object — not re-derive it —
    and the retry must not double-count any statistics."""

    def test_retry_reuses_the_original_plan_object(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            healthy = eng.query_interval(eng.config.space, q_lo, q_hi)
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            shard = eng.shards[1]
            flaky = _FlakyOnce(shard._query_area_planned)
            shard._query_area_planned = flaky
            result = eng.query_interval(eng.config.space, q_lo, q_hi)
            assert len(flaky.plan_ids) == 2  # failed attempt + retry
            assert flaky.plan_ids[0] == flaky.plan_ids[1]
            assert sorted(map(entry_key, result.entries)) == \
                sorted(map(entry_key, healthy.entries))
            # The failed attempt contributed nothing: the merged stats
            # are identical to an entirely healthy run.
            assert stats_without_cache_hits(result.stats) == \
                stats_without_cache_hits(healthy.stats)

    def test_all_shards_receive_the_same_plan_instance(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            seen = []
            for shard in eng.shards:
                inner = shard._query_area_planned

                def spy(area, plan, _inner=inner):
                    seen.append(id(plan))
                    return _inner(area, plan)

                shard._query_area_planned = spy
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            eng.query_interval(eng.config.space, q_lo, q_hi)
            assert len(seen) == N_SHARDS
            assert len(set(seen)) == 1


class TestEngineEpochFence:
    """S1 at the engine front end: the engine-level plan cache is
    invalidated by advance_time, so a pre-slide plan is never fanned
    out after the clock moved."""

    def test_cache_hit_then_fence_on_slide(self, saved_dir):
        cfg = make_config()
        with ShardedEngine.open(saved_dir, cfg,
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            area = eng.config.space
            first = eng.query_interval(area, q_lo, q_hi)
            assert first.stats.plan_cache_hits == 0
            again = eng.query_interval(area, q_lo, q_hi)
            assert again.stats.plan_cache_hits == 1
            eng.advance_time(eng.now + cfg.slide)
            post = eng.query_interval(area, q_lo, q_hi)
            assert post.stats.plan_cache_hits == 0
        with ShardedEngine.open(saved_dir, cfg,
                                executor=SerialExecutor()) as fresh:
            fresh.advance_time(fresh.now + cfg.slide)
            expected = fresh.query_interval(area, q_lo, q_hi)
        assert sorted(map(entry_key, post.entries)) == \
            sorted(map(entry_key, expected.entries))
        assert stats_without_cache_hits(post.stats) == \
            stats_without_cache_hits(expected.stats)


class TestEngineManyEquivalence:
    AREAS = [Rect(0, 0, 99, 99), Rect(10, 10, 40, 70), Rect(60, 5, 99, 30),
             Rect(25, 25, 25, 25), Rect(10, 10, 40, 70)]

    def test_batched_equals_scalar_loop(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            batch = eng.query_interval_many(self.AREAS, q_lo, q_hi)
            assert len(batch.results) == len(self.AREAS)
            for area, result in zip(self.AREAS, batch.results):
                scalar = eng.query_interval(area, q_lo, q_hi)
                assert [entry_key(e) for e in result.entries] == \
                    [entry_key(e) for e in scalar.entries]

    def test_batch_shares_one_engine_plan(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            eng.query_interval(eng.config.space, q_lo, q_hi)
            batch = eng.query_interval_many(self.AREAS, q_lo, q_hi)
            assert batch.stats.plan_cache_hits == 1

    def test_empty_batch(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            batch = eng.query_interval_many([], q_lo, q_hi)
            assert len(batch) == 0

    def test_invalid_interval_rejected(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            with pytest.raises(ValueError, match="empty query interval"):
                eng.query_interval_many([Rect(0, 0, 9, 9)], 10, 9)


class TestDegradedManyAttribution:
    def test_failures_attributed_only_to_overlapping_rects(self, saved_dir):
        """strict=False: a failed shard degrades exactly the rectangles
        whose area overlaps it; disjoint rectangles stay complete."""
        crashed = 1
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            # Probe for a small rectangle that misses the crashed shard
            # (grid-hash sharding: cell-sized rects map to few shards).
            clear = next(
                rect for rect in (Rect(x, y, x + 24, y + 24)
                                  for x in range(0, 75, 25)
                                  for y in range(0, 75, 25))
                if crashed not in eng._shards_for_area(rect))
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            clear_oracle = sorted(
                entry_key(e)
                for e in eng.query_interval(clear, q_lo, q_hi))
            full = eng.query_interval(eng.config.space, q_lo, q_hi)
            surviving = sorted(
                entry_key(e) for e in full
                if eng._shard_id_of(e.x, e.y) != crashed)
        devices = []
        config = dataclasses.replace(
            make_config(node_cache_capacity=0),
            device_factory=per_path_device_factory(
                f"shard-{crashed:03d}", registry=devices))
        eng = ShardedEngine.open(saved_dir, config,
                                 executor=SerialExecutor(),
                                 retry_policy=RetryPolicy(attempts=1))
        try:
            (device,) = devices
            device.crashed = True
            areas = [eng.config.space, clear]
            batch = eng.query_interval_many(areas, q_lo, q_hi,
                                            strict=False)
            assert batch.stats.degraded
            degraded, unaffected = batch.results
            assert isinstance(degraded, PartialResult)
            assert not degraded.complete
            assert [f.shard_id for f in degraded.failures] == [crashed]
            assert sorted(map(entry_key, degraded.entries)) == surviving
            assert unaffected.complete
            assert not unaffected.stats.degraded
            assert sorted(map(entry_key, unaffected.entries)) == \
                clear_oracle
        finally:
            close_quietly(eng)

    def test_strict_batch_raises_on_any_failure(self, saved_dir):
        from repro.engine import ShardQueryError

        devices = []
        config = dataclasses.replace(
            make_config(node_cache_capacity=0),
            device_factory=per_path_device_factory("shard-000",
                                                   registry=devices))
        eng = ShardedEngine.open(saved_dir, config,
                                 executor=SerialExecutor(),
                                 retry_policy=RetryPolicy(attempts=1))
        try:
            devices[0].crashed = True
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            with pytest.raises(ShardQueryError) as excinfo:
                eng.query_interval_many([eng.config.space], q_lo, q_hi)
            assert excinfo.value.shard_id == 0
        finally:
            close_quietly(eng)


class _Handle:
    def __init__(self, log):
        self.log = log
        self.closed = False

    def close(self):
        self.closed = True


class TestWorkerShardCache:
    """The worker-local handle cache behind the remote query path."""

    def make_opener(self, opened):
        def opener():
            handle = _Handle(opened)
            opened.append(handle)
            return handle
        return opener

    def test_same_epoch_reuses_the_handle(self, tmp_path):
        from repro.engine.executor import open_worker_shard

        opened = []
        path = str(tmp_path / "a")
        first = open_worker_shard(path, 3, self.make_opener(opened))
        second = open_worker_shard(path, 3, self.make_opener(opened))
        assert first is second
        assert len(opened) == 1
        assert not first.closed

    def test_epoch_bump_closes_and_reopens(self, tmp_path):
        from repro.engine.executor import open_worker_shard

        opened = []
        path = str(tmp_path / "b")
        stale = open_worker_shard(path, 1, self.make_opener(opened))
        fresh = open_worker_shard(path, 2, self.make_opener(opened))
        assert fresh is not stale
        assert stale.closed
        assert not fresh.closed
        assert len(opened) == 2

    def test_discard_closes_and_forces_reopen(self, tmp_path):
        from repro.engine.executor import (discard_worker_shard,
                                           open_worker_shard)

        opened = []
        path = str(tmp_path / "c")
        first = open_worker_shard(path, 1, self.make_opener(opened))
        discard_worker_shard(path)
        assert first.closed
        second = open_worker_shard(path, 1, self.make_opener(opened))
        assert second is not first
        assert len(opened) == 2
        discard_worker_shard(path)  # idempotent on a missing entry
        discard_worker_shard(path)


class TestProcessExecutorWarmWorkers:
    def test_repeated_remote_queries_stay_correct(self, saved_dir):
        """Workers reuse their shard handles across queries (same save
        epoch) and reopen after a save bumps it — results identical to
        the serial oracle throughout."""
        from repro.engine import ProcessExecutor

        cfg = make_config()
        with ShardedEngine.open(saved_dir, cfg,
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            oracle = sorted(entry_key(e) for e in eng.query_interval(
                eng.config.space, q_lo, q_hi))
        executor = ProcessExecutor(max_workers=2)
        try:
            with ShardedEngine.open(saved_dir, cfg,
                                    executor=executor) as eng:
                for _ in range(3):  # warm-handle reuse
                    result = eng.query_interval(eng.config.space,
                                                q_lo, q_hi)
                    assert sorted(map(entry_key, result.entries)) == \
                        oracle
                eng.report(990, 50, 50, eng.now)
                eng.save()  # epoch bump: workers must reopen
                after = eng.query_interval(eng.config.space, q_lo,
                                           eng.now)
                assert (990, 50, 50, eng.now, -1) in \
                    [entry_key(e) for e in after.entries]
        finally:
            executor.close()


class TestPlanPicklability:
    """The process-executor path ships the frozen plan to workers."""

    def test_round_trip(self):
        cfg = make_config()
        columns = classify_interval(cfg, 100, 40, 100, None)
        assert columns
        plan = build_query_plan(cfg, 100, columns, 40, 100, None)
        clone = pickle.loads(pickle.dumps(plan))
        assert isinstance(clone, QueryPlan)
        assert clone == plan
