"""Engine-level crash matrix: kill a save() at every fault point.

The two-phase epoch commit claims the whole directory flips atomically:
a crash at *any* step of ``save()`` must leave a directory that reopens
as exactly the pre-save snapshot (roll back) or exactly the post-save
snapshot (roll forward) — never a mix.  This matrix proves it by
construction:

* two *oracle* directories run the same workload fault-free and stop at
  the pre-save / post-save states;
* the victim directory replays the workload with a
  :class:`FaultInjectingFileOps` that kills the manifest protocol at
  ordinal ``k``, for every ``k`` — plus a simulated process death (all
  page devices flip to ``crashed`` so ``close()`` cannot commit
  anything, only release handles);
* the victim is reopened with healthy ops/devices and its queries are
  compared entry-for-entry against both oracles.

The matrix runs twice: once over a fresh format-2 directory and once
over a directory downgraded to a format-1 manifest (the legacy-upgrade
path).  Device-level kills *between* shard commits are the documented
typed-error arm (EpochTornError) and are asserted separately.

Every engine here runs with ``snapshots=False``: this file pins down
the bare 8-op manifest protocol and its one unrecoverable middle.  The
snapshot-enabled protocol (CoW epoch snapshots, no torn state) has its
own matrix in tests/engine/test_reshard_crash_matrix.py.
"""

import dataclasses
import json
import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (EngineError, EpochTornError, SerialExecutor,
                          ShardedEngine)
from repro.storage import (FaultInjectingFileOps, InjectedFault,
                           crash_devices, per_path_device_factory)

N_SHARDS = 3
#: One epoch save = 8 durable file operations: PREPARE (tmp write,
#: replace, dir fsync), FLIP (tmp write, replace, dir fsync), cleanup
#: (marker unlink, dir fsync).
SAVE_FILE_OPS = 8


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed, count, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


PHASE_1 = lambda: workload(7, 150)  # noqa: E731
PHASE_2 = lambda: workload(8, 100, t0=PHASE_1()[-1].t)  # noqa: E731


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def build_phase1(path, config):
    """Fault-free phase-1 directory: extend + save (epoch 1)."""
    with ShardedEngine(config, path, executor=SerialExecutor(),
                       snapshots=False) as eng:
        eng.extend(PHASE_1())
        eng.save()


def apply_phase2_and_save(eng):
    eng.extend(PHASE_2())
    eng.save()


def snapshot(path, config):
    """Observable state of a directory: full scan plus query results."""
    with ShardedEngine.open(path, config,
                            executor=SerialExecutor()) as eng:
        q_lo, q_hi = config.queriable_period(eng.now)
        full = eng.query_interval(config.space, q_lo, q_hi)
        sub = eng.query_interval(Rect(10, 10, 60, 60), q_lo, q_hi)
        count, _ = eng.count_interval(config.space, q_lo, q_hi)
        return {
            "now": eng.now,
            "len": len(eng),
            "scan": sorted(entry_key(e) for e in eng.scan()),
            "full": sorted(entry_key(e) for e in full),
            "sub": sorted(entry_key(e) for e in sub),
            "count": count,
        }


@pytest.fixture(scope="module")
def oracles(tmp_path_factory):
    """Pre-save and post-save oracle snapshots (fault-free runs)."""
    config = make_config()
    pre_dir = tmp_path_factory.mktemp("oracle") / "pre.d"
    post_dir = tmp_path_factory.mktemp("oracle") / "post.d"
    build_phase1(pre_dir, config)
    build_phase1(post_dir, config)
    with ShardedEngine.open(post_dir, config, executor=SerialExecutor(),
                            snapshots=False) as eng:
        apply_phase2_and_save(eng)
    return {"pre": snapshot(pre_dir, config),
            "post": snapshot(post_dir, config)}


def downgrade_manifest_to_v1(path):
    """Rewrite engine.json as a legacy format-1 manifest."""
    manifest_path = path / "engine.json"
    manifest = json.loads(manifest_path.read_text())
    manifest_path.write_text(json.dumps(
        {"format": 1, "n_shards": manifest["n_shards"]}) + "\n")


def crash_save_at(path, config, fail_op, legacy):
    """Phase-2 save killed at file op ``fail_op``; simulated process death.

    Returns the FaultInjectingFileOps for protocol introspection.
    """
    build_phase1(path, config)
    if legacy:
        downgrade_manifest_to_v1(path)
    devices = []
    faulty = dataclasses.replace(
        config,
        device_factory=per_path_device_factory("shard", registry=devices))
    ops = FaultInjectingFileOps(fail_op=fail_op)
    eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                             file_ops=ops, snapshots=False)
    try:
        with pytest.raises(InjectedFault):
            apply_phase2_and_save(eng)
    finally:
        # Simulated kill: every device dies with the process, so close()
        # cannot commit state the "dead" process never made durable —
        # it only releases OS handles.
        crash_devices(devices)
        try:
            eng.close()
        except (EngineError, OSError):
            pass
    return ops


class TestFileOpKillMatrix:
    """Kill every durable-file step of a save; reopen must be A or B."""

    @pytest.mark.parametrize("fail_op", range(1, SAVE_FILE_OPS + 1))
    @pytest.mark.parametrize("legacy", [False, True],
                             ids=["fresh-v2", "v1-upgrade"])
    def test_reopen_yields_pre_or_post_snapshot(self, tmp_path, oracles,
                                                fail_op, legacy):
        config = make_config()
        path = tmp_path / "victim.d"
        crash_save_at(path, config, fail_op, legacy)
        observed = snapshot(path, config)
        assert observed in (oracles["pre"], oracles["post"]), (
            f"fault point {fail_op}: reopened state matches neither "
            f"the pre-save nor the post-save oracle")
        # The mapping is deterministic, not merely one-of: ops 1-3 die
        # inside PREPARE (no shard committed -> roll back); from op 4 on
        # every shard committed (roll forward / finished flip).
        expected = "pre" if fail_op <= 3 else "post"
        assert observed == oracles[expected], (
            f"fault point {fail_op}: expected the {expected}-save oracle")

    def test_save_protocol_length_matches_matrix(self, tmp_path):
        """The matrix covers every op: a fault-free save is 8 ops."""
        config = make_config()
        path = tmp_path / "probe.d"
        build_phase1(path, config)
        ops = FaultInjectingFileOps()
        with ShardedEngine.open(path, config, executor=SerialExecutor(),
                                file_ops=ops, snapshots=False) as eng:
            apply_phase2_and_save(eng)
        assert len(ops.ops) == SAVE_FILE_OPS
        assert [name for name, _ in ops.ops] == [
            "write_file", "replace", "fsync_dir",   # PREPARE
            "write_file", "replace", "fsync_dir",   # FLIP
            "unlink", "fsync_dir",                  # cleanup
        ]

    @pytest.mark.parametrize("legacy", [False, True],
                             ids=["fresh-v2", "v1-upgrade"])
    def test_recovery_is_idempotent(self, tmp_path, oracles, legacy):
        """Crash, recover, and the directory keeps reopening identically."""
        config = make_config()
        path = tmp_path / "victim.d"
        crash_save_at(path, config, 5, legacy)  # dies mid-FLIP
        first = snapshot(path, config)
        second = snapshot(path, config)
        assert first == second == oracles["post"]
        assert not (path / "engine.prepare.json").exists()


class TestDeviceKillDuringCommit:
    """Kills landing *inside* the shard-commit phase."""

    def test_first_shard_kill_rolls_back(self, tmp_path, oracles):
        config = make_config()
        path = tmp_path / "victim.d"
        build_phase1(path, config)
        devices = []
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory(
                "shard", registry=devices))
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                                 snapshots=False)
        try:
            eng.extend(PHASE_2())
            # Arm the fault *after* ingestion so the kill lands on
            # shard-000's first write of the commit phase.  Every device
            # is wrapped so the simulated death below stops *all* shards
            # from committing at close.
            device = devices[0]
            device.fail_write = device.writes_seen + 1
            with pytest.raises(OSError):
                eng.save()
        finally:
            crash_devices(devices)
            try:
                eng.close()
            except (EngineError, OSError):
                pass
        # Shard 0 commits first; its death means *no* shard committed
        # the new epoch, so recovery rolls the marker back.
        assert snapshot(path, config) == oracles["pre"]

    def test_last_shard_kill_is_typed_torn_error(self, tmp_path):
        config = make_config()
        path = tmp_path / "victim.d"
        build_phase1(path, config)
        devices = []
        faulty = dataclasses.replace(
            config,
            device_factory=per_path_device_factory(
                "shard", registry=devices))
        eng = ShardedEngine.open(path, faulty, executor=SerialExecutor(),
                                 snapshots=False)
        try:
            eng.extend(PHASE_2())
            # Arm the fault after ingestion: the kill lands on the last
            # shard's first write of the commit phase, i.e. after its
            # siblings already committed the new epoch in place.
            device = devices[N_SHARDS - 1]
            device.fail_write = device.writes_seen + 1
            with pytest.raises(OSError):
                eng.save()
        finally:
            crash_devices(devices)
            try:
                eng.close()
            except (EngineError, OSError):
                pass
        # Earlier shards committed in place, the last one did not:
        # neither snapshot is whole, and reopen says so — typed, with
        # both shard groups named — instead of serving a mix.
        with pytest.raises(EpochTornError) as excinfo:
            ShardedEngine.open(path, make_config(),
                               executor=SerialExecutor())
        assert excinfo.value.committed == list(range(N_SHARDS - 1))
        assert excinfo.value.pending == [N_SHARDS - 1]
