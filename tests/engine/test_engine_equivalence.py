"""Equivalence oracle: a ShardedEngine at any shard count returns exactly
the results of a plain SWSTIndex fed the same interleaved workload, and a
single-shard engine preserves the unsharded node-access counts."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.engine import SerialExecutor, ShardedEngine

CFG = SWSTConfig(window=200, slide=20, x_partitions=3, y_partitions=3,
                 d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                 page_size=512)


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def sorted_entries(result):
    return sorted((entry_key(e) for e in result.entries))


# One workload step: (op, oid, x, y, time gap, duration).
op_strategy = st.tuples(
    st.sampled_from(["report", "insert", "close", "forget", "advance"]),
    st.integers(0, 5),
    st.integers(0, 99),
    st.integers(0, 99),
    st.one_of(st.integers(0, 6), st.integers(150, 500)),
    st.integers(1, 40),
)

query_strategy = st.lists(
    st.tuples(
        st.integers(0, 80), st.integers(0, 80),
        st.integers(1, 60), st.integers(1, 60),
        st.integers(0, 700), st.integers(0, 120),
        st.sampled_from([None, 50, 200]),
    ),
    min_size=1, max_size=15,
)


def apply_workload(target, ops):
    t = 0
    for op, oid, x, y, gap, duration in ops:
        t += gap
        if op == "report":
            target.report(oid, x, y, t)
        elif op == "insert":
            target.insert(oid, x, y, t, duration)
        elif op == "close":
            try:
                target.close_object(oid, t)
            except ValueError:
                # close at/before the object's current start is invalid
                # input; both targets must reject it identically (state
                # divergence would fail the assertions below).
                pass
        elif op == "forget":
            target.forget_object(oid)
        elif op == "advance":
            target.advance_time(t)
    return t


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=80),
       queries=query_strategy,
       n_shards=st.sampled_from([1, 2, 4, 7]))
def test_engine_equals_plain_index(ops, queries, n_shards):
    config = SWSTConfig(window=200, slide=20, x_partitions=3,
                        y_partitions=3, d_max=40, duration_interval=10,
                        space=Rect(0, 0, 99, 99), page_size=512,
                        n_shards=n_shards)
    with SWSTIndex(CFG) as plain, \
            ShardedEngine(config, executor=SerialExecutor()) as engine:
        t = apply_workload(plain, ops)
        apply_workload(engine, ops)
        assert len(engine) == len(plain)
        assert engine.current_objects() == plain.current_objects()
        engine.check_integrity()
        for x_lo, y_lo, width, height, t_lo, length, window in queries:
            area = Rect(x_lo, y_lo, x_lo + width, y_lo + height)
            t_hi = t_lo + length
            assert sorted_entries(
                engine.query_interval(area, t_lo, t_hi, window)) == \
                sorted_entries(plain.query_interval(area, t_lo, t_hi,
                                                    window))
            assert engine.count_interval(area, t_lo, t_hi, window)[0] == \
                plain.count_interval(area, t_lo, t_hi, window)[0]
        # Ties at the k-th distance may be broken differently by the
        # merge and by the expanding-ring search; distances must agree.
        def knn_distances(result):
            return sorted((e.x - 50) ** 2 + (e.y - 50) ** 2
                          for e in result.entries)

        assert knn_distances(engine.query_knn(50, 50, 3, 0, t)) == \
            knn_distances(plain.query_knn(50, 50, 3, 0, t))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=60),
       n_shards=st.sampled_from([2, 4, 7]))
def test_extend_equals_plain_index(ops, n_shards):
    """Batched ingestion through the engine matches the plain index."""
    config = SWSTConfig(window=200, slide=20, x_partitions=3,
                        y_partitions=3, d_max=40, duration_interval=10,
                        space=Rect(0, 0, 99, 99), page_size=512,
                        n_shards=n_shards)

    class R:
        def __init__(self, oid, x, y, t):
            self.oid, self.x, self.y, self.t = oid, x, y, t

    t = 0
    reports = []
    for _, oid, x, y, gap, _ in ops:
        t += gap
        reports.append(R(oid, x, y, t))
    with SWSTIndex(CFG) as plain, \
            ShardedEngine(config, executor=SerialExecutor()) as engine:
        plain.extend(reports, batch_size=16)
        engine.extend(reports, batch_size=16)
        assert len(engine) == len(plain)
        assert engine.current_objects() == plain.current_objects()
        engine.check_integrity()
        assert sorted_entries(
            engine.query_interval(CFG.space, 0, t + 1)) == \
            sorted_entries(plain.query_interval(CFG.space, 0, t + 1))


class TestSingleShardPreservation:
    """n_shards=1 must keep the exact unsharded cost model (the paper's
    node-access numbers must reproduce through the engine)."""

    def test_node_accesses_identical_on_mixed_workload(self):
        rng = random.Random(42)
        config = SWSTConfig(window=200, slide=20, x_partitions=3,
                            y_partitions=3, d_max=40, duration_interval=10,
                            space=Rect(0, 0, 99, 99), page_size=512,
                            n_shards=1)

        class R:
            def __init__(self, oid, x, y, t):
                self.oid, self.x, self.y, self.t = oid, x, y, t

        t = 0
        reports = []
        for _ in range(600):
            t += rng.choice([0, 0, 1, 1, 2, 9])
            reports.append(R(rng.randrange(20), rng.randrange(100),
                             rng.randrange(100), t))
        with SWSTIndex(CFG) as plain, \
                ShardedEngine(config, executor=SerialExecutor()) as engine:
            plain.extend(reports)
            engine.extend(reports)
            query_times = [(lo := rng.randrange(0, t + 1),
                            lo + rng.randrange(0, 50)) for _ in range(25)]
            for target in (plain, engine):
                for lo, hi in query_times:
                    target.query_interval(Rect(10, 10, 70, 70), lo, hi)
            plain_stats = plain.stats.snapshot()
            engine_stats = engine.stats
            assert vars(plain_stats) == vars(engine_stats)
            assert plain_stats.node_accesses == engine_stats.node_accesses
