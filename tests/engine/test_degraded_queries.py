"""Degraded (``strict=False``) fan-out: partial results, typed failure
records, breaker recovery, retry transparency, and close() aggregation."""

import contextlib
import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig
from repro.engine import (CircuitBreaker, CircuitOpenError, EngineCloseError,
                          PartialResult, RetryPolicy, SerialExecutor,
                          ShardQueryError, ShardedEngine)
from repro.storage import InjectedFault, per_path_device_factory

N_SHARDS = 3


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed=11, count=300, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("degraded") / "index.d"
    with ShardedEngine(make_config(), path,
                       executor=SerialExecutor()) as eng:
        eng.extend(workload())
        eng.save()
    return path


def open_with_crashed_shard(path, shard_id, **engine_kwargs):
    """Open the directory, then crash ``shard_id``'s device in place.

    The decoded-node cache is disabled so every query actually touches
    the (crashed) device instead of being served from memory.
    """
    devices = []
    config = dataclasses.replace(
        make_config(node_cache_capacity=0),
        device_factory=per_path_device_factory(
            f"shard-{shard_id:03d}", registry=devices))
    eng = ShardedEngine.open(path, config, executor=SerialExecutor(),
                             **engine_kwargs)
    (device,) = devices
    device.crashed = True
    return eng, device


def close_quietly(eng):
    with contextlib.suppress(OSError, EngineCloseError):
        eng.close()


class TestStrictMode:
    def test_strict_raises_typed_error_naming_the_shard(self, saved_dir):
        eng, _ = open_with_crashed_shard(
            saved_dir, 1, retry_policy=RetryPolicy(attempts=1))
        try:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            with pytest.raises(ShardQueryError) as excinfo:
                eng.query_interval(eng.config.space, q_lo, q_hi)
            assert excinfo.value.shard_id == 1
            assert "shard-001" in excinfo.value.path
            assert isinstance(excinfo.value.__cause__, InjectedFault)
        finally:
            close_quietly(eng)

    def test_retry_recovers_single_transient_fault(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            oracle = sorted(entry_key(e) for e in eng.query_interval(
                eng.config.space, q_lo, q_hi))
        devices = []
        config = dataclasses.replace(
            make_config(node_cache_capacity=0),
            device_factory=per_path_device_factory("shard-001",
                                                   registry=devices))
        with ShardedEngine.open(saved_dir, config,
                                executor=SerialExecutor()) as eng:
            (device,) = devices
            device.read_errors[device.reads_seen + 1] = InjectedFault(
                "transient read fault")
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            result = eng.query_interval(eng.config.space, q_lo, q_hi)
            # The default policy retried past the fault: the strict
            # result is complete and bit-identical to the healthy run.
            assert sorted(entry_key(e) for e in result) == oracle
            assert not result.stats.degraded


class TestDegradedMode:
    def test_partial_result_lists_failure_and_sets_degraded(self,
                                                            saved_dir):
        eng, _ = open_with_crashed_shard(
            saved_dir, 2, retry_policy=RetryPolicy(attempts=1))
        try:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            result = eng.query_interval(eng.config.space, q_lo, q_hi,
                                        strict=False)
            assert isinstance(result, PartialResult)
            assert not result.complete
            assert result.stats.degraded
            assert [f.shard_id for f in result.failures] == [2]
            assert isinstance(result.failures[0].error, InjectedFault)
            assert len(result) > 0  # surviving shards still answered
        finally:
            close_quietly(eng)

    def test_degraded_count_is_partial(self, saved_dir):
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            full, _ = eng.count_interval(eng.config.space, q_lo, q_hi)
        eng, _ = open_with_crashed_shard(
            saved_dir, 0, retry_policy=RetryPolicy(attempts=1))
        try:
            partial, stats = eng.count_interval(eng.config.space,
                                                q_lo, q_hi, strict=False)
            assert partial < full
            assert stats.degraded
        finally:
            close_quietly(eng)

    def test_degraded_knn_still_ranks_survivors(self, saved_dir):
        eng, _ = open_with_crashed_shard(
            saved_dir, 1, retry_policy=RetryPolicy(attempts=1))
        try:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            result = eng.query_knn(50, 50, 5, q_lo, q_hi, strict=False)
            assert isinstance(result, PartialResult)
            assert [f.shard_id for f in result.failures] == [1]
            assert len(result) == 5
        finally:
            close_quietly(eng)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(shard_id=st.integers(min_value=0, max_value=N_SHARDS - 1),
           x_lo=st.integers(min_value=0, max_value=99),
           y_lo=st.integers(min_value=0, max_value=99),
           dx=st.integers(min_value=0, max_value=99),
           dy=st.integers(min_value=0, max_value=99))
    def test_partial_equals_union_of_surviving_shards(self, saved_dir,
                                                      shard_id, x_lo,
                                                      y_lo, dx, dy):
        """strict=False == the union of the surviving shards' strict
        results: the failed shard's (disjoint) contribution is exactly
        what is missing, nothing else changes."""
        area = Rect(x_lo, y_lo, min(99, x_lo + dx), min(99, y_lo + dy))
        with ShardedEngine.open(saved_dir, make_config(),
                                executor=SerialExecutor()) as eng:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            full = eng.query_interval(area, q_lo, q_hi)
            surviving = sorted(
                entry_key(e) for e in full
                if eng._shard_id_of(e.x, e.y) != shard_id)
        eng, _ = open_with_crashed_shard(
            saved_dir, shard_id, retry_policy=RetryPolicy(attempts=1))
        try:
            result = eng.query_interval(area, q_lo, q_hi, strict=False)
            assert sorted(entry_key(e) for e in result) == surviving
            failed = [f.shard_id for f in result.failures]
            assert failed in ([], [shard_id])  # [] if area missed it
        finally:
            close_quietly(eng)


class TestBreakerIntegration:
    def test_breaker_trips_then_recovers_after_cooldown(self, saved_dir):
        eng, device = open_with_crashed_shard(
            saved_dir, 1,
            retry_policy=RetryPolicy(attempts=1),
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1,
                                                   cooldown=2.0))
        try:
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            area = eng.config.space

            # 1st query: dispatched, fails, trips the breaker.
            first = eng.query_interval(area, q_lo, q_hi, strict=False)
            assert isinstance(first.failures[0].error, InjectedFault)
            assert eng.breakers[1].state == "open"

            # While open the shard is skipped without any dispatch.
            second = eng.query_interval(area, q_lo, q_hi, strict=False)
            assert isinstance(second.failures[0].error, CircuitOpenError)
            assert second.failures[0].error.shard_id == 1

            # The fault clears; after the cooldown the breaker lets a
            # probe through, it succeeds, and service is fully restored.
            device.crashed = False
            for _ in range(4):
                last = eng.query_interval(area, q_lo, q_hi, strict=False)
            assert last.complete
            assert not last.stats.degraded
            assert eng.breakers[1].state == "closed"
        finally:
            close_quietly(eng)


class TestCloseAggregation:
    def test_multiple_close_failures_are_aggregated(self, tmp_path):
        path = tmp_path / "index.d"
        with ShardedEngine(make_config(), path,
                           executor=SerialExecutor()) as eng:
            eng.extend(workload(seed=5, count=120))
            eng.save()
        devices = []
        config = dataclasses.replace(
            make_config(),
            device_factory=per_path_device_factory("shard",
                                                   registry=devices))
        eng = ShardedEngine.open(path, config, executor=SerialExecutor())
        assert len(devices) == N_SHARDS
        # Dirty every shard so close() has state to flush, then crash
        # two devices: both flush failures must surface.
        eng.extend(workload(seed=7, count=60, t0=eng.now))
        for device in devices[:2]:
            device.crashed = True
        with pytest.raises(EngineCloseError) as excinfo:
            eng.close()
        assert len(excinfo.value.errors) == 2
        assert all(isinstance(err, InjectedFault)
                   for err in excinfo.value.errors)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        # The healthy shard still closed; a second close is a no-op.
        eng.close()

    def test_single_close_failure_propagates_unwrapped(self, tmp_path):
        path = tmp_path / "index.d"
        with ShardedEngine(make_config(), path,
                           executor=SerialExecutor()) as eng:
            eng.extend(workload(seed=6, count=120))
            eng.save()
        devices = []
        config = dataclasses.replace(
            make_config(),
            device_factory=per_path_device_factory("shard-001",
                                                   registry=devices))
        eng = ShardedEngine.open(path, config, executor=SerialExecutor())
        eng.extend(workload(seed=7, count=60, t0=eng.now))
        devices[0].crashed = True
        with pytest.raises(InjectedFault):
            eng.close()


class _SlowReadDevice:
    """Delegating wrapper whose reads sleep once armed (deadline tests)."""

    def __init__(self, inner):
        self._inner = inner
        self.delay = 0.0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def page_size(self):
        return self._inner.page_size

    def read(self, page_id):
        if self.delay:
            import time

            time.sleep(self.delay)
        return self._inner.read(page_id)


class TestTaskDeadline:
    def test_slow_shard_times_out_and_abandons_the_gather(self, saved_dir):
        from repro.engine import TaskTimeoutError, ThreadedExecutor
        from repro.storage import FilePageDevice

        slow_devices = []

        def factory(path, page_size):
            device = FilePageDevice(path, page_size)
            if "shard-001" in str(path):
                wrapper = _SlowReadDevice(device)
                slow_devices.append(wrapper)
                return wrapper
            return device

        config = dataclasses.replace(make_config(node_cache_capacity=0),
                                     device_factory=factory)
        executor = ThreadedExecutor(max_workers=N_SHARDS)
        eng = ShardedEngine.open(saved_dir, config, executor=executor,
                                 retry_policy=RetryPolicy(attempts=1),
                                 task_timeout=0.2)
        try:
            (slow,) = slow_devices
            slow.delay = 1.0  # armed only after the (fast) open
            q_lo, q_hi = eng.config.queriable_period(eng.now)
            result = eng.query_interval(eng.config.space, q_lo, q_hi,
                                        strict=False)
            assert isinstance(result, PartialResult)
            by_shard = {f.shard_id: f.error for f in result.failures}
            assert isinstance(by_shard[1], TaskTimeoutError)
            # The whole gather is abandoned: siblings are collateral,
            # reported as such rather than silently missing.
            assert set(by_shard) == set(range(N_SHARDS))
            assert all("abandoned" in str(by_shard[sid])
                       for sid in by_shard if sid != 1)
            slow.delay = 0.0
        finally:
            close_quietly(eng)
            executor.close()
