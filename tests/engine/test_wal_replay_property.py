"""Property: WAL replay rebuilds exactly the directly-applied index.

The warm worker's durability claim reduces to two statements about one
shard's log:

* **replay == direct apply** — logging a valid op stream and replaying
  it into a fresh index from the same base yields the same observable
  state as applying the stream directly (the ops are public index
  methods, so this is structural; the property pins it against drift);
* **the acknowledged prefix is sacred, the unacknowledged tail is not**
  — tearing any number of bytes off the *end* of a committed log may
  drop whole uncommitted records (they were never acknowledged) but
  must never lose or corrupt a record before the tear: resume replays
  exactly some prefix of the logged stream, never a subsequence with
  holes and never garbage.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.engine.wal import (NONE_ARG, OP_ADVANCE, OP_CLOSE, OP_FORGET,
                              OP_INSERT, OP_RETAIN, OP_RUN, WalRecord,
                              WalWriter, apply_record, read_wal, replay)

CFG = dict(window=200, slide=20, x_partitions=3, y_partitions=3,
           d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
           page_size=512)


def fresh_index():
    return SWSTIndex(SWSTConfig(**CFG))


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def observable(index):
    return (index.now, len(index), sorted(map(entry_key, index.scan())))


# One workload step -> one logged op.  Times are made non-decreasing by
# the materialiser below, durations stay within d_max.
step_strategy = st.tuples(
    st.sampled_from(["insert", "insert_d", "run", "close", "forget",
                     "retain", "advance"]),
    st.integers(0, 5),        # oid
    st.integers(0, 99),       # x
    st.integers(0, 99),       # y
    st.integers(0, 6),        # time gap
    st.integers(1, 40),       # duration / retention
)


def materialize(steps):
    """Turn raw steps into a valid (op, args) stream.

    Validity mirrors what the engine guarantees before logging: times
    non-decreasing, closes only strictly after the object's live start.
    """
    ops = []
    t = 0
    current = {}  # oid -> live start
    for kind, oid, x, y, gap, duration in steps:
        t += gap
        if kind == "insert":
            ops.append((OP_INSERT, (oid, x, y, t, NONE_ARG)))
            current[oid] = t
        elif kind == "insert_d":
            ops.append((OP_INSERT, (oid, x, y, t, duration)))
            current.pop(oid, None)
        elif kind == "run":
            ops.append((OP_RUN, (t, oid, x, y, t,
                                 (oid + 1) % 6, (x + 7) % 100,
                                 (y + 3) % 100, t)))
            current[oid] = t
            current[(oid + 1) % 6] = t
        elif kind == "close":
            start = current.get(oid)
            if start is None or t <= start:
                continue
            ops.append((OP_CLOSE, (oid, t)))
            del current[oid]
        elif kind == "forget":
            ops.append((OP_FORGET, (oid,)))
            current.pop(oid, None)
        elif kind == "retain":
            ops.append((OP_RETAIN, (oid, duration)))
        elif kind == "advance":
            ops.append((OP_ADVANCE, (t,)))
    return ops


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(step_strategy, min_size=1, max_size=60))
def test_replay_equals_direct_apply(tmp_path_factory, steps):
    ops = materialize(steps)
    path = str(tmp_path_factory.mktemp("wal") / "shard.wal")
    writer = WalWriter.reset(path, epoch=0)

    direct = fresh_index()
    for op, args in ops:
        seq = writer.log(op, args)
        apply_record(direct, WalRecord(seq, op, tuple(args)))
    writer.commit()

    replayed = fresh_index()
    scan = read_wal(path)
    assert replay(replayed, scan.records) == len(ops)
    assert observable(replayed) == observable(direct)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(step_strategy, min_size=2, max_size=40),
       acked_fraction=st.floats(0.0, 1.0),
       torn_bytes=st.integers(1, 64))
def test_acked_prefix_survives_a_torn_tail(tmp_path_factory, steps,
                                           acked_fraction, torn_bytes):
    """Cut the file anywhere past the last commit barrier; resume must
    replay the full acknowledged prefix and at most drop unacked ops."""
    ops = materialize(steps)
    if not ops:
        return
    acked = max(1, int(len(ops) * acked_fraction))
    path = str(tmp_path_factory.mktemp("wal") / "shard.wal")
    writer = WalWriter.reset(path, epoch=0)
    for op, args in ops[:acked]:
        writer.log(op, args)
    writer.commit()  # acknowledgement barrier
    barrier = os.path.getsize(path)
    for op, args in ops[acked:]:
        writer.log(op, args)
    writer.commit()

    # Crash: the unacknowledged suffix is torn at an arbitrary point at
    # or past the barrier (fsync ordering means acked bytes are all
    # there; unacked bytes may be any prefix of what was appended).
    size = os.path.getsize(path)
    cut = min(size, barrier + max(0, size - barrier - torn_bytes))
    with open(path, "r+b") as handle:
        handle.truncate(cut)

    writer, scan = WalWriter.resume(path)
    survived = [(record.op, record.args) for record in scan.records]
    # Exactly a prefix of the logged stream -- no holes, no reordering.
    assert survived == [(op, tuple(args)) for op, args in
                        ops[:len(survived)]]
    # The acknowledged prefix is fully present.
    assert len(survived) >= acked
    # Replaying what survived raises nothing and lands on the direct
    # application of the same prefix.
    direct = fresh_index()
    for op, args in ops[:len(survived)]:
        apply_record(direct, WalRecord(0, op, tuple(args)))
    replayed = fresh_index()
    replay(replayed, scan.records)
    assert observable(replayed) == observable(direct)
