"""ShardedEngine persistence: directory layout, save/open roundtrip,
manifest validation, remote (process) executor discipline."""

import dataclasses
import json
import os
import random

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import (EngineError, ProcessExecutor, SerialExecutor,
                          ShardedEngine)


def make_config(n_shards=3, **overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                  page_size=512, n_shards=n_shards)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def random_reports(count, seed=1):
    rng = random.Random(seed)
    t = 0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


class TestDirectoryLayout:
    def test_build_creates_manifest_and_shard_files(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
            eng.extend(random_reports(100))
            eng.save()
        names = sorted(os.listdir(path))
        assert names == ["engine.json", "shard-000.pages",
                         "shard-001.pages", "shard-002.pages",
                         "snapshots"]
        # The save's CoW snapshot froze the just-committed (clean)
        # state of epoch 1; construction's epoch-0 snapshot is pruned.
        assert sorted(os.listdir(path / "snapshots")) == ["000001"]
        assert sorted(os.listdir(path / "snapshots" / "000001")) == [
            "shard-000.pages", "shard-001.pages", "shard-002.pages"]
        manifest = json.loads((path / "engine.json").read_text())
        assert manifest["format"] == 2
        assert manifest["n_shards"] == 3
        assert manifest["epoch"] == 1  # one save() = one epoch commit
        assert manifest["generation"] == 0  # shard files at the root
        # One committed header generation recorded per shard.
        assert len(manifest["shards"]) == 3
        assert all(isinstance(g, int) and g >= 1
                   for g in manifest["shards"])

    def test_engine_path_must_be_directory(self, tmp_path):
        file_path = tmp_path / "plain.pages"
        file_path.write_text("not a directory")
        with pytest.raises(EngineError):
            ShardedEngine(make_config(), file_path,
                          executor=SerialExecutor())


class TestRoundtrip:
    def test_save_open_preserves_everything(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        reports = random_reports(400)
        with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
            eng.extend(reports)
            eng.set_retention(3, 40)
            expected_entries = sorted(entry_key(e) for e in eng.scan())
            expected_current = eng.current_objects()
            expected_now = eng.now
            eng.save()
        with ShardedEngine.open(path, config,
                                executor=SerialExecutor()) as eng:
            assert eng.now == expected_now
            assert eng.current_objects() == expected_current
            assert sorted(entry_key(e) for e in eng.scan()) == \
                expected_entries
            assert eng.retention_of(3) == 40
            eng.check_integrity()
            result = eng.query_interval(config.space, 0, expected_now + 1)
            stored = set(expected_entries)
            assert result.entries
            assert all(entry_key(e) in stored for e in result)

    def test_home_map_rebuilt_on_open(self, tmp_path):
        config = make_config()
        path = tmp_path / "index.d"
        with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
            eng.report(1, 5, 5, 0)
            eng.report(1, 95, 95, 10)
            eng.save()
            expected_home = dict(eng._home)
        with ShardedEngine.open(path, config,
                                executor=SerialExecutor()) as eng:
            assert eng._home == expected_home
            # The reopened engine can keep running the current protocol.
            eng.report(1, 50, 50, 20)
            assert eng.current_objects() == {1: (50, 50, 20)}

    def test_shard_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "index.d"
        with ShardedEngine(make_config(n_shards=3), path,
                           executor=SerialExecutor()) as eng:
            eng.save()
        with pytest.raises(EngineError, match="n_shards"):
            ShardedEngine.open(path, make_config(n_shards=2),
                               executor=SerialExecutor())
        with pytest.raises(EngineError, match="n_shards"):
            ShardedEngine(make_config(n_shards=2), path,
                          executor=SerialExecutor())

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="manifest"):
            ShardedEngine.open(tmp_path / "nothing.d", make_config())


class TestRemoteExecutor:
    def test_process_executor_queries_saved_engine(self, tmp_path):
        config = make_config(n_shards=2)
        path = tmp_path / "index.d"
        reports = random_reports(150)
        with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
            eng.extend(reports)
            eng.save()
            expected = sorted(
                entry_key(e)
                for e in eng.query_interval(config.space, 0, eng.now + 1))
            now = eng.now
        executor = ProcessExecutor(max_workers=2)
        try:
            with ShardedEngine.open(path, config, executor=executor) as eng:
                result = eng.query_interval(config.space, 0, now + 1)
                assert sorted(entry_key(e) for e in result) == expected
        finally:
            executor.close()

    def test_remote_executor_refuses_unsaved_mutations(self, tmp_path):
        config = make_config(n_shards=2)
        path = tmp_path / "index.d"
        with ShardedEngine(config, path, executor=SerialExecutor()) as eng:
            eng.extend(random_reports(50))
            eng.save()
        executor = ProcessExecutor(max_workers=2)
        try:
            with ShardedEngine.open(path, config, executor=executor) as eng:
                eng.report(1, 5, 5, eng.now + 1)
                with pytest.raises(EngineError, match="save"):
                    eng.query_interval(config.space, 0, eng.now)
                eng.save()
                eng.query_interval(config.space, 0, eng.now)
        finally:
            executor.close()

    def test_remote_executor_requires_disk_engine(self):
        executor = ProcessExecutor()
        try:
            with ShardedEngine(make_config(n_shards=2),
                               executor=executor) as eng:
                with pytest.raises(EngineError, match="disk"):
                    eng.query_interval(eng.config.space, 0, 1)
        finally:
            executor.close()

    def test_unpicklable_device_factory_is_stripped(self, tmp_path):
        # A device_factory is often a closure (unpicklable).  The engine
        # strips it from the config it ships to worker processes, so a
        # remote query works even when the local engine uses one.
        from repro.storage import FilePageDevice

        clean = make_config(n_shards=2)
        config = dataclasses.replace(
            clean, device_factory=lambda path, size: FilePageDevice(path,
                                                                    size))
        path = tmp_path / "index.d"
        with ShardedEngine(clean, path, executor=SerialExecutor()) as eng:
            eng.extend(random_reports(40))
            eng.save()
        executor = ProcessExecutor(max_workers=2)
        try:
            with ShardedEngine.open(path, config, executor=executor) as eng:
                eng.query_interval(clean.space, 0, eng.now + 1)
        finally:
            executor.close()
