"""GridShardMap: determinism, total coverage, balance, validation."""

import pytest

from repro.engine import GridShardMap


class TestPlacement:
    def test_every_cell_owned_by_exactly_one_shard(self):
        shard_map = GridShardMap(5, 7, 3)
        seen = {}
        for shard_id in range(3):
            for cell in shard_map.cells_of_shard(shard_id):
                assert cell not in seen
                seen[cell] = shard_id
        assert len(seen) == 5 * 7
        for (cx, cy), shard_id in seen.items():
            assert shard_map.shard_of_cell(cx, cy) == shard_id

    def test_single_shard_owns_everything(self):
        shard_map = GridShardMap(4, 4, 1)
        assert all(shard_map.shard_of_cell(cx, cy) == 0
                   for cx in range(4) for cy in range(4))

    def test_deterministic_across_instances(self):
        a = GridShardMap(20, 20, 8)
        b = GridShardMap(20, 20, 8)
        for cx in range(20):
            for cy in range(20):
                assert a.shard_of_cell(cx, cy) == b.shard_of_cell(cx, cy)

    def test_shard_counts_sum_to_grid(self):
        shard_map = GridShardMap(20, 20, 7)
        counts = shard_map.shard_counts()
        assert sum(counts) == 400
        assert len(counts) == 7

    def test_hash_spreads_adjacent_cells(self):
        # A row of adjacent cells should not serialise on one shard.
        shard_map = GridShardMap(20, 20, 4)
        row = {shard_map.shard_of_cell(cx, 10) for cx in range(20)}
        assert len(row) > 1

    def test_reasonable_balance_on_paper_grid(self):
        counts = GridShardMap(20, 20, 4).shard_counts()
        assert min(counts) >= 0.5 * (400 / 4)
        assert max(counts) <= 1.5 * (400 / 4)


class TestValidation:
    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            GridShardMap(0, 5, 2)
        with pytest.raises(ValueError):
            GridShardMap(5, -1, 2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            GridShardMap(5, 5, 0)

    def test_cell_bounds_checked(self):
        shard_map = GridShardMap(3, 3, 2)
        with pytest.raises(ValueError):
            shard_map.shard_of_cell(3, 0)
        with pytest.raises(ValueError):
            shard_map.shard_of_cell(0, -1)

    def test_shard_id_bounds_checked(self):
        with pytest.raises(ValueError):
            GridShardMap(3, 3, 2).cells_of_shard(2)
