"""Pager: allocation, free list, header metadata, file round-trips."""

import pytest

from repro.storage import (CorruptPageFileError, MEMORY, PageError, Pager,
                           PagerClosedError)


@pytest.fixture
def pager():
    with Pager(MEMORY, page_size=1024) as p:
        yield p


class TestAllocation:
    def test_fresh_pager_has_header_pages_only(self, pager):
        assert pager.page_count() == pager.first_data_page

    def test_allocate_returns_distinct_ids(self, pager):
        ids = {pager.allocate() for _ in range(10)}
        assert len(ids) == 10

    def test_allocate_never_returns_header_page(self, pager):
        for _ in range(20):
            assert pager.allocate() != 0

    def test_allocated_page_is_zeroed(self, pager):
        page = pager.allocate()
        assert pager.read(page) == b"\x00" * 1024

    def test_write_then_read_round_trips(self, pager):
        page = pager.allocate()
        data = bytes(range(256)) * 4
        pager.write(page, data)
        assert pager.read(page) == data

    def test_write_wrong_size_rejected(self, pager):
        page = pager.allocate()
        with pytest.raises(PageError):
            pager.write(page, b"short")

    def test_read_unallocated_page_rejected(self, pager):
        with pytest.raises(PageError):
            pager.read(99)


class TestFreeList:
    def test_freed_page_is_reused(self, pager):
        page = pager.allocate()
        pager.free(page)
        assert pager.allocate() == page

    def test_free_list_is_lifo(self, pager):
        pages = [pager.allocate() for _ in range(3)]
        for page in pages:
            pager.free(page)
        assert pager.allocate() == pages[-1]
        assert pager.allocate() == pages[-2]

    def test_reused_page_is_zeroed(self, pager):
        page = pager.allocate()
        pager.write(page, b"\xff" * 1024)
        pager.free(page)
        reused = pager.allocate()
        assert pager.read(reused) == b"\x00" * 1024

    def test_free_list_length(self, pager):
        pages = [pager.allocate() for _ in range(5)]
        for page in pages[:3]:
            pager.free(page)
        assert pager.free_list_length() == 3

    def test_cannot_free_header_page(self, pager):
        with pytest.raises(PageError):
            pager.free(0)

    def test_free_does_not_shrink_file(self, pager):
        page = pager.allocate()
        count = pager.page_count()
        pager.free(page)
        assert pager.page_count() == count


class TestMeta:
    def test_meta_round_trips(self, pager):
        pager.meta = b"catalog-at-7"
        assert pager.meta == b"catalog-at-7"

    def test_meta_defaults_empty(self, pager):
        assert pager.meta == b""

    def test_meta_too_large_rejected(self, pager):
        with pytest.raises(ValueError):
            pager.meta = b"x" * 2000

    def test_meta_capacity_reported(self, pager):
        pager.meta = b"y" * pager.meta_capacity  # exactly at capacity: ok
        assert len(pager.meta) == pager.meta_capacity


class TestFileBacked:
    def test_reopen_preserves_pages_and_meta(self, tmp_path):
        path = tmp_path / "pages.db"
        with Pager(path, page_size=1024) as pager:
            page = pager.allocate()
            pager.write(page, b"z" * 1024)
            pager.meta = b"hello"
            pager.sync()
        with Pager(path, page_size=1024) as pager:
            assert pager.read(page) == b"z" * 1024
            assert pager.meta == b"hello"

    def test_reopen_preserves_free_list(self, tmp_path):
        path = tmp_path / "pages.db"
        with Pager(path, page_size=1024) as pager:
            pages = [pager.allocate() for _ in range(4)]
            pager.free(pages[1])
            pager.sync()
        with Pager(path, page_size=1024) as pager:
            assert pager.allocate() == pages[1]

    def test_mismatched_page_size_rejected(self, tmp_path):
        from repro.storage import StorageError
        path = tmp_path / "pages.db"
        Pager(path, page_size=1024).close()
        with pytest.raises(StorageError):
            Pager(path, page_size=2048)
        # A compatible multiple still fails the header check.
        with Pager(path, page_size=1024) as grown:
            grown.allocate()
        with pytest.raises(StorageError):
            Pager(path, page_size=2048)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "pages.db"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 1016)
        with pytest.raises(CorruptPageFileError):
            Pager(path, page_size=1024)

    def test_invalid_page_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Pager(tmp_path / "x.db", page_size=1000)

    def test_operations_after_close_rejected(self, tmp_path):
        pager = Pager(tmp_path / "x.db", page_size=1024)
        pager.close()
        with pytest.raises(PagerClosedError):
            pager.allocate()


class TestClosedPager:
    @pytest.fixture
    def closed(self, tmp_path):
        pager = Pager(tmp_path / "closed.db", page_size=1024)
        page = pager.allocate()
        pager.close()
        return pager, page

    def test_every_operation_raises(self, closed):
        pager, page = closed
        with pytest.raises(PagerClosedError):
            pager.read(page)
        with pytest.raises(PagerClosedError):
            pager.write(page, b"\x00" * 1024)
        with pytest.raises(PagerClosedError):
            pager.allocate()
        with pytest.raises(PagerClosedError):
            pager.free(page)
        with pytest.raises(PagerClosedError):
            pager.meta
        with pytest.raises(PagerClosedError):
            pager.meta = b"x"
        with pytest.raises(PagerClosedError):
            pager.page_count()
        with pytest.raises(PagerClosedError):
            pager.sync()
        with pytest.raises(PagerClosedError):
            pager.free_list_length()

    def test_close_is_idempotent(self, closed):
        pager, _ = closed
        pager.close()


class TestFreeValidation:
    def test_double_free_rejected_at_free_time(self, pager):
        page = pager.allocate()
        pager.free(page)
        with pytest.raises(PageError, match="double free"):
            pager.free(page)

    def test_out_of_range_free_rejected(self, pager):
        with pytest.raises(PageError):
            pager.free(pager.page_count() + 5)

    def test_double_free_never_corrupts_the_list(self, pager):
        pages = [pager.allocate() for _ in range(3)]
        for page in pages:
            pager.free(page)
        for page in pages:
            with pytest.raises(PageError):
                pager.free(page)
        # The free list is still a clean 3-element chain, not a cycle.
        assert pager.free_list_length() == 3

    def test_page_is_free_tracks_state(self, pager):
        page = pager.allocate()
        assert not pager.page_is_free(page)
        pager.free(page)
        assert pager.page_is_free(page)
        assert pager.allocate() == page
        assert not pager.page_is_free(page)


class TestDualSlotHeader:
    def test_generation_advances_per_commit(self, tmp_path):
        path = tmp_path / "gen.db"
        with Pager(path, page_size=1024) as pager:
            first = pager.generation
            pager.allocate()
            pager.sync()
            assert pager.generation > first
        with Pager(path, page_size=1024) as pager:
            assert pager.generation >= first + 1

    def test_corrupt_newest_slot_falls_back_to_older(self, tmp_path):
        from repro.storage import FaultInjectingPageDevice, FilePageDevice
        path = tmp_path / "dual.db"
        with Pager(path, page_size=1024) as pager:
            page = pager.allocate()
            pager.write(page, b"A" * 1024)
            pager.meta = b"state-1"
            pager.sync()
        # The clean close committed the newest header; find and smash it.
        probe = Pager(path, page_size=1024)
        newest_slot = probe._slot
        probe.close()
        device = FaultInjectingPageDevice(FilePageDevice(path, 1024))
        device.flip_stored_bit(newest_slot, 20, 0xFF)
        device.close()
        # Reopen: the older slot still holds a committed header for the
        # same data, so nothing is lost.
        with Pager(path, page_size=1024) as pager:
            assert pager.read(page) == b"A" * 1024
            assert pager.meta == b"state-1"

    def test_both_slots_corrupt_is_a_typed_error(self, tmp_path):
        from repro.storage import FaultInjectingPageDevice, FilePageDevice
        path = tmp_path / "dual.db"
        with Pager(path, page_size=1024) as pager:
            pager.allocate()
        device = FaultInjectingPageDevice(FilePageDevice(path, 1024))
        device.flip_stored_bit(0, 20, 0xFF)
        device.flip_stored_bit(1, 20, 0xFF)
        device.close()
        with pytest.raises(CorruptPageFileError):
            Pager(path, page_size=1024)
