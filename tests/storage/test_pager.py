"""Pager: allocation, free list, header metadata, file round-trips."""

import pytest

from repro.storage import (CorruptPageFileError, MEMORY, PageError, Pager,
                           PagerClosedError)


@pytest.fixture
def pager():
    with Pager(MEMORY, page_size=1024) as p:
        yield p


class TestAllocation:
    def test_fresh_pager_has_header_page_only(self, pager):
        assert pager.page_count() == 1

    def test_allocate_returns_distinct_ids(self, pager):
        ids = {pager.allocate() for _ in range(10)}
        assert len(ids) == 10

    def test_allocate_never_returns_header_page(self, pager):
        for _ in range(20):
            assert pager.allocate() != 0

    def test_allocated_page_is_zeroed(self, pager):
        page = pager.allocate()
        assert pager.read(page) == b"\x00" * 1024

    def test_write_then_read_round_trips(self, pager):
        page = pager.allocate()
        data = bytes(range(256)) * 4
        pager.write(page, data)
        assert pager.read(page) == data

    def test_write_wrong_size_rejected(self, pager):
        page = pager.allocate()
        with pytest.raises(PageError):
            pager.write(page, b"short")

    def test_read_unallocated_page_rejected(self, pager):
        with pytest.raises(PageError):
            pager.read(99)


class TestFreeList:
    def test_freed_page_is_reused(self, pager):
        page = pager.allocate()
        pager.free(page)
        assert pager.allocate() == page

    def test_free_list_is_lifo(self, pager):
        pages = [pager.allocate() for _ in range(3)]
        for page in pages:
            pager.free(page)
        assert pager.allocate() == pages[-1]
        assert pager.allocate() == pages[-2]

    def test_reused_page_is_zeroed(self, pager):
        page = pager.allocate()
        pager.write(page, b"\xff" * 1024)
        pager.free(page)
        reused = pager.allocate()
        assert pager.read(reused) == b"\x00" * 1024

    def test_free_list_length(self, pager):
        pages = [pager.allocate() for _ in range(5)]
        for page in pages[:3]:
            pager.free(page)
        assert pager.free_list_length() == 3

    def test_cannot_free_header_page(self, pager):
        with pytest.raises(PageError):
            pager.free(0)

    def test_free_does_not_shrink_file(self, pager):
        page = pager.allocate()
        count = pager.page_count()
        pager.free(page)
        assert pager.page_count() == count


class TestMeta:
    def test_meta_round_trips(self, pager):
        pager.meta = b"catalog-at-7"
        assert pager.meta == b"catalog-at-7"

    def test_meta_defaults_empty(self, pager):
        assert pager.meta == b""

    def test_meta_too_large_rejected(self, pager):
        with pytest.raises(ValueError):
            pager.meta = b"x" * 2000

    def test_meta_capacity_reported(self, pager):
        pager.meta = b"y" * pager.meta_capacity  # exactly at capacity: ok
        assert len(pager.meta) == pager.meta_capacity


class TestFileBacked:
    def test_reopen_preserves_pages_and_meta(self, tmp_path):
        path = tmp_path / "pages.db"
        with Pager(path, page_size=1024) as pager:
            page = pager.allocate()
            pager.write(page, b"z" * 1024)
            pager.meta = b"hello"
            pager.sync()
        with Pager(path, page_size=1024) as pager:
            assert pager.read(page) == b"z" * 1024
            assert pager.meta == b"hello"

    def test_reopen_preserves_free_list(self, tmp_path):
        path = tmp_path / "pages.db"
        with Pager(path, page_size=1024) as pager:
            pages = [pager.allocate() for _ in range(4)]
            pager.free(pages[1])
            pager.sync()
        with Pager(path, page_size=1024) as pager:
            assert pager.allocate() == pages[1]

    def test_mismatched_page_size_rejected(self, tmp_path):
        from repro.storage import StorageError
        path = tmp_path / "pages.db"
        Pager(path, page_size=1024).close()
        with pytest.raises(StorageError):
            Pager(path, page_size=2048)
        # A compatible multiple still fails the header check.
        Pager(path, page_size=1024).allocate()
        with pytest.raises(StorageError):
            Pager(path, page_size=2048)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "pages.db"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 1016)
        with pytest.raises(CorruptPageFileError):
            Pager(path, page_size=1024)

    def test_invalid_page_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Pager(tmp_path / "x.db", page_size=1000)

    def test_operations_after_close_rejected(self, tmp_path):
        pager = Pager(tmp_path / "x.db", page_size=1024)
        pager.close()
        with pytest.raises(PagerClosedError):
            pager.allocate()
