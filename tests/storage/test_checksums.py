"""Page checksums: v2 trailers, v1 compatibility, scrub reporting."""

import struct

import pytest

from repro.storage import (ChecksumError, CorruptPageFileError,
                           FilePageDevice, Pager, StorageError,
                           TornWriteError, probe_page_file, scrub_page_file)
from repro.storage.page import PAGE_TRAILER, SUPERBLOCK_SIZE

PAGE_SIZE = 1024
SLOT_SIZE = PAGE_SIZE + PAGE_TRAILER.size


def _slot_offset(page_id: int, byte: int = 0) -> int:
    return SUPERBLOCK_SIZE + page_id * SLOT_SIZE + byte


def _flip_byte(path, offset: int, mask: int = 0x01) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ mask]))


def _make_v1_file(path, pages: list[bytes], meta: bytes = b"",
                  free_head: int = 0) -> None:
    """Hand-craft a legacy format-1 page file (no superblock, no trailers)."""
    header = struct.pack("<8sIQ", b"SWSTPGR1", PAGE_SIZE, free_head)
    blob = (header + meta).ljust(PAGE_SIZE, b"\x00")
    for page in pages:
        blob += page.ljust(PAGE_SIZE, b"\x00")
    path.write_bytes(blob)


class TestV2RoundTrip:
    def test_data_survives_reopen(self, tmp_path):
        path = tmp_path / "v2.db"
        with Pager(path, page_size=PAGE_SIZE) as pager:
            assert pager.format_version == 2
            pid = pager.allocate()
            pager.write(pid, b"\xa5" * PAGE_SIZE)
        with Pager(path, page_size=PAGE_SIZE) as pager:
            assert pager.read(pid) == b"\xa5" * PAGE_SIZE

    def test_new_files_are_v2_with_checksums(self, tmp_path):
        device = FilePageDevice(tmp_path / "new.db", PAGE_SIZE)
        try:
            assert device.format_version == 2
            assert device.checksums
        finally:
            device.close()

    def test_probe_reports_v2(self, tmp_path):
        path = tmp_path / "v2.db"
        Pager(path, page_size=PAGE_SIZE).close()
        assert probe_page_file(path) == (2, PAGE_SIZE)


class TestV1Compatibility:
    def test_v1_file_opens_and_reads(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_file(path, [b"\x11" * PAGE_SIZE], meta=b"legacy")
        with Pager(path, page_size=PAGE_SIZE) as pager:
            assert pager.format_version == 1
            assert pager.first_data_page == 1
            assert pager.meta == b"legacy"
            assert pager.read(1) == b"\x11" * PAGE_SIZE

    def test_v1_file_stays_writable(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_file(path, [b"\x11" * PAGE_SIZE])
        with Pager(path, page_size=PAGE_SIZE) as pager:
            pid = pager.allocate()
            pager.write(pid, b"\x22" * PAGE_SIZE)
        with Pager(path, page_size=PAGE_SIZE) as pager:
            assert pager.format_version == 1
            assert pager.read(pid) == b"\x22" * PAGE_SIZE

    def test_v1_device_has_no_checksums(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_file(path, [])
        device = FilePageDevice(path, PAGE_SIZE)
        try:
            assert device.format_version == 1
            assert not device.checksums
            assert device.check_page(0) == 0
        finally:
            device.close()

    def test_probe_reports_v1(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_file(path, [])
        assert probe_page_file(path) == (1, PAGE_SIZE)

    def test_probe_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"NOTAPAGEFILE" + b"\x00" * 100)
        with pytest.raises(CorruptPageFileError):
            probe_page_file(path)


class TestCorruptionDetection:
    def _fresh_file(self, tmp_path):
        path = tmp_path / "v2.db"
        with Pager(path, page_size=PAGE_SIZE) as pager:
            pid = pager.allocate()
            pager.write(pid, bytes(range(256)) * (PAGE_SIZE // 256))
        return path, pid

    def test_flipped_data_bit_raises_checksum_error_naming_page(
            self, tmp_path):
        path, pid = self._fresh_file(tmp_path)
        _flip_byte(path, _slot_offset(pid, 100), 0x20)
        with Pager(path, page_size=PAGE_SIZE) as pager:
            with pytest.raises(ChecksumError) as excinfo:
                pager.read(pid)
        assert f"page {pid}" in str(excinfo.value)

    def test_flipped_trailer_crc_raises_checksum_error(self, tmp_path):
        path, pid = self._fresh_file(tmp_path)
        _flip_byte(path, _slot_offset(pid, PAGE_SIZE), 0x01)
        with Pager(path, page_size=PAGE_SIZE) as pager:
            with pytest.raises(ChecksumError):
                pager.read(pid)

    def test_smashed_trailer_tag_raises_torn_write_error(self, tmp_path):
        path, pid = self._fresh_file(tmp_path)
        # The format tag sits after the CRC word in the trailer.
        _flip_byte(path, _slot_offset(pid, PAGE_SIZE + 4), 0xFF)
        with Pager(path, page_size=PAGE_SIZE) as pager:
            with pytest.raises(TornWriteError):
                pager.read(pid)

    def test_corrupt_superblock_rejected(self, tmp_path):
        path, _ = self._fresh_file(tmp_path)
        _flip_byte(path, 9, 0x04)  # inside the superblock's page_size field
        with pytest.raises(StorageError):
            FilePageDevice(path, PAGE_SIZE)


class TestScrub:
    def test_clean_file_scrubs_clean(self, tmp_path):
        path = tmp_path / "v2.db"
        with Pager(path, page_size=PAGE_SIZE) as pager:
            for _ in range(4):
                pager.write(pager.allocate(), b"\x37" * PAGE_SIZE)
        report = scrub_page_file(path)
        assert report.ok
        assert report.corrupt == []
        assert report.format_version == 2
        assert report.committed is not None and report.committed.clean

    def test_scrub_names_the_corrupt_page(self, tmp_path):
        path = tmp_path / "v2.db"
        with Pager(path, page_size=PAGE_SIZE) as pager:
            pids = [pager.allocate() for _ in range(4)]
            for pid in pids:
                pager.write(pid, b"\x37" * PAGE_SIZE)
        victim = pids[2]
        _flip_byte(path, _slot_offset(victim, 11), 0x80)
        report = scrub_page_file(path)
        assert not report.ok
        assert [pid for pid, _ in report.corrupt] == [victim]


    def test_scrub_flags_uncommitted_overwrite_of_committed_page(
            self, tmp_path):
        # A committed page stamped with a newer generation than the
        # committed header is a crashed session's in-place overwrite;
        # recovery-on-open refuses such a file and scrub must agree.
        path = tmp_path / "v2.db"
        with Pager(path, page_size=PAGE_SIZE) as pager:
            pids = [pager.allocate() for _ in range(4)]
            for pid in pids:
                pager.write(pid, b"\x42" * PAGE_SIZE)
        committed = scrub_page_file(path).committed.generation
        device = FilePageDevice(path, PAGE_SIZE)
        try:
            device.set_write_generation(committed + 1)
            device.write(pids[1], b"\x99" * PAGE_SIZE)
        finally:
            device.close()
        report = scrub_page_file(path)
        assert not report.ok
        assert [pid for pid, _ in report.corrupt] == [pids[1]]
        assert "overwrites the committed snapshot" in report.corrupt[0][1]

    def test_scrub_v1_file(self, tmp_path):
        path = tmp_path / "v1.db"
        _make_v1_file(path, [b"\x11" * PAGE_SIZE])
        report = scrub_page_file(path)
        assert report.ok
        assert report.format_version == 1
