"""Decoded-node object cache: hits, deferred serialisation, coherence."""

import pytest

from repro.storage import MEMORY, BufferPool, Pager

PAGE = 512


def decode(data: bytes) -> bytearray:
    return bytearray(data)


def encode(node: bytearray) -> bytes:
    return bytes(node)


@pytest.fixture
def pool():
    with BufferPool(Pager(MEMORY, page_size=PAGE), capacity=4) as p:
        yield p


def _node_page(pool, fill=b"a"):
    page = pool.allocate()
    pool.write_node(page, bytearray(fill * PAGE), encode)
    return page


class TestNodeCacheHits:
    def test_second_fetch_is_a_hit_returning_the_same_object(self, pool):
        page = _node_page(pool)
        first = pool.fetch_node(page, decode)
        parses = pool.stats.node_parses
        second = pool.fetch_node(page, decode)
        assert second is first
        assert pool.stats.node_parses == parses
        assert pool.stats.node_cache_hits >= 1

    def test_every_fetch_node_counts_logically(self, pool):
        page = _node_page(pool)
        before = pool.stats.logical_reads
        for _ in range(5):
            pool.fetch_node(page, decode)
        assert pool.stats.logical_reads == before + 5

    def test_every_write_node_counts_logically(self, pool):
        page = pool.allocate()
        before = pool.stats.logical_writes
        for _ in range(3):
            pool.write_node(page, bytearray(b"b" * PAGE), encode)
        assert pool.stats.logical_writes == before + 3

    def test_logical_counters_match_raw_path(self):
        """The node path and the raw path account identically."""
        raw = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=4)
        via_nodes = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=4)
        p1 = raw.allocate()
        p2 = via_nodes.allocate()
        for _ in range(4):
            raw.write(p1, b"x" * PAGE)
            via_nodes.write_node(p2, bytearray(b"x" * PAGE), encode)
        for _ in range(7):
            raw.fetch(p1)
            via_nodes.fetch_node(p2, decode)
        assert (raw.stats.logical_reads, raw.stats.logical_writes) == \
            (via_nodes.stats.logical_reads, via_nodes.stats.logical_writes)
        raw.close()
        via_nodes.close()


class TestDeferredSerialisation:
    def test_write_node_does_not_serialise_until_flush(self, pool):
        page = pool.allocate()
        pool.write_node(page, bytearray(b"d" * PAGE), encode)
        assert pool.stats.node_serializations == 0
        pool.flush()
        assert pool.stats.node_serializations == 1
        assert pool.pager.read(page) == b"d" * PAGE

    def test_repeated_writes_serialise_once(self, pool):
        page = pool.allocate()
        for byte in (b"1", b"2", b"3"):
            pool.write_node(page, bytearray(byte * PAGE), encode)
        pool.flush()
        assert pool.stats.node_serializations == 1
        assert pool.pager.read(page) == b"3" * PAGE

    def test_eviction_writes_dirty_node_back(self):
        pool = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=8,
                          node_capacity=2)
        pages = [pool.allocate() for _ in range(4)]
        for i, page in enumerate(pages):
            pool.write_node(page, bytearray(bytes([i + 1]) * PAGE), encode)
        # Two oldest nodes were evicted and must be durable.
        assert pool.pager.read(pages[0]) == bytes([1]) * PAGE
        assert pool.pager.read(pages[1]) == bytes([2]) * PAGE
        pool.close()

    def test_close_flushes_dirty_nodes(self, tmp_path):
        pager = Pager(tmp_path / "n.db", page_size=PAGE)
        pool = BufferPool(pager, capacity=8)
        page = pool.allocate()
        pool.write_node(page, bytearray(b"z" * PAGE), encode)
        pool.close()
        assert pager.read(page) == b"z" * PAGE
        pager.close()


class TestCoherence:
    def test_raw_fetch_demotes_dirty_node(self, pool):
        page = pool.allocate()
        pool.write_node(page, bytearray(b"n" * PAGE), encode)
        # A byte-level reader must see the node's serialised form.
        assert pool.fetch(page) == b"n" * PAGE
        assert pool.stats.node_serializations == 1
        # The node survives demotion (still a cache hit afterwards).
        hits = pool.stats.node_cache_hits
        pool.fetch_node(page, decode)
        assert pool.stats.node_cache_hits == hits + 1

    def test_raw_write_supersedes_cached_node(self, pool):
        page = pool.allocate()
        pool.write_node(page, bytearray(b"o" * PAGE), encode)
        pool.write(page, b"r" * PAGE)
        assert bytes(pool.fetch_node(page, decode)) == b"r" * PAGE

    def test_write_node_supersedes_raw_bytes(self, pool):
        page = pool.allocate()
        pool.write(page, b"r" * PAGE)
        pool.write_node(page, bytearray(b"n" * PAGE), encode)
        assert pool.fetch(page) == b"n" * PAGE
        pool.flush()
        assert pool.pager.read(page) == b"n" * PAGE

    def test_free_invalidates_cached_node(self, pool):
        page = _node_page(pool, fill=b"f")
        pool.fetch_node(page, decode)
        pool.free(page)
        reused = pool.allocate()
        assert reused == page  # free-list reuse
        pool.write(reused, b"g" * PAGE)
        assert bytes(pool.fetch_node(reused, decode)) == b"g" * PAGE

    def test_drop_cache_flushes_then_reparses(self, pool):
        page = pool.allocate()
        pool.write_node(page, bytearray(b"k" * PAGE), encode)
        pool.drop_cache()
        assert pool.pager.read(page) == b"k" * PAGE
        parses = pool.stats.node_parses
        assert bytes(pool.fetch_node(page, decode)) == b"k" * PAGE
        assert pool.stats.node_parses == parses + 1


class TestDisabledCache:
    def test_zero_capacity_parses_every_fetch(self):
        pool = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=4,
                          node_capacity=0)
        page = pool.allocate()
        pool.write_node(page, bytearray(b"e" * PAGE), encode)
        assert pool.stats.node_serializations == 1  # eager
        for _ in range(3):
            pool.fetch_node(page, decode)
        assert pool.stats.node_parses == 3
        assert pool.stats.node_cache_hits == 0
        pool.close()

    def test_none_capacity_mirrors_pool_capacity(self):
        pool = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=7)
        assert pool.node_capacity == 7
        pool.close()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(Pager(MEMORY, page_size=PAGE), capacity=4,
                       node_capacity=-1)
