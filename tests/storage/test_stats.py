"""IOStats: snapshots, diffs, the recorder context manager."""

from repro.storage import IOStats, MEMORY, BufferPool, Pager, StatsRecorder


class TestCounters:
    def test_node_accesses_sums_reads_and_writes(self):
        stats = IOStats(logical_reads=3, logical_writes=4)
        assert stats.node_accesses == 7

    def test_reset_zeroes_everything(self):
        stats = IOStats(logical_reads=3, physical_writes=9, frees=2)
        stats.reset()
        assert stats == IOStats()

    def test_snapshot_is_independent(self):
        stats = IOStats(logical_reads=1)
        snap = stats.snapshot()
        stats.logical_reads = 100
        assert snap.logical_reads == 1

    def test_diff_subtracts_fieldwise(self):
        earlier = IOStats(logical_reads=2, allocations=1)
        later = IOStats(logical_reads=10, allocations=4, frees=3)
        delta = later.diff(earlier)
        assert delta.logical_reads == 8
        assert delta.allocations == 3
        assert delta.frees == 3


class TestRecorder:
    def test_recorder_measures_a_region(self):
        pool = BufferPool(Pager(MEMORY, page_size=512), capacity=4)
        page = pool.allocate()
        pool.write(page, b"x" * 512)
        recorder = StatsRecorder(pool.stats)
        with recorder:
            pool.fetch(page)
            pool.fetch(page)
        assert recorder.delta.logical_reads == 2
        assert recorder.delta.logical_writes == 0

    def test_recorder_is_reusable(self):
        stats = IOStats()
        recorder = StatsRecorder(stats)
        with recorder:
            stats.logical_reads += 1
        assert recorder.delta.logical_reads == 1
        with recorder:
            stats.logical_reads += 5
        assert recorder.delta.logical_reads == 5
