"""Model-based property test: the buffer pool is transparent.

Whatever sequence of writes, reads, flushes and cache drops happens, a
fetch must always return the most recently written contents — the cache
may only change *physical* IO, never observable state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import MEMORY, BufferPool, Pager

PAGE = 256

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 9), st.integers(0, 255)),
        st.tuples(st.just("read"), st.integers(0, 9), st.just(0)),
        st.tuples(st.just("flush"), st.just(0), st.just(0)),
        st.tuples(st.just("drop_cache"), st.just(0), st.just(0)),
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(capacity=st.integers(1, 6), ops=operations)
def test_pool_is_transparent(capacity, ops):
    pool = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=capacity)
    pages = [pool.allocate() for _ in range(10)]
    model = {page: b"\x00" * PAGE for page in pages}
    for op, idx, fill in ops:
        page = pages[idx]
        if op == "write":
            data = bytes([fill]) * PAGE
            pool.write(page, data)
            model[page] = data
        elif op == "read":
            assert pool.fetch(page) == model[page]
        elif op == "flush":
            pool.flush()
        else:
            pool.drop_cache()
    for page in pages:
        assert pool.fetch(page) == model[page]
    # After a final flush the pager itself holds the truth.
    pool.flush()
    for page in pages:
        assert pool.pager.read(page) == model[page]


@settings(max_examples=30, deadline=None)
@given(capacity=st.integers(1, 4),
       writes=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 255)),
                       min_size=1, max_size=60))
def test_eviction_never_loses_dirty_data(capacity, writes):
    pool = BufferPool(Pager(MEMORY, page_size=PAGE), capacity=capacity)
    pages = [pool.allocate() for _ in range(8)]
    latest: dict[int, bytes] = {}
    for idx, fill in writes:
        data = bytes([fill]) * PAGE
        pool.write(pages[idx], data)
        latest[pages[idx]] = data
    pool.drop_cache()
    for page, data in latest.items():
        assert pool.fetch(page) == data
