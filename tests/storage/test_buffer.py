"""Buffer pool: caching, eviction, write-back, IO accounting."""

import pytest

from repro.storage import MEMORY, BufferPool, Pager, PagerClosedError


@pytest.fixture
def pool():
    with BufferPool(Pager(MEMORY, page_size=512), capacity=4) as p:
        yield p


def _fill(pool, n):
    pages = []
    for i in range(n):
        page = pool.allocate()
        pool.write(page, bytes([i % 256]) * 512)
        pages.append(page)
    return pages


class TestCaching:
    def test_fetch_returns_written_data(self, pool):
        page = pool.allocate()
        pool.write(page, b"a" * 512)
        assert pool.fetch(page) == b"a" * 512

    def test_cached_fetch_skips_physical_read(self, pool):
        page = pool.allocate()
        pool.write(page, b"a" * 512)
        pool.fetch(page)
        reads = pool.stats.physical_reads
        pool.fetch(page)
        assert pool.stats.physical_reads == reads

    def test_every_fetch_counts_logically(self, pool):
        page = pool.allocate()
        pool.write(page, b"a" * 512)
        before = pool.stats.logical_reads
        for _ in range(5):
            pool.fetch(page)
        assert pool.stats.logical_reads == before + 5

    def test_every_write_counts_logically(self, pool):
        page = pool.allocate()
        before = pool.stats.logical_writes
        for _ in range(3):
            pool.write(page, b"b" * 512)
        assert pool.stats.logical_writes == before + 3

    def test_wrong_size_write_rejected(self, pool):
        page = pool.allocate()
        with pytest.raises(ValueError):
            pool.write(page, b"tiny")


class TestEviction:
    def test_capacity_is_enforced(self, pool):
        _fill(pool, 10)
        assert len(pool._cache) <= 4

    def test_evicted_dirty_page_written_back(self, pool):
        pages = _fill(pool, 10)  # early pages evicted
        assert pool.fetch(pages[0]) == bytes([0]) * 512

    def test_eviction_is_lru(self, pool):
        pages = _fill(pool, 4)
        pool.fetch(pages[0])  # refresh page 0
        extra = pool.allocate()
        pool.write(extra, b"x" * 512)  # evicts pages[1], not pages[0]
        assert pages[0] in pool._cache
        assert pages[1] not in pool._cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(Pager(MEMORY, page_size=512), capacity=0)


class TestFlush:
    def test_flush_persists_dirty_pages(self, tmp_path):
        path = tmp_path / "f.db"
        pager = Pager(path, page_size=512)
        pool = BufferPool(pager, capacity=8)
        page = pool.allocate()
        pool.write(page, b"q" * 512)
        pool.flush()
        pager.sync()
        pool.close()
        pager.close()
        with Pager(path, page_size=512) as reopened:
            assert reopened.read(page) == b"q" * 512

    def test_drop_cache_then_fetch_reads_physically(self, pool):
        page = pool.allocate()
        pool.write(page, b"k" * 512)
        pool.drop_cache()
        reads = pool.stats.physical_reads
        assert pool.fetch(page) == b"k" * 512
        assert pool.stats.physical_reads == reads + 1

    def test_close_flushes(self, tmp_path):
        path = tmp_path / "f.db"
        pager = Pager(path, page_size=512)
        pool = BufferPool(pager, capacity=8)
        page = pool.allocate()
        pool.write(page, b"c" * 512)
        pool.close()
        assert pager.read(page) == b"c" * 512
        pager.close()

    def test_operations_after_close_rejected(self, pool):
        pool.close()
        with pytest.raises(PagerClosedError):
            pool.fetch(1)


class TestFree:
    def test_free_removes_from_cache(self, pool):
        page = pool.allocate()
        pool.write(page, b"d" * 512)
        pool.free(page)
        assert page not in pool._cache

    def test_free_counts(self, pool):
        page = pool.allocate()
        pool.free(page)
        assert pool.stats.frees == 1
        assert pool.stats.allocations == 1
