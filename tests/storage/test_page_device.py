"""Page devices: the raw fixed-size page stores under the pager."""

import pytest

from repro.storage import FilePageDevice, MemoryPageDevice, PageError
from repro.storage.errors import PagerClosedError


@pytest.fixture(params=["memory", "file"])
def device(request, tmp_path):
    dev = (MemoryPageDevice(page_size=512)
           if request.param == "memory"
           else FilePageDevice(tmp_path / "pages.bin", page_size=512))
    yield dev
    dev.close()


class TestDevice:
    def test_starts_empty(self, device):
        assert device.page_count() == 0

    def test_extend_returns_sequential_ids(self, device):
        assert [device.extend() for _ in range(3)] == [0, 1, 2]

    def test_extended_page_is_zeroed(self, device):
        page = device.extend()
        assert device.read(page) == b"\x00" * 512

    def test_write_read_round_trip(self, device):
        page = device.extend()
        device.write(page, b"\xab" * 512)
        assert device.read(page) == b"\xab" * 512

    def test_out_of_range_read_rejected(self, device):
        with pytest.raises(PageError):
            device.read(0)
        device.extend()
        with pytest.raises(PageError):
            device.read(1)

    def test_wrong_size_write_rejected(self, device):
        page = device.extend()
        with pytest.raises(PageError):
            device.write(page, b"x" * 511)

    def test_closed_device_rejects_io(self, device):
        page = device.extend()
        device.close()
        with pytest.raises(PagerClosedError):
            device.read(page)


class TestFileSpecific:
    def test_data_survives_reopen(self, tmp_path):
        path = tmp_path / "pages.bin"
        dev = FilePageDevice(path, page_size=512)
        page = dev.extend()
        dev.write(page, b"persist!".ljust(512, b"\x00"))
        dev.sync()
        dev.close()
        reopened = FilePageDevice(path, page_size=512)
        assert reopened.read(page).startswith(b"persist!")
        reopened.close()

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        path.write_bytes(b"x" * 700)  # not a multiple of 512
        with pytest.raises(PageError):
            FilePageDevice(path, page_size=512)

    def test_page_size_must_be_sector_aligned(self, tmp_path):
        with pytest.raises(ValueError):
            FilePageDevice(tmp_path / "x.bin", page_size=1000)

    def test_memory_device_accepts_any_positive_size(self):
        dev = MemoryPageDevice(page_size=100)
        page = dev.extend()
        dev.write(page, b"y" * 100)
        assert dev.read(page) == b"y" * 100
