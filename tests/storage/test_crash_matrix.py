"""Crash matrix: inject a fault at every write ordinal, reopen, verify.

The invariant under test (the tentpole of the crash-safety layer): after a
crash at *any* write, reopening the index either

* succeeds, and the index state is byte-exact one of the committed
  (``save()``-ed) states — queries return exactly that snapshot's results;
* or raises a typed :class:`StorageError` subclass.

Never a silent wrong answer.
"""

import dataclasses
import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.storage import (FaultInjectingPageDevice, FilePageDevice,
                           StorageError)

EVERYWHERE = Rect(0, 0, 199, 199)

CFG = SWSTConfig(window=400, slide=100, x_partitions=2, y_partitions=2,
                 d_max=100, duration_interval=50, space=EVERYWHERE,
                 page_size=1024, buffer_capacity=8)


def _workload(cfg: SWSTConfig, path: str,
              snapshots: dict | None = None) -> None:
    """Deterministic ingest with three ``save()`` commit points."""
    rng = random.Random(7)
    index = SWSTIndex(cfg, path=path)
    try:
        t = 0
        for _ in range(3):
            for _ in range(12):
                t += rng.randrange(0, 3)
                d = rng.choice([None, rng.randrange(1, 100)])
                index.insert(oid=rng.randrange(8), x=rng.randrange(200),
                             y=rng.randrange(200), s=t, d=d)
            index.save()
            if snapshots is not None:
                snapshots[index.now] = _snapshot(index)
    finally:
        index.close()


def _snapshot(index: SWSTIndex) -> list:
    lo, hi = index.config.queriable_period(index.now)
    result = index.query_interval(EVERYWHERE, lo, hi)
    return sorted((e.oid, e.x, e.y, e.s, e.d) for e in result)


@pytest.fixture(scope="module")
def committed_snapshots(tmp_path_factory):
    """Query results at each commit point of a fault-free run."""
    path = tmp_path_factory.mktemp("reference") / "ref.db"
    snapshots: dict[int, list] = {}
    _workload(CFG, str(path), snapshots)
    return snapshots


def _total_writes(tmp_path: Path) -> int:
    devices = []

    def factory(path, page_size):
        device = FaultInjectingPageDevice(FilePageDevice(path, page_size))
        devices.append(device)
        return device

    cfg = dataclasses.replace(CFG, device_factory=factory)
    _workload(cfg, str(tmp_path / "count.db"))
    return devices[0].writes_seen


def _crash_and_check(path: Path, fail_write: int, tear_bytes: int,
                     snapshots: dict) -> str:
    """Run the workload crashing at ``fail_write``; reopen and verify."""

    def factory(file_path, page_size):
        return FaultInjectingPageDevice(
            FilePageDevice(file_path, page_size),
            fail_write=fail_write, tear_bytes=tear_bytes)

    cfg = dataclasses.replace(CFG, device_factory=factory)
    crashed = False
    try:
        _workload(cfg, str(path))
    except OSError:
        crashed = True
    if not crashed:
        # The ordinal was beyond the workload's writes; nothing to verify.
        return "completed"
    try:
        index = SWSTIndex.open(str(path), CFG)
    except StorageError:
        return "typed-error"
    try:
        assert index.now in snapshots, \
            f"reopened at clock {index.now}, which is not a commit point"
        assert _snapshot(index) == snapshots[index.now], \
            "reopened state diverges from its committed snapshot"
    finally:
        index.close()
    return "clean"


class TestExhaustiveMatrix:
    @pytest.mark.parametrize("tear_bytes", [0, 700])
    def test_every_write_ordinal(self, tmp_path, tear_bytes,
                                 committed_snapshots):
        total = _total_writes(tmp_path)
        assert total > 0
        outcomes = {"clean": 0, "typed-error": 0}
        for k in range(1, total + 1):
            outcome = _crash_and_check(tmp_path / f"crash_{k}.db", k,
                                       tear_bytes, committed_snapshots)
            assert outcome in outcomes, outcome
            outcomes[outcome] += 1
        # Both arms of the invariant must actually be exercised.
        assert outcomes["clean"] > 0
        assert outcomes["typed-error"] > 0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(fail_write=st.integers(min_value=1, max_value=40),
           tear_bytes=st.integers(min_value=0, max_value=1040))
    def test_random_fault_point(self, fail_write, tear_bytes,
                                committed_snapshots):
        with tempfile.TemporaryDirectory() as tmp:
            outcome = _crash_and_check(Path(tmp) / "crash.db", fail_write,
                                       tear_bytes, committed_snapshots)
        assert outcome in ("clean", "typed-error", "completed")
