"""FaultInjectingPageDevice: crash-at-write-k, tearing, error schedules."""

import pathlib

import pytest

from repro.storage import (ChecksumError, CorruptPageFileError,
                           FaultInjectingFileOps, FaultInjectingPageDevice,
                           FilePageDevice, InjectedFault, Pager,
                           StorageError, crash_devices)

PAGE_SIZE = 1024


def _device(tmp_path, name="f.db", **kwargs):
    return FaultInjectingPageDevice(
        FilePageDevice(tmp_path / name, PAGE_SIZE), **kwargs)


class TestCrashAtWriteK:
    def test_nth_write_raises_and_device_stays_crashed(self, tmp_path):
        device = _device(tmp_path, fail_write=3)
        try:
            device.extend()
            device.extend()
            with pytest.raises(InjectedFault):
                device.extend()
            assert device.crashed
            with pytest.raises(InjectedFault):
                device.write(0, b"\x00" * PAGE_SIZE)
            with pytest.raises(InjectedFault):
                device.sync()
        finally:
            device.close()

    def test_crash_without_tear_loses_the_write(self, tmp_path):
        device = _device(tmp_path, fail_write=3)
        try:
            pid = device.extend()
            device.extend()
            with pytest.raises(InjectedFault):
                device.write(pid, b"\xee" * PAGE_SIZE)
        finally:
            device.close()
        clean = FilePageDevice(tmp_path / "f.db", PAGE_SIZE)
        try:
            assert clean.read(pid) == b"\x00" * PAGE_SIZE
        finally:
            clean.close()

    def test_torn_write_detected_on_reread(self, tmp_path):
        device = _device(tmp_path, fail_write=2, tear_bytes=100)
        try:
            pid = device.extend()
            with pytest.raises(InjectedFault):
                device.write(pid, b"\xee" * PAGE_SIZE)
        finally:
            device.close()
        clean = FilePageDevice(tmp_path / "f.db", PAGE_SIZE)
        try:
            with pytest.raises(CorruptPageFileError):
                clean.read(pid)
        finally:
            clean.close()

    def test_writes_seen_counts_without_faults(self, tmp_path):
        device = _device(tmp_path)
        try:
            device.extend()
            device.extend()
            device.write(0, b"\x00" * PAGE_SIZE)
            assert device.writes_seen == 3
            assert not device.crashed
        finally:
            device.close()


class TestSchedules:
    def test_write_error_schedule_is_transient(self, tmp_path):
        boom = OSError("scripted EIO")
        device = _device(tmp_path, write_errors={2: boom})
        try:
            device.extend()
            with pytest.raises(OSError, match="scripted EIO"):
                device.extend()
            # The device is not crashed: later writes succeed.
            pid = device.extend()
            device.write(pid, b"\x55" * PAGE_SIZE)
            assert device.read(pid) == b"\x55" * PAGE_SIZE
        finally:
            device.close()

    def test_read_error_schedule(self, tmp_path):
        device = _device(tmp_path, read_errors={2: OSError("scripted read")})
        try:
            pid = device.extend()
            device.read(pid)
            with pytest.raises(OSError, match="scripted read"):
                device.read(pid)
            assert device.read(pid) == b"\x00" * PAGE_SIZE
        finally:
            device.close()


class TestBitFlips:
    def test_flip_stored_bit_breaks_the_checksum(self, tmp_path):
        device = _device(tmp_path)
        try:
            pid = device.extend()
            device.write(pid, b"\x42" * PAGE_SIZE)
            device.flip_stored_bit(pid, 7, 0x10)
            with pytest.raises(ChecksumError):
                device.read(pid)
        finally:
            device.close()


class TestUnderThePager:
    def test_pager_runs_on_a_faultless_wrapper(self, tmp_path):
        device = _device(tmp_path)
        with Pager(device=device, page_size=PAGE_SIZE) as pager:
            pid = pager.allocate()
            pager.write(pid, b"\x24" * PAGE_SIZE)
            pager.sync()
            assert pager.read(pid) == b"\x24" * PAGE_SIZE
        # Reopen with a plain device: everything committed and intact.
        with Pager(tmp_path / "f.db", page_size=PAGE_SIZE) as pager:
            assert pager.read(pid) == b"\x24" * PAGE_SIZE

    def test_pager_init_crash_releases_the_file(self, tmp_path):
        device = _device(tmp_path, fail_write=1)
        with pytest.raises(InjectedFault):
            Pager(device=device, page_size=PAGE_SIZE)
        # The pager closed the device on failure; closing again is a no-op
        # at the wrapper level but must not warn about leaked handles.
        device.close()

    def test_uncommitted_overwrite_detected_on_reopen(self, tmp_path):
        device = FilePageDevice(tmp_path / "f.db", PAGE_SIZE)
        pager = Pager(device=device, page_size=PAGE_SIZE)
        pid = pager.allocate()
        pager.write(pid, b"\x10" * PAGE_SIZE)
        pager.sync()
        # Overwrite after the commit, then "lose power" before the next
        # commit: close the raw device under the pager.
        pager.write(pid, b"\x20" * PAGE_SIZE)
        device.sync()
        device.close()
        with pytest.raises(CorruptPageFileError, match="uncommitted"):
            Pager(tmp_path / "f.db", page_size=PAGE_SIZE)

    def test_uncommitted_extend_is_truncated_on_reopen(self, tmp_path):
        device = FilePageDevice(tmp_path / "f.db", PAGE_SIZE)
        pager = Pager(device=device, page_size=PAGE_SIZE)
        pid = pager.allocate()
        pager.write(pid, b"\x10" * PAGE_SIZE)
        pager.sync()
        committed_pages = device.page_count()
        # Allocate (extend) after the commit, then crash.
        pager.allocate()
        device.sync()
        device.close()
        with Pager(tmp_path / "f.db", page_size=PAGE_SIZE) as pager:
            assert pager.page_count() == committed_pages
            assert pager.read(pid) == b"\x10" * PAGE_SIZE


class TestFileOpsSchedules:
    """FaultInjectingFileOps: the small-file (WAL/manifest) counterpart."""

    def test_op_error_is_transient(self, tmp_path):
        ops = FaultInjectingFileOps(op_errors={2: OSError("disk says no")})
        target = str(tmp_path / "a.bin")
        ops.write_file(target, b"one")
        with pytest.raises(OSError, match="disk says no"):
            ops.write_file(target, b"two")
        # Transient: the schedule entry is consumed, later ops succeed.
        ops.write_file(target, b"three")
        assert pathlib.Path(target).read_bytes() == b"three"
        assert [name for name, _ in ops.ops] == ["write_file"] * 3

    def test_fail_op_kills_the_ops_object(self, tmp_path):
        ops = FaultInjectingFileOps(fail_op=2)
        target = str(tmp_path / "a.bin")
        ops.write_file(target, b"one")
        with pytest.raises(InjectedFault):
            ops.append_file(target, b"two")
        assert ops.crashed
        # Dead is dead: every further operation fails too.
        with pytest.raises(InjectedFault):
            ops.fsync_file(target)
        assert pathlib.Path(target).read_bytes() == b"one"

    def test_short_write_tears_the_payload_and_crashes(self, tmp_path):
        ops = FaultInjectingFileOps(short_writes={2: 3})
        target = str(tmp_path / "a.bin")
        ops.write_file(target, b"base-")
        with pytest.raises(InjectedFault, match="short append"):
            ops.append_file(target, b"0123456789")
        assert ops.crashed
        # Exactly the scheduled prefix reached the disk.
        assert pathlib.Path(target).read_bytes() == b"base-012"

    def test_fsync_ordinal_counts_only_fsyncs(self, tmp_path):
        ops = FaultInjectingFileOps(
            fsync_errors={2: OSError("barrier lost")})
        target = str(tmp_path / "a.bin")
        ops.write_file(target, b"x")        # op 1: not an fsync
        ops.fsync_file(target)              # fsync ordinal 1
        ops.append_file(target, b"y")       # op 3: not an fsync
        with pytest.raises(OSError, match="barrier lost"):
            ops.fsync_file(target)          # fsync ordinal 2
        assert ops.fsyncs_seen == 2
        # Transient, like a device rejecting one barrier.
        ops.fsync_file(target)


class TestCrashDevices:
    def test_crash_devices_downs_every_registered_wrapper(self, tmp_path):
        devices = [_device(tmp_path, name=f"f{i}.db") for i in range(3)]
        try:
            for device in devices:
                device.extend()
            crash_devices(devices)
            for device in devices:
                assert device.crashed
                with pytest.raises(InjectedFault):
                    device.extend()
        finally:
            for device in devices:
                device.close()
