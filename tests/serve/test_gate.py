"""SlideGate: write preference, drain accounting, cancellation safety."""

import asyncio

import pytest

from repro.serve import SlideGate


def run(coro):
    return asyncio.run(coro)


def test_idle_readers_share():
    async def main():
        gate = SlideGate()
        async with gate.read():
            async with gate.read():
                assert gate.active_readers == 2
                assert gate.state == "idle"
        assert gate.active_readers == 0

    run(main())


def test_writer_is_exclusive_and_fifo():
    async def main():
        gate = SlideGate()
        order = []

        async def writer(tag):
            async with gate.write():
                order.append(tag)

        await asyncio.gather(*(writer(i) for i in range(5)))
        assert order == [0, 1, 2, 3, 4]

    run(main())


def test_pending_writer_drains_readers_then_runs():
    async def main():
        gate = SlideGate()
        events = []
        reader_entered = asyncio.Event()
        release_reader = asyncio.Event()

        async def reader(tag, before_writer):
            async with gate.read():
                events.append(("read", tag))
                if before_writer:
                    reader_entered.set()
                    await release_reader.wait()

        async def writer():
            await reader_entered.wait()
            async with gate.write():
                events.append(("write",))

        first = asyncio.create_task(reader(0, True))
        wtask = asyncio.create_task(writer())
        await reader_entered.wait()
        await asyncio.sleep(0)  # writer queues -> gate starts draining
        while gate.state != "draining":
            await asyncio.sleep(0)
        # A reader arriving during the drain parks behind the writer.
        late = asyncio.create_task(reader(1, False))
        while gate.waiting_readers != 1:
            await asyncio.sleep(0)
        release_reader.set()
        await asyncio.gather(first, wtask, late)
        assert events == [("read", 0), ("write",), ("read", 1)]
        assert gate.state == "idle"

    run(main())


def test_exclusive_state_reported():
    async def main():
        gate = SlideGate()
        async with gate.write():
            assert gate.state == "exclusive"
            assert gate.writer_active
        assert gate.state == "idle"

    run(main())


def test_cancelled_parked_reader_leaves_gate_consistent():
    async def main():
        gate = SlideGate()
        hold = asyncio.Event()

        async def writer():
            async with gate.write():
                await hold.wait()

        wtask = asyncio.create_task(writer())
        await asyncio.sleep(0)
        parked = asyncio.create_task(gate.acquire_read())
        await asyncio.sleep(0)
        assert gate.waiting_readers == 1
        parked.cancel()
        with pytest.raises(asyncio.CancelledError):
            await parked
        assert gate.waiting_readers == 0
        hold.set()
        await wtask
        assert gate.state == "idle"
        # The gate still works after the cancellation.
        async with gate.read():
            assert gate.active_readers == 1

    run(main())


def test_cancelled_queued_writer_does_not_block_readers():
    async def main():
        gate = SlideGate()
        hold = asyncio.Event()

        async def reader():
            async with gate.read():
                await hold.wait()

        rtask = asyncio.create_task(reader())
        await asyncio.sleep(0)
        queued = asyncio.create_task(gate.acquire_write())
        await asyncio.sleep(0)
        assert gate.state == "draining"
        queued.cancel()
        with pytest.raises(asyncio.CancelledError):
            await queued
        assert gate.state == "idle"
        async with gate.read():  # admitted immediately again
            pass
        hold.set()
        await rtask

    run(main())


def test_release_without_acquire_raises():
    gate = SlideGate()
    with pytest.raises(AssertionError):
        gate.release_read()
    with pytest.raises(AssertionError):
        gate.release_write()
