"""AsyncEngine facade: bridging, slide barrier, single-writer lane."""

import asyncio

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import ProcessExecutor, SerialExecutor, ShardedEngine
from repro.serve import AsyncEngine, ServeClosedError


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10,
                  space=Rect(0, 0, 99, 99), page_size=512, n_shards=2)
    params.update(overrides)
    return SWSTConfig(**params)


@pytest.fixture
def engine():
    with ShardedEngine(make_config(),
                       executor=SerialExecutor()) as eng:
        yield eng


def test_rejects_remote_executor():
    pool = ProcessExecutor(max_workers=1)
    try:
        with pytest.raises(ValueError, match="remote"):
            AsyncEngine(object(), executor=pool)
    finally:
        pool.close()


def test_round_trip_query(engine):
    async def main():
        facade = AsyncEngine(engine)
        try:
            await facade.report(1, 10, 20, 0)
            await facade.extend([_R(2, 30, 40, 1), _R(3, 50, 60, 2)])
            result = await facade.query_interval(
                Rect(0, 0, 99, 99), 0, 2)
            assert {e.oid for e in result.entries} == {1, 2, 3}
            n, _stats = await facade.count_interval(
                Rect(0, 0, 99, 99), 0, 2)
            assert n == 3
            knn = await facade.query_knn(10, 20, 1, 0, 2)
            assert [e.oid for e in knn.entries] == [1]
        finally:
            facade.close()

    asyncio.run(main())
    assert engine.now == 2  # the engine outlives the facade


class _R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def test_matches_direct_engine_calls(engine):
    async def main():
        facade = AsyncEngine(engine)
        try:
            await facade.extend(
                [_R(oid, (7 * oid) % 100, (13 * oid) % 100, oid // 10)
                 for oid in range(40)])
            through_facade = await facade.query_interval(
                Rect(0, 0, 99, 99), 0, 4)
            return through_facade
        finally:
            facade.close()

    through_facade = asyncio.run(main())
    direct = engine.query_interval(Rect(0, 0, 99, 99), 0, 4)
    key = lambda e: (e.oid, e.x, e.y, e.s)  # noqa: E731
    assert sorted(through_facade.entries, key=key) == \
        sorted(direct.entries, key=key)


def test_slide_is_a_barrier(engine):
    async def main():
        facade = AsyncEngine(engine)
        try:
            await facade.extend([_R(i, i, i, 0) for i in range(5)])
            in_read = asyncio.Event()
            release = asyncio.Event()

            def slow_read():
                # Runs on the pool thread while the loop drives the
                # slide; the loop releases us only after checking that
                # the slide is still parked behind this read.
                loop.call_soon_threadsafe(in_read.set)
                fut = asyncio.run_coroutine_threadsafe(
                    release.wait(), loop)
                fut.result(timeout=10)
                return facade.engine.query_interval(
                    Rect(0, 0, 99, 99), 0, 0)

            loop = asyncio.get_running_loop()
            read_task = asyncio.create_task(facade.read(slow_read))
            await in_read.wait()
            slide_task = asyncio.create_task(facade.advance_time(40))
            while facade.gate.state != "draining":
                await asyncio.sleep(0)
            assert not slide_task.done()
            release.set()
            await read_task
            await slide_task
            assert facade.gate.state == "idle"
            assert facade.now == 40
            assert facade.stats.slides == 1
        finally:
            facade.close()

    asyncio.run(main())


def test_mutations_serialize_fifo(engine):
    async def main():
        facade = AsyncEngine(engine)
        try:
            # Interleaved submissions with ascending timestamps: the
            # single-writer lane must apply them in submission order or
            # the engine rejects the stream as non-monotonic.
            await asyncio.gather(
                *(facade.report(oid, oid, oid, t)
                  for t, oid in enumerate([1, 2, 3, 4, 5, 6, 7, 8])))
            assert facade.stats.mutations == 8
        finally:
            facade.close()

    asyncio.run(main())


def test_closed_facade_refuses_work(engine):
    async def main():
        facade = AsyncEngine(engine)
        facade.close()
        facade.close()  # idempotent
        with pytest.raises(ServeClosedError):
            await facade.query_interval(Rect(0, 0, 99, 99), 0, 0)

    asyncio.run(main())
