"""Admission control and the app-level error model (no sockets)."""

import asyncio
import json

import pytest

from repro.core import Rect, SWSTConfig
from repro.engine import SerialExecutor, ShardedEngine
from repro.serve import (AdmissionController, AsyncEngine, Overloaded,
                         Request, ServeApp, ServeStats)


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10,
                  space=Rect(0, 0, 99, 99), page_size=512, n_shards=2)
    params.update(overrides)
    return SWSTConfig(**params)


@pytest.fixture
def engine():
    with ShardedEngine(make_config(),
                       executor=SerialExecutor()) as eng:
        yield eng


def post(path, obj):
    return Request(method="POST", path=path,
                   body=json.dumps(obj).encode())


def get(path, **headers):
    return Request(method="GET", path=path, headers=headers)


def run_app(engine, coro_fn, **app_kwargs):
    facade = AsyncEngine(engine)
    app = ServeApp(facade, **app_kwargs)
    try:
        return asyncio.run(coro_fn(app))
    finally:
        facade.close()


def test_typed_rejection_at_capacity():
    stats = ServeStats()
    controller = AdmissionController(2, stats, retry_after=0.25)

    async def main():
        await controller.admit().__aenter__()
        controller.try_admit()
        with pytest.raises(Overloaded) as info:
            controller.try_admit()
        assert info.value.depth == 2
        assert info.value.capacity == 2
        assert info.value.retry_after == 0.25
        assert stats.overload_rejections == 1
        controller.release()
        controller.try_admit()  # a freed slot admits again

    asyncio.run(main())


def test_retry_hint_jitter_comes_from_the_seam():
    stats = ServeStats()
    values = iter([0.5, 0.0])
    controller = AdmissionController(1, stats, retry_after=0.1,
                                     rng=lambda: next(values))
    controller.try_admit()
    with pytest.raises(Overloaded) as first:
        controller.try_admit()
    with pytest.raises(Overloaded) as second:
        controller.try_admit()
    assert first.value.retry_after == pytest.approx(0.15)
    assert second.value.retry_after == pytest.approx(0.1)


def test_overload_maps_to_503_with_retry_after(engine):
    async def main(app):
        release = asyncio.Event()
        original = app.engine.query_interval

        async def stalling(*args, **kwargs):
            await release.wait()
            return await original(*args, **kwargs)

        app.engine.query_interval = stalling
        q = {"area": [0, 0, 99, 99], "t_lo": 0, "t_hi": 0}
        stuck = [asyncio.create_task(app.handle(post("/query", q)))
                 for _ in range(2)]
        while app.stats.queue_depth < 2:
            await asyncio.sleep(0)
        rejected = await app.handle(post("/query", q))
        release.set()
        served = await asyncio.gather(*stuck)
        return rejected, served

    rejected, served = run_app(engine, main, capacity=2, max_batch=1)
    assert rejected.status == 503
    assert rejected.payload["error"] == "overloaded"
    assert rejected.payload["depth"] == 2
    assert "Retry-After" in rejected.headers
    assert all(r.status == 200 for r in served)


def test_control_plane_bypasses_admission(engine):
    async def main(app):
        # Saturate the only admission slot with a stalled query...
        release = asyncio.Event()
        original = app.engine.query_interval

        async def stalling(*args, **kwargs):
            await release.wait()
            return await original(*args, **kwargs)

        app.engine.query_interval = stalling
        q = {"area": [0, 0, 99, 99], "t_lo": 0, "t_hi": 0}
        stuck = asyncio.create_task(app.handle(post("/query", q)))
        while app.stats.queue_depth < 1:
            await asyncio.sleep(0)
        # ...the control plane still answers.
        health = await app.handle(get("/healthz"))
        stats = await app.handle(get("/stats"))
        release.set()
        await stuck
        return health, stats

    health, stats = run_app(engine, main, capacity=1, max_batch=1)
    assert health.status == 200
    assert stats.status == 200
    assert stats.payload["queue_depth"] == 1


def test_deadline_maps_to_504(engine):
    async def main(app):
        async def never(*args, **kwargs):
            await asyncio.Event().wait()

        app.engine.query_interval = never
        q = {"area": [0, 0, 99, 99], "t_lo": 0, "t_hi": 0}
        request = post("/query", q)
        request.headers["x-deadline"] = "0.05"
        return await app.handle(request)

    response = run_app(engine, main, max_batch=1)
    assert response.status == 504
    assert response.payload["error"] == "deadline_exceeded"
    assert response.payload["timeout"] == pytest.approx(0.05)


def test_bad_requests_map_to_400(engine):
    async def main(app):
        return [
            await app.handle(Request(method="POST", path="/query",
                                     body=b"{nope")),
            await app.handle(post("/query", {"area": [0, 0, 99]})),
            await app.handle(post("/insert", {"oid": "one"})),
            await app.handle(get("/query", **{"x-deadline": "-1"})),
        ]

    responses = run_app(engine, main)
    assert [r.status for r in responses] == [400, 400, 400, 400]
    assert all(r.payload["error"] == "bad_request" for r in responses)
    assert "x_lo" in responses[1].payload["detail"]


def test_unknown_path_and_wrong_method(engine):
    async def main(app):
        return (await app.handle(get("/nope")),
                await app.handle(get("/insert")))

    not_found, wrong_method = run_app(engine, main)
    assert not_found.status == 404
    assert wrong_method.status == 405


def test_engine_domain_error_maps_to_500(engine):
    async def main(app):
        # Location outside the spatial domain: passes the wire checks,
        # rejected by the engine's own validation.
        return await app.handle(post("/report", {"oid": 1, "x": 5000,
                                                 "y": 5000, "t": 0}))

    response = run_app(engine, main)
    assert response.status == 500
    assert response.payload["error"] == "internal"
    assert response.payload["type"] == "ValueError"


def test_degraded_result_maps_to_206(engine):
    async def main(app):
        from repro.core.results import QueryStats
        from repro.engine import PartialResult
        from repro.engine.errors import ShardFailure

        partial = PartialResult(
            entries=[], stats=QueryStats(degraded=True),
            failures=[ShardFailure(1, "shard-001", OSError("crashed"))])

        async def degraded(*args, **kwargs):
            del args, kwargs
            return partial

        app.engine.query_interval = degraded
        q = {"area": [0, 0, 99, 99], "t_lo": 0, "t_hi": 0,
             "strict": False}
        return await app.handle(post("/query", q))

    response = run_app(engine, main, max_batch=1)
    assert response.status == 206
    assert response.payload["degraded"] is True
    assert response.payload["failures"][0]["shard_id"] == 1
