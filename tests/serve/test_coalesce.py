"""Coalescer: batched responses are byte-identical to scalar queries,
strictness demuxes per request, linger/batch knobs behave."""

import asyncio
import contextlib
import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig
from repro.engine import (EngineCloseError, SerialExecutor,
                          ShardQueryError, ShardedEngine)
from repro.serve import AsyncEngine, Coalescer, ServeStats
from repro.storage import per_path_device_factory

N_SHARDS = 3


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10,
                  space=Rect(0, 0, 99, 99), page_size=512,
                  n_shards=N_SHARDS)
    params.update(overrides)
    return SWSTConfig(**params)


class R:
    def __init__(self, oid, x, y, t):
        self.oid, self.x, self.y, self.t = oid, x, y, t


def workload(seed=11, count=300, t0=0):
    rng = random.Random(seed)
    t = t0
    reports = []
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        reports.append(R(rng.randrange(25), rng.randrange(100),
                         rng.randrange(100), t))
    return reports


def gather_coalesced(engine, areas, t_lo, t_hi, *, stricts=None,
                     max_batch=64, max_linger=0.0, timer=None):
    """Run one query per area concurrently through a fresh coalescer."""
    stricts = stricts if stricts is not None else [True] * len(areas)
    stats = ServeStats()
    facade = AsyncEngine(engine, stats=stats)

    async def main():
        coalescer = Coalescer(facade, stats, max_batch=max_batch,
                              max_linger=max_linger, timer=timer)
        results = await asyncio.gather(
            *(coalescer.query_interval(area, t_lo, t_hi, strict=strict)
              for area, strict in zip(areas, stricts)),
            return_exceptions=True)
        await coalescer.drain()
        return results

    try:
        return asyncio.run(main()), stats
    finally:
        facade.close()


@st.composite
def rect(draw):
    x_lo = draw(st.integers(0, 99))
    y_lo = draw(st.integers(0, 99))
    x_hi = draw(st.integers(x_lo, 99))
    y_hi = draw(st.integers(y_lo, 99))
    return Rect(x_lo, y_lo, x_hi, y_hi)


@pytest.fixture(scope="module")
def loaded_engine():
    with ShardedEngine(make_config(),
                       executor=SerialExecutor()) as eng:
        eng.extend(workload())
        yield eng


@given(areas=st.lists(rect(), min_size=1, max_size=8),
       t_lo=st.integers(0, 20), span=st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_coalesced_equals_scalar(loaded_engine, areas, t_lo, span):
    """Every coalesced response is byte-identical to the scalar call."""
    t_hi = t_lo + span
    results, stats = gather_coalesced(loaded_engine, areas, t_lo, t_hi)
    assert stats.engine_query_calls == 1  # one batch served them all
    for area, result in zip(areas, results):
        scalar = loaded_engine.query_interval(area, t_lo, t_hi)
        assert result.entries == scalar.entries

    if len(areas) > 1:
        assert stats.coalesced_batches == 1
        assert stats.coalesced_requests == len(areas)


def test_distinct_signatures_do_not_merge(loaded_engine):
    stats = ServeStats()
    facade = AsyncEngine(loaded_engine, stats=stats)

    async def main():
        coalescer = Coalescer(facade, stats)
        area = Rect(0, 0, 99, 99)
        return await asyncio.gather(
            coalescer.query_interval(area, 0, 5),
            coalescer.query_interval(area, 0, 6),
            coalescer.query_interval(area, 0, 5))

    try:
        first, second, third = asyncio.run(main())
    finally:
        facade.close()
    assert stats.engine_query_calls == 2  # (0,5) merged, (0,6) alone
    assert first.entries == third.entries
    assert first.entries == \
        loaded_engine.query_interval(Rect(0, 0, 99, 99), 0, 5).entries
    assert second.entries == \
        loaded_engine.query_interval(Rect(0, 0, 99, 99), 0, 6).entries


def test_max_batch_flushes_without_linger(loaded_engine):
    fired = []

    def never_timer(delay, callback):
        fired.append(delay)

        class Handle:
            def cancel(self):
                pass

        return Handle()

    areas = [Rect(0, 0, 99, 99), Rect(0, 0, 9, 9), Rect(10, 10, 40, 40)]
    results, stats = gather_coalesced(
        loaded_engine, areas, 0, 5, max_batch=3, max_linger=60.0,
        timer=never_timer)
    # The timer never fired: reaching max_batch forced the flush.
    assert fired == [60.0]
    assert stats.engine_query_calls == 1
    for area, result in zip(areas, results):
        assert result.entries == \
            loaded_engine.query_interval(area, 0, 5).entries


def test_scalar_passthrough_when_disabled(loaded_engine):
    areas = [Rect(0, 0, 99, 99), Rect(0, 0, 9, 9)]
    results, stats = gather_coalesced(loaded_engine, areas, 0, 5,
                                      max_batch=1)
    assert stats.engine_query_calls == 2  # one engine call per request
    assert stats.coalesced_batches == 0
    for area, result in zip(areas, results):
        assert result.entries == \
            loaded_engine.query_interval(area, 0, 5).entries


def test_identical_rects_collapse_to_one_evaluation(loaded_engine):
    """Requests for the same rectangle under one signature share one
    engine-side evaluation (request collapsing), and every waiter's
    response still equals the scalar call's."""
    stats = ServeStats()
    facade = AsyncEngine(loaded_engine, stats=stats)
    seen_areas = []

    class Recording:
        async def query_interval_many(self, areas, *args, **kwargs):
            seen_areas.append(list(areas))
            return await facade.query_interval_many(areas, *args,
                                                    **kwargs)

    tile = Rect(10, 10, 40, 40)
    other = Rect(50, 50, 99, 99)
    areas = [tile, other, tile, tile, other]

    async def main():
        coalescer = Coalescer(facade, stats)
        coalescer._engine = Recording()
        return await asyncio.gather(
            *(coalescer.query_interval(area, 0, 5) for area in areas))

    try:
        results = asyncio.run(main())
    finally:
        facade.close()
    # The engine saw each distinct rectangle exactly once...
    assert seen_areas == [[tile, other]]
    assert stats.engine_query_calls == 1
    assert stats.collapsed_requests == 3
    # ...and every waiter got its own rectangle's scalar-equal answer.
    for area, result in zip(areas, results):
        assert result.entries == \
            loaded_engine.query_interval(area, 0, 5).entries


def test_engine_failure_reaches_every_waiter(loaded_engine):
    stats = ServeStats()
    facade = AsyncEngine(loaded_engine, stats=stats)

    class Boom(Exception):
        pass

    def exploding(*args, **kwargs):
        raise Boom("fan-out failed")

    async def main():
        coalescer = Coalescer(facade, stats)
        coalescer._engine = type(
            "F", (), {"query_interval_many":
                      staticmethod(_async(exploding))})()
        return await asyncio.gather(
            coalescer.query_interval(Rect(0, 0, 99, 99), 0, 5),
            coalescer.query_interval(Rect(0, 0, 9, 9), 0, 5),
            return_exceptions=True)

    try:
        results = asyncio.run(main())
    finally:
        facade.close()
    assert all(isinstance(r, Boom) for r in results)


def _async(fn):
    async def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


# -- degraded attribution under an injected shard failure -----------------------


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-degraded") / "index.d"
    with ShardedEngine(make_config(), path,
                       executor=SerialExecutor()) as eng:
        eng.extend(workload())
        eng.save()
    return path


def open_with_crashed_shard(path, shard_id):
    """Open the directory, then crash one shard's device in place."""
    devices = []
    config = dataclasses.replace(
        make_config(node_cache_capacity=0),
        device_factory=per_path_device_factory(
            f"shard-{shard_id:03d}", registry=devices))
    eng = ShardedEngine.open(path, config, executor=SerialExecutor())
    (device,) = devices
    device.crashed = True
    return eng, device


def close_quietly(eng):
    with contextlib.suppress(OSError, EngineCloseError):
        eng.close()


def test_degraded_attribution_matches_scalar(saved_dir):
    """strict=False: coalesced failure attribution is per rectangle,
    identical to the scalar degraded path."""
    eng, _device = open_with_crashed_shard(saved_dir, 1)
    try:
        q_lo, q_hi = eng.config.queriable_period(eng.now)
        areas = [Rect(0, 0, 99, 99), Rect(0, 0, 20, 20),
                 Rect(60, 60, 99, 99), Rect(30, 0, 99, 30)]
        results, stats = gather_coalesced(
            eng, areas, q_lo, q_hi, stricts=[False] * len(areas))
        assert stats.engine_query_calls == 1
        degraded_seen = 0
        for area, result in zip(areas, results):
            scalar = eng.query_interval(area, q_lo, q_hi, strict=False)
            assert result.entries == scalar.entries
            coalesced_failed = sorted(
                f.shard_id for f in getattr(result, "failures", []))
            scalar_failed = sorted(
                f.shard_id for f in getattr(scalar, "failures", []))
            assert coalesced_failed == scalar_failed
            degraded_seen += bool(coalesced_failed)
        # The workload spans the whole space, so the full-space rect
        # must have hit the crashed shard...
        assert degraded_seen >= 1
        # ...while attribution stays per-rect: a rect that never
        # touches shard 1 reports no failure at all (checked above via
        # the scalar comparison).
    finally:
        close_quietly(eng)


def test_mixed_strictness_demuxes_in_one_batch(saved_dir):
    """One batch, two contracts: the strict request fails typed, the
    degraded one still gets its partial result."""
    eng, _device = open_with_crashed_shard(saved_dir, 1)
    try:
        full = Rect(0, 0, 99, 99)
        q_lo, q_hi = eng.config.queriable_period(eng.now)
        results, stats = gather_coalesced(
            eng, [full, full], q_lo, q_hi, stricts=[True, False])
        assert stats.engine_query_calls == 1
        strict_result, degraded_result = results
        assert isinstance(strict_result, ShardQueryError)
        assert strict_result.shard_id == 1
        scalar = eng.query_interval(full, q_lo, q_hi, strict=False)
        assert degraded_result.entries == scalar.entries
        assert [f.shard_id for f in degraded_result.failures] == \
            [f.shard_id for f in scalar.failures]
    finally:
        close_quietly(eng)
