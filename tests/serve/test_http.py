"""The HTTP adapter over a real loopback socket."""

import asyncio
import http.client
import json

import pytest

from repro.core import Rect, SWSTConfig
from repro.serve import ServeOptions
from repro.serve.main import serve


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10,
                  space=Rect(0, 0, 99, 99), page_size=512, n_shards=2)
    params.update(overrides)
    return SWSTConfig(**params)


def serve_and_drive(options, client_fn):
    """Run the server, call ``client_fn(port)`` in a thread, shut down.

    Returns ``(client_result, final_stats)``.
    """
    out = {}

    async def main():
        shutdown = asyncio.Event()

        async def ready(server, app):
            out["client"] = await asyncio.to_thread(client_fn,
                                                    server.port)
            shutdown.set()

        return await serve(options, ready=ready, shutdown=shutdown,
                           echo=lambda line: None)

    stats = asyncio.run(main())
    return out["client"], stats


class Client:
    """A minimal keep-alive HTTP client over one connection."""

    def __init__(self, port):
        self.conn = http.client.HTTPConnection("127.0.0.1", port,
                                               timeout=30)

    def request(self, method, path, obj=None, headers=None):
        body = None if obj is None else json.dumps(obj).encode()
        self.conn.request(method, path, body=body,
                          headers=headers or {})
        response = self.conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, dict(response.getheaders())

    def get(self, path, **headers):
        return self.request("GET", path, headers=headers)

    def post(self, path, obj, **headers):
        return self.request("POST", path, obj, headers=headers)

    def close(self):
        self.conn.close()


def options(tmp_path, **overrides):
    params = dict(index=str(tmp_path / "serve.d"),
                  config=make_config(), create=True,
                  executor="serial", capacity=16, max_batch=16)
    params.update(overrides)
    return ServeOptions(**params)


def test_end_to_end_over_a_socket(tmp_path):
    def client(port):
        c = Client(port)
        try:
            exchanges = [
                c.get("/healthz"),
                c.post("/report", {"oid": 1, "x": 10, "y": 20, "t": 0}),
                c.post("/extend",
                       {"reports": [[2, 5, 5, 0], [3, 30, 30, 1]]}),
                c.get("/query?area=0,0,99,99&t_lo=0&t_hi=1"),
                c.post("/count", {"area": [0, 0, 99, 99],
                                  "t_lo": 0, "t_hi": 1}),
                c.post("/knn", {"x": 10, "y": 20, "k": 1,
                                "t_lo": 0, "t_hi": 1}),
                c.post("/slide", {"now": 5}),
                c.post("/close", {"oid": 1, "t": 6}),
                c.post("/save", {}),
                c.get("/stats"),
            ]
            return exchanges
        finally:
            c.close()

    exchanges, stats = serve_and_drive(options(tmp_path), client)
    statuses = [status for status, _, _ in exchanges]
    assert statuses == [200] * len(statuses)
    query_payload = exchanges[3][1]
    assert {e[0] for e in query_payload["entries"]} == {1, 2, 3}
    assert exchanges[4][1]["count"] == 3
    assert [e[0] for e in exchanges[5][1]["entries"]] == [1]
    stats_payload = exchanges[9][1]
    assert stats_payload["slides"] == 1
    assert stats_payload["ingested_reports"] == 3
    assert stats.saves == 1
    # The same ten exchanges reused one keep-alive connection.
    assert stats.requests_total == 10


def test_concurrent_identical_queries_coalesce(tmp_path):
    def client(port):
        seed = Client(port)
        try:
            seed.post("/extend", {"reports": [[i, i * 7 % 100,
                                               i * 13 % 100, i // 8]
                                              for i in range(32)]})
        finally:
            seed.close()

        import concurrent.futures

        def one_query(_):
            c = Client(port)
            try:
                return c.get("/query?area=0,0,99,99&t_lo=0&t_hi=3")
            finally:
                c.close()

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            return list(pool.map(one_query, range(16)))

    exchanges, stats = serve_and_drive(
        options(tmp_path, max_linger=0.01), client)
    payloads = [payload for _, payload, _ in exchanges]
    assert all(status == 200 for status, _, _ in exchanges)
    # Every response is identical to every other (same signature)...
    assert all(p["entries"] == payloads[0]["entries"] for p in payloads)
    # ...and at least one engine call served several requests.
    assert stats.queries == 16
    assert stats.engine_query_calls < 16
    assert stats.coalesced_requests >= 2


def test_malformed_framing_gets_400_and_close(tmp_path):
    def client(port):
        import socket

        with socket.create_connection(("127.0.0.1", port),
                                      timeout=30) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            chunks = []
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    raw, stats = serve_and_drive(options(tmp_path), client)
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"400 Bad Request" in head
    assert b"Connection: close" in head
    assert json.loads(body)["error"] == "bad_request"
    assert stats.bad_requests == 1


def test_unsupported_body_framing(tmp_path):
    def client(port):
        c = Client(port)
        try:
            status, payload, _ = c.request(
                "POST", "/query", headers={"Transfer-Encoding":
                                           "chunked"})
            return status, payload
        finally:
            c.close()

    (status, payload), _stats = serve_and_drive(options(tmp_path),
                                                client)
    assert status == 400
    assert "chunked" in payload["detail"]


def test_startup_failure_unwinds_cleanly(tmp_path):
    """Opening a nonexistent directory fails after the executor is
    resolved; the ExitStack must close everything it acquired."""
    from repro.engine import EngineError

    bad = options(tmp_path, create=False,
                  index=str(tmp_path / "missing.d"))

    async def main():
        await serve(bad, echo=lambda line: None)

    with pytest.raises(EngineError, match="manifest"):
        asyncio.run(main())


def test_port_in_use_unwinds_engine(tmp_path):
    """A bind failure after the engine opened must close the engine so
    the directory can be served again immediately."""
    import socket

    from repro.engine import SerialExecutor, ShardedEngine

    path = str(tmp_path / "serve.d")
    with ShardedEngine(make_config(), path,
                       executor=SerialExecutor()) as eng:
        eng.save()

    squatter = socket.socket()
    squatter.bind(("127.0.0.1", 0))
    squatter.listen(1)
    port = squatter.getsockname()[1]
    try:
        first = options(tmp_path, create=False, port=port)

        async def main():
            await serve(first, echo=lambda line: None)

        # The engine had already opened when the bind failed; the
        # ExitStack unwinds it (a leak would trip CI's
        # -W error::ResourceWarning on the shard files).
        with pytest.raises(OSError):
            asyncio.run(main())
    finally:
        squatter.close()

    def client(port):
        c = Client(port)
        try:
            return c.get("/healthz")
        finally:
            c.close()

    (status, payload, _), _stats = serve_and_drive(
        options(tmp_path, create=False), client)
    assert status == 200
    assert payload["ok"] is True
