"""Online reshard under live traffic.

The three-phase online reshard (freeze / build / flip) must be
invisible to readers and merely a hiccup to writers:

* every read issued while the build runs gets a 200 with a response
  *byte-identical* to the pre-reshard answer for the same query (the
  data the readers look at does not change during the run);
* writes are absorbed — they complete *while* the build is still
  running (the stall is bounded by the freeze/flip sections, not the
  build), land in the catch-up journal, and survive the generation
  flip and a process restart;
* a save or second reshard racing an in-flight reshard is a typed 409,
  and both work again once the flip lands.

The build phase is gated on a :class:`threading.Event` so the overlap
is deterministic: the test provably issues its reads and writes while
the reshard is mid-build, not before or after.
"""

import asyncio
import json
import threading

from repro.core import Rect, SWSTConfig
from repro.engine import SerialExecutor, ShardedEngine
from repro.engine.reshard import GenerationBuild
from repro.serve import Request
from repro.serve.main import ServeOptions, serve

OLD_SHARDS = 2
NEW_SHARDS = 5
READERS = 4
READS_PER_READER = 5
WRITES_DURING_BUILD = 6


def make_config(n_shards=OLD_SHARDS):
    return SWSTConfig(window=200, slide=20, x_partitions=4, y_partitions=4,
                      d_max=40, duration_interval=10,
                      space=Rect(0, 0, 99, 99), page_size=512,
                      n_shards=n_shards)


def post(path, obj):
    return Request(method="POST", path=path,
                   body=json.dumps(obj).encode())


def wire_bytes(response):
    """The exact bytes a transport adapter would send for a response."""
    return json.dumps(response.payload, sort_keys=True).encode()


#: Readers watch the lower-left quadrant; concurrent writes land in the
#: upper-right, so the read answer is byte-stable across the reshard.
READ_QUERY = post("/query", {"area": [0, 0, 49, 49], "t_lo": 0, "t_hi": 0})


class BuildGate:
    """Monkeypatch hook stalling ``GenerationBuild.build`` on an event."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def install(self, monkeypatch):
        original = GenerationBuild.build

        def gated(build):
            self.entered.set()
            assert self.release.wait(timeout=60), "test never released"
            return original(build)

        monkeypatch.setattr(GenerationBuild, "build", gated)

    async def entered_async(self):
        while not self.entered.is_set():
            await asyncio.sleep(0.005)


def run_online_reshard(tmp_path, monkeypatch, body):
    """Serve a seeded directory, run ``body(app, gate, state)`` inside."""
    gate = BuildGate()
    gate.install(monkeypatch)
    options = ServeOptions(index=str(tmp_path / "online.d"),
                           config=make_config(), create=True,
                           executor="serial", capacity=16, max_batch=4,
                           max_linger=0.0)
    state = {}

    async def main():
        shutdown = asyncio.Event()

        async def ready(server, app):
            seed = [[oid, (oid * 7) % 50, (oid * 13) % 50, 0]
                    for oid in range(20)]
            assert (await app.handle(
                post("/extend", {"reports": seed}))).status == 200
            baseline = await app.handle(READ_QUERY)
            assert baseline.status == 200
            state["baseline"] = wire_bytes(baseline)
            await body(app, gate, state)
            shutdown.set()

        return await serve(options, ready=ready, shutdown=shutdown,
                           echo=lambda line: None)

    state["stats"] = asyncio.run(main())
    return state


def test_reads_identical_and_writes_absorbed_mid_build(tmp_path,
                                                       monkeypatch):
    async def body(app, gate, state):
        reshard_task = asyncio.create_task(
            app.handle(post("/reshard", {"n_shards": NEW_SHARDS})))
        await gate.entered_async()

        async def reader():
            bodies = []
            for _ in range(READS_PER_READER):
                response = await app.handle(READ_QUERY)
                assert response.status == 200
                bodies.append(wire_bytes(response))
                await asyncio.sleep(0)
            return bodies

        async def writer():
            statuses = []
            for i in range(WRITES_DURING_BUILD):
                reports = [[100 + i, 60 + (i * 5) % 40,
                            60 + (i * 7) % 40, 0]]
                response = await app.handle(
                    post("/extend", {"reports": reports}))
                statuses.append(response.status)
                await asyncio.sleep(0)
            return statuses

        outcomes = await asyncio.gather(writer(),
                                        *(reader() for _ in range(READERS)))
        # The build is still stalled: everything above provably ran
        # mid-reshard.  Writes completed (bounded stall — they never
        # wait for the build) and every read matched the pre-reshard
        # bytes exactly.
        assert not reshard_task.done()
        assert outcomes[0] == [200] * WRITES_DURING_BUILD
        for bodies in outcomes[1:]:
            assert bodies == [state["baseline"]] * READS_PER_READER

        gate.release.set()
        flip = await reshard_task
        assert flip.status == 200
        report = flip.payload
        assert report["old_n_shards"] == OLD_SHARDS
        assert report["n_shards"] == NEW_SHARDS

        # Post-flip: the same entry set (merge order and physical stats
        # legitimately change with the shard count), and the journaled
        # writes survived the generation swap.
        after = await app.handle(READ_QUERY)
        assert after.status == 200
        baseline = json.loads(state["baseline"])
        key = lambda e: [v if v is not None else -1 for v in e]  # noqa: E731
        assert sorted(after.payload["entries"], key=key) \
            == sorted(baseline["entries"], key=key)
        assert (await app.handle(post("/save", {}))).status == 200

    state = run_online_reshard(tmp_path, monkeypatch, body)
    assert state["stats"].reshards == 1

    # The journal replay was durable: a cold reopen at the new shard
    # count sees the seed AND every mid-build write.
    with ShardedEngine.open(str(tmp_path / "online.d"),
                            make_config(NEW_SHARDS),
                            executor=SerialExecutor()) as eng:
        eng.check_integrity()
        assert len(eng) == 20 + WRITES_DURING_BUILD
        assert eng.generation == 1


def test_save_and_second_reshard_get_409_mid_flight(tmp_path, monkeypatch):
    async def body(app, gate, state):
        reshard_task = asyncio.create_task(
            app.handle(post("/reshard", {"n_shards": NEW_SHARDS})))
        await gate.entered_async()

        save = await app.handle(post("/save", {}))
        assert save.status == 409
        assert save.payload["error"] == "reshard_in_progress"
        second = await app.handle(post("/reshard", {"n_shards": 3}))
        assert second.status == 409

        gate.release.set()
        assert (await reshard_task).status == 200
        # Both verbs work again after the flip.
        assert (await app.handle(post("/save", {}))).status == 200

    state = run_online_reshard(tmp_path, monkeypatch, body)
    assert state["stats"].reshards == 1
    assert state["stats"].saves >= 1
