"""Soak: concurrent readers + live ingest + periodic slides.

The serving layer's three moving parts — the coalescer, the admission
window, and the slide barrier — are exercised *together* under
sustained concurrent load, checking the invariants that matter:

* zero dropped or duplicated responses (every request gets exactly one
  answer, success or typed rejection);
* queue depth stays bounded by the admission capacity throughout;
* the slide barrier completes even while the admission queue is full
  (the deadlock interleaving the gate was designed against);
* ingest remains monotonic and queries reflect it (read-your-slides:
  after ``advance_time(T)`` no response contains entries older than
  the retained window).
"""

import asyncio
import json

from repro.core import Rect, SWSTConfig
from repro.serve import Request, ServeStats
from repro.serve.main import ServeOptions, serve


def make_config(**overrides):
    params = dict(window=200, slide=20, x_partitions=4, y_partitions=4,
                  d_max=40, duration_interval=10,
                  space=Rect(0, 0, 99, 99), page_size=512, n_shards=2)
    params.update(overrides)
    return SWSTConfig(**params)


def post(path, obj):
    return Request(method="POST", path=path,
                   body=json.dumps(obj).encode())


READERS = 8
QUERIES_PER_READER = 30
INGEST_BATCHES = 40
REPORTS_PER_BATCH = 10
SLIDES = 6
# Below the worker count (8 readers + ingester), so admission
# demonstrably overflows during the run.
CAPACITY = 6


def test_soak_readers_ingest_slides(tmp_path):
    outcome = run_soak(tmp_path)
    responses, stats, depth_samples = outcome

    operations = (READERS * QUERIES_PER_READER + INGEST_BATCHES
                  + SLIDES)
    # Exactly one response per request: none dropped, none duplicated.
    # (Rejected operations retry, so requests > operations; the 1:1
    # request/response accounting must still balance.)
    assert len(responses) == stats.responses_total
    by_status: dict[int, int] = {}
    for status in responses:
        by_status[status] = by_status.get(status, 0) + 1
    # Everything resolved to a known row of the failure model.
    assert set(by_status) <= {200, 206, 503}
    # The load was sized to overflow admission at least once, so the
    # typed rejection path demonstrably fired...
    assert by_status.get(503, 0) == stats.overload_rejections
    assert stats.overload_rejections >= 1
    # ...and because rejected clients honour the backpressure contract
    # (back off, retry), every logical operation still succeeded
    # exactly once.
    assert by_status.get(200, 0) + by_status.get(206, 0) == operations

    # Queue depth stayed bounded by the admission capacity.
    assert stats.queue_depth_peak <= CAPACITY
    assert max(depth_samples) <= CAPACITY
    assert stats.queue_depth == 0  # drained at shutdown

    # All slides ran to completion (the barrier never deadlocked).
    assert stats.slides == SLIDES
    assert stats.ingested_reports == INGEST_BATCHES * REPORTS_PER_BATCH


def run_soak(tmp_path):
    options = ServeOptions(index=str(tmp_path / "soak.d"),
                           config=make_config(), create=True,
                           executor="serial", capacity=CAPACITY,
                           max_batch=8, max_linger=0.0)
    responses: list[int] = []
    depth_samples: list[int] = []

    async def main() -> ServeStats:
        shutdown = asyncio.Event()

        async def ready(server, app):
            clock = {"t": 0}

            async def submit(request):
                """Issue one operation, honouring backpressure: a 503
                is recorded, backed off, and retried until admitted."""
                while True:
                    response = await app.handle(request)
                    responses.append(response.status)
                    depth_samples.append(app.stats.queue_depth)
                    if response.status != 503:
                        return response
                    await asyncio.sleep(0)

            async def reader(tag):
                area = Rect(0, 0, 99, 99)
                for i in range(QUERIES_PER_READER):
                    t = clock["t"]
                    q = {"area": [area.x_lo, area.y_lo, area.x_hi,
                                  area.y_hi],
                         "t_lo": max(0, t - 20), "t_hi": max(0, t),
                         "strict": False}
                    await submit(post("/query", q))
                    if i % 3 == tag % 3:
                        await asyncio.sleep(0)

            async def ingester():
                t = 0
                for batch in range(INGEST_BATCHES):
                    reports = [[(batch * REPORTS_PER_BATCH + i) % 25,
                                (batch * 7 + i * 13) % 100,
                                (batch * 11 + i * 17) % 100, t]
                               for i in range(REPORTS_PER_BATCH)]
                    await submit(post("/extend", {"reports": reports}))
                    t += 1
                    clock["t"] = t
                    await asyncio.sleep(0)

            async def slider():
                for i in range(SLIDES):
                    # Let load build up between slides; then slide
                    # regardless of how full the admission queue is.
                    for _ in range(12):
                        await asyncio.sleep(0)
                    now = clock["t"]
                    response = await app.handle(
                        post("/slide", {"now": now}))
                    responses.append(response.status)
                    assert response.status == 200

            await asyncio.gather(
                ingester(), slider(),
                *(reader(tag) for tag in range(READERS)))
            shutdown.set()

        return await serve(options, ready=ready, shutdown=shutdown,
                           echo=lambda line: None)

    stats = asyncio.run(main())
    return responses, stats, depth_samples


def test_slide_completes_with_admission_queue_full(tmp_path):
    """The barrier must not wait on queued (unadmitted) work: fill the
    admission window with stalled readers, then slide."""
    options = ServeOptions(index=str(tmp_path / "barrier.d"),
                           config=make_config(), create=True,
                           executor="serial", capacity=2, max_batch=1)

    async def main():
        shutdown = asyncio.Event()
        outcome = {}

        async def ready(server, app):
            release = asyncio.Event()
            original = app.engine.query_interval

            async def stalling(*args, **kwargs):
                await release.wait()
                return await original(*args, **kwargs)

            app.engine.query_interval = stalling
            q = {"area": [0, 0, 99, 99], "t_lo": 0, "t_hi": 0}
            stuck = [asyncio.create_task(app.handle(post("/query", q)))
                     for _ in range(2)]
            while app.stats.queue_depth < 2:
                await asyncio.sleep(0)
            # Admission is saturated: one more data-plane request is
            # typed-rejected...
            rejected = await app.handle(post("/query", q))
            assert rejected.status == 503
            # ...but the slide completes while the queue is STILL full
            # — the barrier waits only for reads already holding the
            # gate, never for admitted-but-stalled or queued work.
            slide = await asyncio.wait_for(
                app.handle(post("/slide", {"now": 40})), timeout=30)
            outcome["slide"] = slide.status
            release.set()
            outcome["stuck"] = [r.status
                                for r in await asyncio.gather(*stuck)]
            shutdown.set()

        await serve(options, ready=ready, shutdown=shutdown,
                    echo=lambda line: None)
        return outcome

    outcome = asyncio.run(main())
    assert outcome["slide"] == 200
    assert outcome["stuck"] == [200, 200]


def test_save_during_load_is_consistent(tmp_path):
    """A /save issued mid-load drains like a slide and the directory
    reopens clean."""
    options = ServeOptions(index=str(tmp_path / "save.d"),
                           config=make_config(), create=True,
                           executor="serial", capacity=8, max_batch=4)

    async def main():
        shutdown = asyncio.Event()

        async def ready(server, app):
            await app.handle(post("/extend", {"reports":
                                              [[i, i, i, 0]
                                               for i in range(8)]}))
            queries = [asyncio.create_task(app.handle(post(
                "/query", {"area": [0, 0, 99, 99], "t_lo": 0,
                           "t_hi": 0})))
                for _ in range(6)]
            save = await app.handle(post("/save", {}))
            assert save.status == 200
            results = await asyncio.gather(*queries)
            assert all(r.status == 200 for r in results)
            shutdown.set()

        return await serve(options, ready=ready, shutdown=shutdown,
                           echo=lambda line: None)

    stats = asyncio.run(main())
    assert stats.saves == 1

    from repro.engine import SerialExecutor, ShardedEngine

    with ShardedEngine.open(str(tmp_path / "save.d"), make_config(),
                            executor=SerialExecutor()) as eng:
        assert len(eng.query_interval(Rect(0, 0, 99, 99), 0, 0)) == 8
