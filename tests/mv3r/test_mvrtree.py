"""Multi-version R-tree: version splits, partial persistency, queries."""

import random

import pytest

from repro.core import Rect
from repro.mv3r import INF, MVRTree
from repro.storage import MEMORY, BufferPool, Pager

EVERYWHERE = Rect(0, 0, 10 ** 6, 10 ** 6)


@pytest.fixture
def tree():
    pool = BufferPool(Pager(MEMORY, page_size=512), capacity=256)
    return MVRTree(pool)


class TestBasics:
    def test_insert_and_timeslice(self, tree):
        tree.insert(1, 10, 20, 100)
        hits = tree.query_timeslice(EVERYWHERE, 150)
        assert [(e.oid, e.x, e.y) for e in hits] == [(1, 10, 20)]

    def test_entry_not_alive_before_start(self, tree):
        tree.insert(1, 10, 20, 100)
        assert tree.query_timeslice(EVERYWHERE, 99) == []

    def test_logical_delete_closes_entry(self, tree):
        tree.insert(1, 10, 20, 100)
        assert tree.logical_delete(1, 150)
        assert tree.query_timeslice(EVERYWHERE, 149)
        assert tree.query_timeslice(EVERYWHERE, 150) == []

    def test_logical_delete_unknown_object(self, tree):
        assert not tree.logical_delete(42, 10)

    def test_report_is_update_plus_insert(self, tree):
        tree.report(1, 10, 20, 100)
        tree.report(1, 30, 40, 150)
        at_120 = tree.query_timeslice(EVERYWHERE, 120)
        at_160 = tree.query_timeslice(EVERYWHERE, 160)
        assert [(e.x, e.y) for e in at_120] == [(10, 20)]
        assert [(e.x, e.y) for e in at_160] == [(30, 40)]

    def test_out_of_order_insert_rejected(self, tree):
        tree.insert(1, 10, 20, 100)
        with pytest.raises(ValueError):
            tree.insert(2, 10, 20, 99)

    def test_closed_entry_insert(self, tree):
        tree.insert(1, 10, 20, 100, te=130)
        assert tree.query_timeslice(EVERYWHERE, 120)
        assert tree.query_timeslice(EVERYWHERE, 130) == []


class TestVersionSplits:
    def _fill(self, tree, reports=3000, objects=30, seed=1):
        rng = random.Random(seed)
        t = tree.now
        history = []
        cur = {}
        for _ in range(reports):
            t += rng.randrange(0, 3)
            oid = rng.randrange(objects)
            x, y = rng.randrange(500), rng.randrange(500)
            if oid in cur:
                history.append((oid, *cur[oid], t))  # oid,x,y,ts,te
            tree.report(oid, x, y, t)
            cur[oid] = (x, y, t)
        return history, cur, t

    def test_roots_accumulate(self, tree):
        self._fill(tree)
        assert len(tree.roots) > 1
        # Root version intervals partition [0, now).
        for (_, _, prev_end), (_, start, _) in zip(tree.roots,
                                                   tree.roots[1:],
                                                   strict=False):
            assert prev_end == start
        assert tree.roots[-1][2] == INF

    def test_pages_never_reclaimed(self, tree):
        # Partial persistency: node count only grows (paper Section IV-A).
        counts = []
        for _ in range(4):
            self_history = self._fill(tree, reports=500,
                                      seed=len(counts) + 10)
            counts.append(tree.node_count())
        assert counts == sorted(counts)

    def test_history_matches_oracle_after_splits(self, tree):
        history, cur, now = self._fill(tree)
        rng = random.Random(99)
        for _ in range(60):
            t = rng.randrange(0, now + 1)
            x0, y0 = rng.randrange(400), rng.randrange(400)
            area = Rect(x0, y0, x0 + 120, y0 + 120)
            expected = {(o, ts) for o, x, y, ts, te in history
                        if ts <= t < te and area.contains(x, y)}
            expected |= {(o, ts) for o, (x, y, ts) in cur.items()
                         if ts <= t and area.contains(x, y)}
            got = {(e.oid, e.ts) for e in tree.query_timeslice(area, t)}
            assert got == expected

    def test_interval_queries_deduplicate_copies(self, tree):
        history, cur, now = self._fill(tree)
        hits = tree.query_interval(EVERYWHERE, 0, now)
        keys = [(e.oid, e.ts) for e in hits]
        assert len(keys) == len(set(keys))

    def test_alive_leaves_cover_current_objects(self, tree):
        _, cur, _ = self._fill(tree)
        alive_pages = set(tree.alive_leaves())
        for oid in cur:
            assert tree._alive_leaf[oid] in alive_pages

    def test_invariants_hold_through_heavy_churn(self, tree):
        self._fill(tree, reports=2000, seed=21)
        tree.check_invariants()
        self._fill(tree, reports=2000, seed=22)
        tree.check_invariants()

    def test_invariant_checker_detects_corruption(self, tree):
        self._fill(tree, reports=500, seed=23)
        # Corrupt the alive-leaf map.
        oid = next(iter(tree._alive_leaf))
        tree._alive_leaf[oid + 10_000] = tree._alive_leaf[oid]
        import pytest
        with pytest.raises(AssertionError):
            tree.check_invariants()
