"""LeafDirectory: the auxiliary 3D R-tree over frozen MVR leaves."""

import pytest

from repro.core import Rect
from repro.mv3r import LeafDirectory
from repro.storage import MEMORY, BufferPool, Pager


@pytest.fixture
def directory():
    pool = BufferPool(Pager(MEMORY, page_size=1024), capacity=64)
    return LeafDirectory(pool)


class TestDirectory:
    def test_empty_directory(self, directory):
        assert len(directory) == 0
        assert directory.search(Rect(0, 0, 100, 100), 0, 100) == []

    def test_registered_leaf_found_by_space_and_time(self, directory):
        directory.add_dead_leaf(7, Rect(10, 10, 50, 50), 100, 200)
        assert directory.search(Rect(0, 0, 100, 100), 150, 160) == [7]

    def test_spatially_disjoint_leaf_skipped(self, directory):
        directory.add_dead_leaf(7, Rect(10, 10, 50, 50), 100, 200)
        assert directory.search(Rect(60, 60, 100, 100), 150, 160) == []

    def test_temporally_disjoint_leaf_skipped(self, directory):
        directory.add_dead_leaf(7, Rect(10, 10, 50, 50), 100, 200)
        assert directory.search(Rect(0, 0, 100, 100), 201, 300) == []

    def test_many_leaves(self, directory):
        for i in range(200):
            directory.add_dead_leaf(i, Rect(i, i, i + 5, i + 5),
                                    i * 10, i * 10 + 20)
        assert len(directory) == 200
        hits = directory.search(Rect(50, 50, 60, 60), 500, 600)
        assert hits and all(45 <= page <= 60 for page in hits)

    def test_degenerate_lifetime_clamped(self, directory):
        # birth == death must still produce a valid box.
        directory.add_dead_leaf(1, Rect(0, 0, 1, 1), 100, 100)
        assert directory.search(Rect(0, 0, 5, 5), 100, 100) == [1]

    def test_node_count_grows(self, directory):
        before = directory.node_count()
        for i in range(300):
            directory.add_dead_leaf(i, Rect(0, 0, 1000, 1000), 0, 10)
        assert directory.node_count() > before
