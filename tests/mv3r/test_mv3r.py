"""MV3R facade: both query paths vs oracle; structural limitations."""

import random

import pytest

from repro.core import Rect
from repro.mv3r import MV3RTree

EVERYWHERE = Rect(0, 0, 10 ** 6, 10 ** 6)


def _drive(index, reports=2500, objects=35, seed=2):
    rng = random.Random(seed)
    t = 0
    history = []
    cur = {}
    for _ in range(reports):
        t += rng.randrange(0, 3)
        oid = rng.randrange(objects)
        x, y = rng.randrange(800), rng.randrange(800)
        if oid in cur:
            history.append((oid, *cur[oid], t))
        index.report(oid, x, y, t)
        cur[oid] = (x, y, t)
    return history, cur, t


def _oracle(history, cur, area, t_lo, t_hi):
    out = {(o, ts) for o, x, y, ts, te in history
           if ts <= t_hi and te > t_lo and area.contains(x, y)}
    out |= {(o, ts) for o, (x, y, ts) in cur.items()
            if ts <= t_hi and area.contains(x, y)}
    return out


@pytest.fixture(scope="module")
def loaded():
    index = MV3RTree(page_size=1024, buffer_capacity=512)
    history, cur, now = _drive(index)
    return index, history, cur, now


class TestQueries:
    def test_interval_mvr_path_matches_oracle(self, loaded):
        index, history, cur, now = loaded
        rng = random.Random(5)
        for _ in range(40):
            x0, y0 = rng.randrange(600), rng.randrange(600)
            area = Rect(x0, y0, x0 + 150, y0 + 150)
            t_lo = rng.randrange(now + 1)
            t_hi = t_lo + rng.randrange(0, 1500)
            got = {(e.oid, e.s) for e in
                   index.query_interval(area, t_lo, t_hi, use_aux=False)}
            assert got == _oracle(history, cur, area, t_lo, t_hi)

    def test_interval_aux_path_matches_oracle(self, loaded):
        index, history, cur, now = loaded
        rng = random.Random(6)
        for _ in range(40):
            x0, y0 = rng.randrange(600), rng.randrange(600)
            area = Rect(x0, y0, x0 + 150, y0 + 150)
            t_lo = rng.randrange(now + 1)
            t_hi = t_lo + rng.randrange(0, 1500)
            got = {(e.oid, e.s) for e in
                   index.query_interval(area, t_lo, t_hi, use_aux=True)}
            assert got == _oracle(history, cur, area, t_lo, t_hi)

    def test_timeslice_matches_oracle(self, loaded):
        index, history, cur, now = loaded
        rng = random.Random(7)
        for _ in range(40):
            x0, y0 = rng.randrange(600), rng.randrange(600)
            area = Rect(x0, y0, x0 + 200, y0 + 200)
            t = rng.randrange(now + 1)
            got = {(e.oid, e.s) for e in index.query_timeslice(area, t)}
            assert got == _oracle(history, cur, area, t, t)

    def test_current_entries_have_none_duration(self, loaded):
        index, _, cur, now = loaded
        hits = index.query_timeslice(EVERYWHERE, now)
        current_hits = {e.oid for e in hits if e.d is None}
        assert current_hits == set(cur)

    def test_auto_routing_uses_aux_for_long_intervals(self, loaded):
        index, history, cur, now = loaded
        area = Rect(0, 0, 400, 400)
        auto = {(e.oid, e.s) for e in index.query_interval(area, 0, now)}
        assert auto == _oracle(history, cur, area, 0, now)


class TestStructure:
    def test_size_tracks_reports(self):
        index = MV3RTree(page_size=1024)
        _drive(index, reports=100, seed=3)
        assert len(index) == 100
        index.close()

    def test_aux_tree_populates_on_leaf_deaths(self, loaded):
        index, *_ = loaded
        assert index.aux is not None
        assert len(index.aux) > 0

    def test_without_aux_interval_still_correct(self):
        index = MV3RTree(page_size=1024, use_aux=False)
        history, cur, now = _drive(index, reports=800, seed=4)
        area = Rect(100, 100, 500, 500)
        got = {(e.oid, e.s) for e in index.query_interval(area, 0, now)}
        assert got == _oracle(history, cur, area, 0, now)
        index.close()

    def test_node_count_grows_without_reclamation(self):
        # The paper's point: MV3R's footprint only grows; there is no
        # window maintenance path at all.
        index = MV3RTree(page_size=1024)
        sizes = []
        rng = random.Random(11)
        t = 0
        for chunk in range(4):
            for _ in range(400):
                t += rng.randrange(0, 3)
                index.report(rng.randrange(20), rng.randrange(500),
                             rng.randrange(500), t)
            sizes.append(index.node_count())
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
        index.close()
