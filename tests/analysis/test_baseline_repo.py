"""The committed baseline is exact: linting the real src/ tree must
produce precisely the pinned findings — nothing new, nothing stale.

This is the same check CI's ``lint-invariants`` job runs; keeping it in
the suite means a finding introduced by any PR fails tier-1 tests too.
"""

from pathlib import Path

from repro.analysis import compare_to_baseline, lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_matches_committed_baseline():
    findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    diff = compare_to_baseline(findings, baseline)
    assert not diff.new, "new lint findings:\n" + "\n".join(
        finding.render() for finding in diff.new)
    assert not diff.stale, "stale baseline entries:\n" + "\n".join(diff.stale)


def test_baseline_is_small_and_explained():
    # The baseline exists to grandfather a handful of deliberate catalog
    # I/O sites, not to absorb new violations.  If it grows, fix the code
    # or add a justified suppression comment instead.
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    assert len(baseline) <= 5
    assert all(" R001 " in line for line in baseline)
