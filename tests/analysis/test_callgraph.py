"""The interprocedural layer: symbol table, import maps, call resolution.

These tests build :class:`ProjectContext` directly from in-memory
sources (the same path ``lint_sources`` uses) and assert on the graph
itself rather than on rule findings — the rules' own fixture tests live
in ``test_concurrency_rules.py``.
"""

import ast
import textwrap

from repro.analysis import ClassInfo, FunctionInfo, ProjectContext
from repro.analysis.callgraph import module_name_of, subpackage_of
from repro.analysis.runner import FileContext


def build(sources: dict[str, str]) -> ProjectContext:
    return ProjectContext(
        FileContext.from_source(textwrap.dedent(source), path)
        for path, source in sorted(sources.items()))


def call_in(fn: FunctionInfo, callee: str) -> ast.Call:
    """The first direct call site in ``fn`` whose rendered callee
    contains ``callee``."""
    for call in fn.direct_calls:
        if callee in ast.unparse(call.func):
            return call
    raise AssertionError(f"no call to {callee!r} in {fn.qualname}")


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_of(("serve", "app.py")) == "serve.app"

    def test_init_names_the_package(self):
        assert module_name_of(("core", "__init__.py")) == "core"

    def test_top_level_file(self):
        assert module_name_of(("cli.py",)) == "cli"

    def test_subpackage(self):
        assert subpackage_of("serve.app") == "serve"
        assert subpackage_of("cli") == ""


class TestSymbolTable:
    SOURCES = {
        "src/repro/serve/app.py": """\
            class App:
                def handle(self):
                    return self.render()

                def render(self):
                    return 1

                async def arun(self):
                    await self.aclose()

                async def aclose(self):
                    pass

            def main():
                app = App()
                return app.handle()
            """,
    }

    def test_methods_and_functions_get_distinct_qualnames(self):
        project = build(self.SOURCES)
        assert "serve.app.App.handle" in project.functions
        assert "serve.app.main" in project.functions
        assert "serve.app.App" in project.classes
        cls = project.classes["serve.app.App"]
        assert set(cls.methods) == {"handle", "render", "arun", "aclose"}

    def test_async_tagging(self):
        project = build(self.SOURCES)
        assert project.functions["serve.app.App.arun"].is_async
        assert not project.functions["serve.app.App.handle"].is_async

    def test_self_method_resolves(self):
        project = build(self.SOURCES)
        handle = project.functions["serve.app.App.handle"]
        target = project.resolve_call(handle, call_in(handle, "render"))
        assert isinstance(target, FunctionInfo)
        assert target.qualname == "serve.app.App.render"

    def test_awaited_calls_tracked(self):
        project = build(self.SOURCES)
        arun = project.functions["serve.app.App.arun"]
        call = call_in(arun, "aclose")
        assert call in arun.awaited_calls

    def test_local_constructor_types_the_receiver(self):
        project = build(self.SOURCES)
        main = project.functions["serve.app.main"]
        ctor = project.resolve_call(main, call_in(main, "App"))
        assert isinstance(ctor, ClassInfo)
        method = project.resolve_call(main, call_in(main, "app.handle"))
        assert isinstance(method, FunctionInfo)
        assert method.qualname == "serve.app.App.handle"


class TestImportResolution:
    SOURCES = {
        "src/repro/engine/helper.py": """\
            def deep():
                return 0
            """,
        "src/repro/engine/worker.py": """\
            from .helper import deep
            from repro.engine import helper as h

            def run():
                return deep() + h.deep()
            """,
    }

    def test_relative_and_absolute_imports_resolve(self):
        project = build(self.SOURCES)
        run = project.functions["engine.worker.run"]
        direct = project.resolve_call(run, call_in(run, "deep"))
        assert isinstance(direct, FunctionInfo)
        assert direct.qualname == "engine.helper.deep"
        aliased = project.resolve_call(run, call_in(run, "h.deep"))
        assert aliased is direct

    def test_self_attr_constructor_types_the_attribute(self):
        project = build({
            "src/repro/engine/wal.py": """\
                class WalWriter:
                    def commit(self):
                        pass
                """,
            "src/repro/engine/worker.py": """\
                from .wal import WalWriter

                class Worker:
                    def __init__(self):
                        self.writer = WalWriter()

                    def flush(self):
                        self.writer.commit()
                """,
        })
        flush = project.functions["engine.worker.Worker.flush"]
        target = project.resolve_call(flush, call_in(flush, "commit"))
        assert isinstance(target, FunctionInfo)
        assert target.qualname == "engine.wal.WalWriter.commit"


class TestConservatism:
    def test_unknown_callee_resolves_to_none(self):
        project = build({
            "src/repro/serve/app.py": """\
                def run(conn):
                    conn.execute("x")
                    mystery()
                """,
        })
        run = project.functions["serve.app.run"]
        assert project.resolve_call(run, call_in(run, "execute")) is None
        assert project.resolve_call(run, call_in(run, "mystery")) is None

    def test_nested_defs_belong_to_their_own_scope(self):
        project = build({
            "src/repro/serve/app.py": """\
                def outer():
                    def inner():
                        helper()
                    return inner

                def helper():
                    pass
                """,
        })
        outer = project.functions["serve.app.outer"]
        inner = project.functions["serve.app.outer.<locals>.inner"]
        # The helper() call sits in inner's direct region, not outer's.
        assert not any("helper" in ast.unparse(c.func)
                       for c in outer.direct_calls)
        target = project.resolve_call(inner, call_in(inner, "helper"))
        assert isinstance(target, FunctionInfo)
        assert target.qualname == "serve.app.helper"
        assert outer.nested == [inner]
