"""The lint framework itself: findings, registry, baseline, CLI driver."""

import argparse

import pytest

from repro.analysis import (Rule, all_rules, compare_to_baseline, get_rule,
                            load_baseline, register, write_baseline)
from repro.analysis.findings import Finding
from repro.analysis.main import add_lint_arguments, run_lint
from repro.analysis.registry import _REGISTRY


def make_finding(**overrides):
    base = dict(path="src/repro/core/x.py", line=3, col=4,
                rule_id="R001", message="raw page I/O")
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_render_parse_roundtrip(self):
        finding = make_finding()
        assert finding.render() == "src/repro/core/x.py:3:4: R001 raw page I/O"
        assert Finding.parse(finding.render()) == finding

    def test_ordering_is_positional(self):
        early = make_finding(line=1)
        late = make_finding(line=9)
        assert sorted([late, early]) == [early, late]


class TestRegistry:
    def test_builtin_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == ["R001", "R002", "R003", "R004", "R005", "R006",
                       "R007"]
        assert ids == sorted(ids)

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.title, rule.rule_id
            assert rule.rationale, rule.rule_id

    def test_get_rule(self):
        assert get_rule("R003").rule_id == "R003"
        with pytest.raises(KeyError):
            get_rule("R999")

    def test_duplicate_id_rejected(self):
        class Clash(Rule):
            rule_id = "R001"

        with pytest.raises(ValueError, match="duplicate rule id"):
            register(Clash)
        assert _REGISTRY["R001"] is not Clash

    def test_missing_id_rejected(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule_id"):
            register(Anonymous)


class TestBaseline:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.txt"
        findings = [make_finding(line=9), make_finding(line=1)]
        write_baseline(path, findings)
        assert load_baseline(path) == [f.render() for f in
                                       sorted(findings)]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == []

    def test_compare_splits_new_pinned_stale(self):
        pinned = make_finding(line=1)
        fresh = make_finding(line=2)
        gone = make_finding(line=3)
        diff = compare_to_baseline(
            [pinned, fresh], [pinned.render(), gone.render()])
        assert diff.new == (fresh,)
        assert diff.pinned == (pinned,)
        assert diff.stale == (gone.render(),)
        assert not diff.ok
        clean = compare_to_baseline([pinned], [pinned.render()])
        assert clean.ok


def parse_lint_args(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


class TestRunLint:
    BAD_SOURCE = ("def scrub(page):\n"
                  "    try:\n"
                  "        check(page)\n"
                  "    except Exception:\n"
                  "        pass\n")

    def write_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "storage"
        pkg.mkdir(parents=True)
        (pkg / "scrub.py").write_text(self.BAD_SOURCE)
        return tmp_path / "src"

    def test_new_finding_fails(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--baseline", str(tmp_path / "baseline.txt")])
        assert run_lint(args) == 1
        out = capsys.readouterr().out
        assert "R006" in out and "1 new finding(s)" in out

    def test_update_then_clean(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        baseline = str(tmp_path / "baseline.txt")
        assert run_lint(parse_lint_args(
            [str(src), "--baseline", baseline, "--update-baseline"])) == 0
        assert run_lint(parse_lint_args(
            [str(src), "--baseline", baseline])) == 0
        assert "pinned finding(s) allowed" in capsys.readouterr().out

    def test_stale_entry_warns_but_passes(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "storage"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("src/repro/storage/old.py:1:0: R006 gone\n")
        args = parse_lint_args(
            [str(tmp_path / "src"), "--baseline", str(baseline)])
        assert run_lint(args) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_select_restricts_rules(self, tmp_path):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--select", "R001"])
        assert run_lint(args) == 0

    def test_list_rules(self, capsys):
        assert run_lint(parse_lint_args(["--list-rules"])) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rule_id in out
