"""The lint framework itself: findings, registry, baseline, CLI driver."""

import argparse

import pytest

from repro.analysis import (Rule, all_rules, compare_to_baseline, get_rule,
                            load_baseline, register, write_baseline)
from repro.analysis.findings import Finding
from repro.analysis.main import add_lint_arguments, run_lint
from repro.analysis.registry import _REGISTRY


def make_finding(**overrides):
    base = dict(path="src/repro/core/x.py", line=3, col=4,
                rule_id="R001", message="raw page I/O")
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_render_parse_roundtrip(self):
        finding = make_finding()
        assert finding.render() == "src/repro/core/x.py:3:4: R001 raw page I/O"
        assert Finding.parse(finding.render()) == finding

    def test_ordering_is_positional(self):
        early = make_finding(line=1)
        late = make_finding(line=9)
        assert sorted([late, early]) == [early, late]


class TestRegistry:
    def test_builtin_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == ["R001", "R002", "R003", "R004", "R005", "R006",
                       "R007", "R008", "R009", "R010", "R011"]
        assert ids == sorted(ids)

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.title, rule.rule_id
            assert rule.rationale, rule.rule_id

    def test_get_rule(self):
        assert get_rule("R003").rule_id == "R003"
        with pytest.raises(KeyError):
            get_rule("R999")

    def test_duplicate_id_rejected(self):
        class Clash(Rule):
            rule_id = "R001"

        with pytest.raises(ValueError, match="duplicate rule id"):
            register(Clash)
        assert _REGISTRY["R001"] is not Clash

    def test_missing_id_rejected(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule_id"):
            register(Anonymous)


class TestBaseline:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.txt"
        findings = [make_finding(line=9), make_finding(line=1)]
        write_baseline(path, findings)
        assert load_baseline(path) == [f.render() for f in
                                       sorted(findings)]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == []

    def test_compare_splits_new_pinned_stale(self):
        pinned = make_finding(line=1)
        fresh = make_finding(line=2)
        gone = make_finding(line=3)
        diff = compare_to_baseline(
            [pinned, fresh], [pinned.render(), gone.render()])
        assert diff.new == (fresh,)
        assert diff.pinned == (pinned,)
        assert diff.stale == (gone.render(),)
        assert not diff.ok
        clean = compare_to_baseline([pinned], [pinned.render()])
        assert clean.ok


def parse_lint_args(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


class TestRunLint:
    BAD_SOURCE = ("def scrub(page):\n"
                  "    try:\n"
                  "        check(page)\n"
                  "    except Exception:\n"
                  "        pass\n")

    def write_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "storage"
        pkg.mkdir(parents=True)
        (pkg / "scrub.py").write_text(self.BAD_SOURCE)
        return tmp_path / "src"

    def test_new_finding_fails(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--baseline", str(tmp_path / "baseline.txt")])
        assert run_lint(args) == 1
        out = capsys.readouterr().out
        assert "R006" in out and "1 new finding(s)" in out

    def test_update_then_clean(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        baseline = str(tmp_path / "baseline.txt")
        assert run_lint(parse_lint_args(
            [str(src), "--baseline", baseline, "--update-baseline"])) == 0
        assert run_lint(parse_lint_args(
            [str(src), "--baseline", baseline])) == 0
        assert "pinned finding(s) allowed" in capsys.readouterr().out

    def test_stale_entry_fails(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "storage"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("src/repro/storage/old.py:1:0: R006 gone\n")
        args = parse_lint_args(
            [str(tmp_path / "src"), "--baseline", str(baseline)])
        assert run_lint(args) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "1 stale baseline entry" in out

    def test_update_baseline_clears_stale_and_passes(self, tmp_path):
        src = tmp_path / "src" / "repro" / "storage"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("src/repro/storage/old.py:1:0: R006 gone\n")
        assert run_lint(parse_lint_args(
            [str(tmp_path / "src"), "--baseline", str(baseline),
             "--update-baseline"])) == 0
        assert run_lint(parse_lint_args(
            [str(tmp_path / "src"), "--baseline", str(baseline)])) == 0

    def test_update_baseline_preserves_header_comments(self, tmp_path):
        src = self.write_tree(tmp_path)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "# custom justification block\n"
            "# scrub.py swallow is deliberate: probing for torn pages\n"
            "\n"
            "src/repro/storage/old.py:1:0: R006 gone\n")
        assert run_lint(parse_lint_args(
            [str(src), "--baseline", str(baseline),
             "--update-baseline"])) == 0
        text = baseline.read_text()
        assert text.startswith("# custom justification block\n"
                               "# scrub.py swallow is deliberate")
        assert "old.py" not in text      # stale entry dropped
        assert "R006" in text            # live finding re-pinned

    def test_select_restricts_rules(self, tmp_path):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--select", "R001"])
        assert run_lint(args) == 0

    def test_list_rules(self, capsys):
        assert run_lint(parse_lint_args(["--list-rules"])) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006",
                        "R007", "R008", "R009", "R010", "R011"):
            assert rule_id in out


class TestOutputFormats:
    def write_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "storage"
        pkg.mkdir(parents=True)
        (pkg / "scrub.py").write_text(TestRunLint.BAD_SOURCE)
        return tmp_path / "src"

    def test_github_format_emits_workflow_commands(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--format", "github"])
        assert run_lint(args) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=R006" in out

    def test_github_escapes_newlines_and_commas(self):
        from repro.analysis.formats import render_github
        finding = make_finding(path="src/a,b.py",
                               message="line one\nline two")
        [line] = render_github([finding])
        assert "\n" not in line
        assert "%0A" in line
        assert "file=src/a%2Cb.py" in line

    def test_sarif_format_is_valid_json(self, tmp_path, capsys):
        import json
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--format", "sarif"])
        assert run_lint(args) == 1
        out = capsys.readouterr().out
        log = json.loads(out[:out.rindex("}") + 1])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        result = run["results"][0]
        assert result["ruleId"] == "R006"
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "R006"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("scrub.py")

    def test_stale_entry_rendered_as_github_error(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "storage"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("src/repro/storage/old.py:1:0: R006 gone\n")
        args = parse_lint_args(
            [str(tmp_path / "src"), "--baseline", str(baseline),
             "--format", "github"])
        assert run_lint(args) == 1
        assert "::error title=stale baseline entry::" \
            in capsys.readouterr().out


class TestParallelRunner:
    def write_tree(self, tmp_path, files=4):
        pkg = tmp_path / "src" / "repro" / "storage"
        pkg.mkdir(parents=True)
        for index in range(files):
            (pkg / f"mod{index}.py").write_text(TestRunLint.BAD_SOURCE)
        return tmp_path / "src"

    def test_jobs_matches_serial_findings(self, tmp_path):
        from repro.analysis import lint_paths
        src = self.write_tree(tmp_path)
        serial = lint_paths([src], root=tmp_path)
        parallel = lint_paths([src], root=tmp_path, jobs=2)
        assert serial == parallel
        assert len(serial) == 4

    def test_jobs_flag_end_to_end(self, tmp_path, capsys):
        src = self.write_tree(tmp_path)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--jobs", "2"])
        assert run_lint(args) == 1
        assert "4 new finding(s)" in capsys.readouterr().out

    def test_bad_jobs_rejected(self, tmp_path):
        src = self.write_tree(tmp_path, files=1)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--jobs", "0"])
        assert run_lint(args) == 2

    def test_verbose_reports_wall_time(self, tmp_path, capsys):
        src = self.write_tree(tmp_path, files=1)
        args = parse_lint_args(
            [str(src), "--no-baseline", "--verbose"])
        assert run_lint(args) == 1
        err = capsys.readouterr().err
        assert "[repro lint]" in err and "wall" in err
