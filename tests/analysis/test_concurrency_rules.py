"""Fixture tests for the interprocedural concurrency/durability rules.

Each rule gets at least three snippets it must flag and three
closely-related snippets it must pass.  Single-module fixtures go
through :func:`lint_source`; the call chains that span modules (the
whole point of R008/R009's interprocedural reach) go through
:func:`lint_sources` with a dict of fake in-repo paths.
"""

import textwrap

from repro.analysis import all_rules, lint_source, lint_sources


def lint(source: str, path: str, rule_id: str):
    rules = all_rules(only=lambda cls: cls.rule_id == rule_id)
    return lint_source(textwrap.dedent(source), path, rules=rules)


def lint_many(sources: dict[str, str], rule_id: str):
    rules = all_rules(only=lambda cls: cls.rule_id == rule_id)
    return lint_sources({path: textwrap.dedent(source)
                         for path, source in sources.items()},
                        rules=rules)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# -- R008: lock-acquisition order is cycle-free -------------------------------


class TestR008LockOrder:
    def test_must_flag_opposite_nesting_cycle(self):
        source = """\
            class Engine:
                def read(self):
                    with self._mutex:
                        with self._cache_lock:
                            return self._data

                def refresh(self):
                    with self._cache_lock:
                        with self._mutex:
                            self._data = {}
            """
        findings = lint(source, "src/repro/engine/cache.py", "R008")
        assert rule_ids(findings) == ["R008"]
        assert "lock-order cycle" in findings[0].message

    def test_must_flag_interprocedural_self_deadlock(self):
        source = """\
            class Engine:
                def save(self):
                    with self._mutex:
                        self._flush()

                def _flush(self):
                    self._mutex.acquire()
            """
        findings = lint(source, "src/repro/engine/store.py", "R008")
        assert rule_ids(findings) == ["R008"]
        assert "re-acquired while already held" in findings[0].message

    def test_must_flag_engine_lock_under_gate_exclusive(self):
        findings = lint_many({
            "src/repro/engine/state.py": """\
                def flush_state(state):
                    with state.flush_lock:
                        state.sync()
                """,
            "src/repro/serve/app.py": """\
                from repro.engine.state import flush_state

                class App:
                    async def slide(self, state):
                        async with self._gate.write():
                            flush_state(state)
                """,
        }, "R008")
        assert rule_ids(findings) == ["R008"]
        assert "gate's exclusive side" in findings[0].message
        assert findings[0].path == "src/repro/serve/app.py"

    def test_must_pass_consistent_order(self):
        source = """\
            class Engine:
                def read(self):
                    with self._mutex:
                        with self._cache_lock:
                            return self._data

                def refresh(self):
                    with self._mutex:
                        with self._cache_lock:
                            self._data = {}
            """
        assert lint(source, "src/repro/engine/cache.py", "R008") == []

    def test_must_pass_reentrant_reacquire(self):
        source = """\
            class Engine:
                def save(self):
                    with self._rlock:
                        self._flush()

                def _flush(self):
                    with self._rlock:
                        pass
            """
        assert lint(source, "src/repro/engine/store.py", "R008") == []

    def test_must_pass_engine_lock_under_gate_shared(self):
        findings = lint_many({
            "src/repro/engine/state.py": """\
                def snapshot(state):
                    with state.snap_lock:
                        return state.data
                """,
            "src/repro/serve/app.py": """\
                from repro.engine.state import snapshot

                class App:
                    async def read(self, state):
                        async with self._gate.read():
                            return snapshot(state)
                """,
        }, "R008")
        assert findings == []

    def test_must_pass_unknown_callee_under_lock(self):
        source = """\
            class Engine:
                def save(self, conn):
                    with self._mutex:
                        conn.execute("flush")
            """
        assert lint(source, "src/repro/engine/store.py", "R008") == []


# -- R009: no blocking call reachable from a serve/ coroutine -----------------


class TestR009AsyncBlocking:
    def test_must_flag_direct_sleep(self):
        source = """\
            import time

            async def handle(request):
                time.sleep(0.1)
            """
        findings = lint(source, "src/repro/serve/app.py", "R009")
        assert rule_ids(findings) == ["R009"]
        assert "time.sleep" in findings[0].message
        assert "directly in async def" in findings[0].message

    def test_must_flag_transitive_two_hop_path_across_modules(self):
        findings = lint_many({
            "src/repro/serve/util.py": """\
                import time

                def deep():
                    time.sleep(0.5)
                """,
            "src/repro/serve/app.py": """\
                from .util import deep

                def helper():
                    deep()

                async def handle(request):
                    helper()
                """,
        }, "R009")
        assert rule_ids(findings) == ["R009"]
        assert findings[0].path == "src/repro/serve/util.py"
        assert ("reachable from async def serve.app.handle "
                "via serve.app.helper -> serve.util.deep"
                in findings[0].message)

    def test_must_flag_unawaited_engine_call(self):
        source = """\
            class Facade:
                async def query(self, q):
                    return self.engine.query_interval(q)
            """
        findings = lint(source, "src/repro/serve/facade.py", "R009")
        assert rule_ids(findings) == ["R009"]
        assert "outside the Executor seam" in findings[0].message

    def test_must_flag_blocking_lock_acquire(self):
        source = """\
            async def handle(self):
                self._mutex.acquire()
            """
        findings = lint(source, "src/repro/serve/app.py", "R009")
        assert rule_ids(findings) == ["R009"]
        assert "lock .acquire()" in findings[0].message

    def test_must_pass_executor_seam(self):
        source = """\
            import time

            def blocking_work():
                time.sleep(1.0)

            async def handle(loop):
                return await loop.run_in_executor(None, blocking_work)
            """
        assert lint(source, "src/repro/serve/app.py", "R009") == []

    def test_must_pass_awaited_facade_call(self):
        source = """\
            class Facade:
                async def query(self, q):
                    return await self.engine.query_interval(q)
            """
        assert lint(source, "src/repro/serve/facade.py", "R009") == []

    def test_must_pass_asyncio_sleep(self):
        source = """\
            import asyncio

            async def backoff():
                await asyncio.sleep(0.1)
            """
        assert lint(source, "src/repro/serve/retry.py", "R009") == []

    def test_must_pass_blocking_code_in_submitted_closure(self):
        source = """\
            import time

            async def handle(executor):
                def work():
                    time.sleep(1.0)
                return executor.submit(work)
            """
        assert lint(source, "src/repro/serve/app.py", "R009") == []

    def test_must_pass_outside_serve(self):
        source = """\
            import time

            async def tick():
                time.sleep(0.1)
            """
        assert lint(source, "src/repro/bench/clock.py", "R009") == []


# -- R010: fsync discipline on durable-write paths ----------------------------


class TestR010FsyncDiscipline:
    def test_must_flag_write_onto_final_path(self):
        source = """\
            def save_manifest(fops, path, data):
                fops.write_file(path, data)
            """
        findings = lint(source, "src/repro/storage/manifest.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert "final path" in findings[0].message

    def test_must_flag_replace_without_dir_fsync(self):
        source = """\
            def flip(fops, tmp, path):
                fops.replace(tmp, path)
            """
        findings = lint(source, "src/repro/storage/manifest.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert "directory" in findings[0].message

    def test_must_flag_append_without_fsync_barrier(self):
        source = """\
            def append_record(fops, path, record):
                fops.append_file(path, record)
            """
        findings = lint(source, "src/repro/engine/journal.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert "fsync_file barrier" in findings[0].message

    def test_must_flag_wal_log_without_commit(self):
        source = """\
            class Worker:
                def apply(self, batch):
                    for record in batch:
                        self.wal.log(record)
                    return len(batch)
            """
        findings = lint(source, "src/repro/engine/worker.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert ".commit()" in findings[0].message

    def test_must_flag_copy_without_dir_fsync(self):
        source = """\
            def snapshot_shard(fops, src, dst):
                fops.copy_file(src, dst)
            """
        findings = lint(source, "src/repro/engine/engine.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert "directory entry" in findings[0].message

    def test_must_flag_mkdir_without_dir_fsync(self):
        source = """\
            def stage_generation(fops, gen_dir):
                fops.mkdir(gen_dir)
            """
        findings = lint(source, "src/repro/engine/reshard.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert ".mkdir()" in findings[0].message

    def test_must_flag_rmdir_without_dir_fsync(self):
        source = """\
            def drop_generation(fops, gen_dir):
                fops.rmdir(gen_dir)
            """
        findings = lint(source, "src/repro/engine/reshard.py", "R010")
        assert rule_ids(findings) == ["R010"]
        assert ".rmdir()" in findings[0].message

    def test_must_pass_full_discipline(self):
        source = """\
            def save_manifest(fops, tmp_path, path, parent, data):
                fops.write_file(tmp_path, data)
                fops.replace(tmp_path, path)
                fops.fsync_dir(parent)
            """
        assert lint(source, "src/repro/storage/manifest.py", "R010") == []

    def test_must_pass_fsync_in_later_helper(self):
        source = """\
            class Journal:
                def append(self, record):
                    self.fops.append_file(self.path, record)
                    self._barrier()

                def _barrier(self):
                    self.fops.fsync_file(self.path)
            """
        assert lint(source, "src/repro/engine/journal.py", "R010") == []

    def test_must_pass_snapshot_copy_with_dir_fsync(self):
        source = """\
            def snapshot_shards(fops, paths, snap_dir, parent):
                fops.mkdir(snap_dir)
                for src, dst in paths:
                    fops.copy_file(src, dst)
                fops.fsync_dir(snap_dir)
                fops.fsync_dir(parent)
            """
        assert lint(source, "src/repro/engine/engine.py", "R010") == []

    def test_must_pass_dir_fsync_in_later_helper(self):
        source = """\
            class Build:
                def stage(self):
                    self.fops.mkdir(self.gen_dir)
                    self._settle()

                def _settle(self):
                    self.fops.fsync_dir(self.parent)
            """
        assert lint(source, "src/repro/engine/reshard.py", "R010") == []

    def test_must_pass_wal_group_commit(self):
        source = """\
            class Worker:
                def apply(self, batch):
                    for record in batch:
                        self.wal.log(record)
                    self.wal.commit()
                    return len(batch)
            """
        assert lint(source, "src/repro/engine/worker.py", "R010") == []

    def test_must_pass_outside_scope(self):
        source = """\
            def save(fops, path, data):
                fops.write_file(path, data)
            """
        assert lint(source, "src/repro/bench/report.py", "R010") == []


# -- R011: no await while holding a sync lock ---------------------------------


class TestR011AwaitHoldingLock:
    def test_must_flag_await_under_sync_lock(self):
        source = """\
            class Facade:
                async def refresh(self):
                    with self._mutex:
                        await self._reload()
            """
        findings = lint(source, "src/repro/serve/facade.py", "R011")
        assert rule_ids(findings) == ["R011"]
        assert "'mutex'" in findings[0].message

    def test_must_flag_in_engine_subpackage(self):
        source = """\
            class Pool:
                async def drain(self):
                    with self._state_lock:
                        await self._queue.get()
            """
        findings = lint(source, "src/repro/engine/pool.py", "R011")
        assert rule_ids(findings) == ["R011"]

    def test_must_flag_every_await_in_the_block(self):
        source = """\
            async def swap(lock, queue):
                with lock:
                    first = await queue.get()
                    second = await queue.get()
                return first, second
            """
        findings = lint(source, "src/repro/serve/swap.py", "R011")
        assert rule_ids(findings) == ["R011", "R011"]
        assert findings[0].line == 3 and findings[1].line == 4

    def test_must_pass_async_with_gate(self):
        source = """\
            class Facade:
                async def read(self, q):
                    async with self._gate.read():
                        return await self._query(q)
            """
        assert lint(source, "src/repro/serve/facade.py", "R011") == []

    def test_must_pass_await_outside_the_lock(self):
        source = """\
            class Facade:
                async def refresh(self):
                    with self._mutex:
                        self._dirty = True
                    await self._reload()
            """
        assert lint(source, "src/repro/serve/facade.py", "R011") == []

    def test_must_pass_nested_coroutine_under_lock(self):
        source = """\
            class Facade:
                async def schedule(self):
                    with self._mutex:
                        async def later():
                            await self._reload()
                        self._pending = later
            """
        assert lint(source, "src/repro/serve/facade.py", "R011") == []

    def test_must_pass_outside_scope(self):
        source = """\
            async def swap(lock, queue):
                with lock:
                    return await queue.get()
            """
        assert lint(source, "src/repro/core/swap.py", "R011") == []
