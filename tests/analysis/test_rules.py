"""Fixture pairs for every lint rule: a snippet the rule must flag and a
closely-related snippet it must pass.

Each fixture is linted through :func:`repro.analysis.lint_source` with a
fake in-repo path, because several rules scope themselves by subpackage
(``src/repro/<sub>/...``).
"""

import textwrap

from repro.analysis import all_rules, lint_source


def lint(source: str, path: str, rule_id: str | None = None):
    rules = (all_rules(only=lambda cls: cls.rule_id == rule_id)
             if rule_id else None)
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# -- R001: raw page I/O stays inside storage/ ---------------------------------


class TestR001RawPageIO:
    FLAGGED = """\
        class Catalog:
            def load(self):
                data = self.pager.read(7)
                self.pager.write(7, data)
        """

    def test_must_flag_outside_storage(self):
        findings = lint(self.FLAGGED, "src/repro/core/catalog.py", "R001")
        assert rule_ids(findings) == ["R001", "R001"]
        assert findings[0].line == 3
        assert "self.pager.read" in findings[0].message

    def test_must_pass_inside_storage(self):
        findings = lint(self.FLAGGED, "src/repro/storage/catalog.py", "R001")
        assert findings == []

    def test_must_pass_buffer_pool_io(self):
        source = """\
            def load(pool):
                return pool.read(7)
            """
        assert lint(source, "src/repro/core/catalog.py", "R001") == []

    def test_device_receiver_flagged(self):
        source = """\
            def dump(device):
                return device.read(0)
            """
        findings = lint(source, "src/repro/engine/dump.py", "R001")
        assert rule_ids(findings) == ["R001"]


# -- R002: no nondeterminism in the index stack -------------------------------


class TestR002Nondeterminism:
    FLAGGED = """\
        import time

        def stamp():
            return time.monotonic()
        """

    def test_must_flag_in_core(self):
        findings = lint(self.FLAGGED, "src/repro/core/clock.py", "R002")
        assert rule_ids(findings) == ["R002"]
        assert findings[0].line == 1

    def test_must_pass_in_bench(self):
        assert lint(self.FLAGGED, "src/repro/bench/clock.py", "R002") == []

    def test_must_flag_from_import_and_urandom(self):
        source = """\
            from random import shuffle
            import os

            def salt():
                return os.urandom(8)
            """
        findings = lint(source, "src/repro/storage/salt.py", "R002")
        assert rule_ids(findings) == ["R002", "R002"]
        assert {f.line for f in findings} == {1, 5}

    def test_must_pass_benign_imports(self):
        source = """\
            import os
            import struct
            from os import fspath
            """
        assert lint(source, "src/repro/btree/x.py", "R002") == []

    def test_must_flag_in_serve(self):
        # The serving layer is in scope: linger timers and retry
        # jitter must come through injected seams, not module imports.
        findings = lint(self.FLAGGED, "src/repro/serve/linger.py",
                        "R002")
        assert rule_ids(findings) == ["R002"]

    def test_must_pass_asyncio_in_serve(self):
        source = """\
            import asyncio
            import threading

            def loop_time():
                return asyncio.get_running_loop().time()
            """
        assert lint(source, "src/repro/serve/timing.py", "R002") == []


# -- R003: typed errors only in storage/ and engine/ --------------------------


class TestR003TypedErrors:
    FLAGGED = """\
        def commit(ok):
            if not ok:
                raise RuntimeError("commit failed")
        """

    def test_must_flag_in_storage(self):
        findings = lint(self.FLAGGED, "src/repro/storage/commit.py", "R003")
        assert rule_ids(findings) == ["R003"]
        assert "RuntimeError" in findings[0].message

    def test_must_pass_outside_scope(self):
        assert lint(self.FLAGGED, "src/repro/bench/commit.py", "R003") == []

    def test_must_pass_typed_and_validation_raises(self):
        source = """\
            from .errors import ChecksumError

            def check(page, size):
                if size <= 0:
                    raise ValueError("size must be positive")
                raise ChecksumError(page)
            """
        assert lint(source, "src/repro/storage/check.py", "R003") == []

    def test_bare_reraise_allowed(self):
        source = """\
            def passthrough(fn):
                try:
                    fn()
                except KeyError:
                    raise
            """
        assert lint(source, "src/repro/engine/x.py", "R003") == []


# -- R004: acquisitions lifecycle-managed -------------------------------------


class TestR004ResourceGuard:
    def test_must_flag_unguarded_open(self):
        source = """\
            def head(path):
                handle = open(path)
                return handle.readline()
            """
        findings = lint(source, "src/repro/bench/head.py", "R004")
        assert rule_ids(findings) == ["R004"]
        assert findings[0].line == 2

    def test_must_pass_with_statement(self):
        source = """\
            def head(path):
                with open(path) as handle:
                    return handle.readline()
            """
        assert lint(source, "src/repro/bench/head.py", "R004") == []

    def test_must_pass_try_finally_close(self):
        source = """\
            def head(path):
                handle = open(path)
                try:
                    return handle.readline()
                finally:
                    handle.close()
            """
        assert lint(source, "src/repro/bench/head.py", "R004") == []

    def test_must_pass_ownership_transfer(self):
        source = """\
            def make(path, page_size):
                return FilePageDevice(path, page_size)
            """
        assert lint(source, "src/repro/storage/make.py", "R004") == []

    def test_must_pass_exit_stack(self):
        source = """\
            def run(stack, spec):
                executor = stack.enter_context(resolve_executor(spec))
                return executor
            """
        assert lint(source, "src/repro/engine/run.py", "R004") == []

    def test_must_pass_close_on_error_guard(self):
        source = """\
            def build(path, config):
                index = SWSTIndex(path, config)
                try:
                    index.extend([])
                except BaseException:
                    index.close()
                    raise
                return index
            """
        assert lint(source, "src/repro/bench/build.py", "R004") == []

    def test_must_flag_unguarded_constructor(self):
        source = """\
            def build(path, config):
                index = SWSTIndex(path, config)
                index.extend([])
                return index
            """
        findings = lint(source, "src/repro/bench/build.py", "R004")
        assert rule_ids(findings) == ["R004"]


# -- R005: executor tasks must not mutate closed-over state -------------------


class TestR005ExecutorClosures:
    def test_must_flag_mutating_lambda(self):
        source = """\
            def gather(executor, shards):
                results = []
                executor.map(lambda s: results.append(s.count()), shards)
                return results
            """
        findings = lint(source, "src/repro/engine/gather.py", "R005")
        assert rule_ids(findings) == ["R005"]
        assert "results" in findings[0].message

    def test_must_pass_pure_lambda(self):
        source = """\
            def gather(executor, shards, q):
                return executor.map(lambda s: s.query(q), shards)
            """
        assert lint(source, "src/repro/engine/gather.py", "R005") == []

    def test_must_flag_nested_def_nonlocal(self):
        source = """\
            def gather(executor, shards):
                total = 0

                def task(shard):
                    nonlocal total
                    total += shard.count()

                executor.map(task, shards)
                return total
            """
        findings = lint(source, "src/repro/engine/gather.py", "R005")
        assert rule_ids(findings) == ["R005"]

    def test_must_pass_local_mutation_in_task(self):
        source = """\
            def gather(executor, shards):
                def task(shard):
                    rows = []
                    rows.append(shard.count())
                    return rows

                return executor.map(task, shards)
            """
        assert lint(source, "src/repro/engine/gather.py", "R005") == []

    def test_must_flag_attribute_store(self):
        source = """\
            def gather(self, executor, shards):
                executor.map(lambda s: setattr_free(self), shards)
                executor.submit(lambda s: s.close(), shards)
                def task(shard):
                    self.last = shard
                executor.map(task, shards)
            """
        findings = lint(source, "src/repro/engine/gather.py", "R005")
        assert rule_ids(findings) == ["R005"]
        assert "'self'" in findings[0].message


# -- R006: no broad except swallowing corruption errors -----------------------


class TestR006SwallowedErrors:
    def test_must_flag_silent_broad_handler(self):
        source = """\
            def scrub(page):
                try:
                    check(page)
                except Exception:
                    pass
            """
        findings = lint(source, "src/repro/storage/scrub.py", "R006")
        assert rule_ids(findings) == ["R006"]
        assert findings[0].line == 4

    def test_must_flag_bare_except(self):
        source = """\
            def scrub(page):
                try:
                    check(page)
                except:
                    return None
            """
        findings = lint(source, "src/repro/core/scrub.py", "R006")
        assert rule_ids(findings) == ["R006"]

    def test_must_pass_reraise(self):
        source = """\
            def scrub(page):
                try:
                    check(page)
                except BaseException:
                    cleanup()
                    raise
            """
        assert lint(source, "src/repro/storage/scrub.py", "R006") == []

    def test_must_pass_bound_name_used(self):
        source = """\
            def scrub(page, log):
                try:
                    check(page)
                except Exception as exc:
                    log.append(exc)
            """
        assert lint(source, "src/repro/storage/scrub.py", "R006") == []

    def test_must_pass_narrow_handler(self):
        source = """\
            def scrub(page):
                try:
                    check(page)
                except struct.error:
                    return None
            """
        assert lint(source, "src/repro/storage/scrub.py", "R006") == []

    def test_bound_but_unused_still_flagged(self):
        source = """\
            def scrub(page):
                try:
                    check(page)
                except Exception as exc:
                    return None
            """
        findings = lint(source, "src/repro/storage/scrub.py", "R006")
        assert rule_ids(findings) == ["R006"]


# -- R007: query plans are immutable after construction -----------------------


class TestR007PlanPurity:
    def test_subscript_store_flagged(self):
        source = """\
            def tweak(plan):
                plan.column_of[3] = None
            """
        findings = lint(source, "src/repro/core/index.py", "R007")
        assert rule_ids(findings) == ["R007"]
        assert "plan.column_of" in findings[0].message

    def test_attribute_store_through_holder_flagged(self):
        source = """\
            def tweak(entry):
                entry.plan.q_lo = 0
            """
        findings = lint(source, "src/repro/engine/engine.py", "R007")
        assert rule_ids(findings) == ["R007"]

    def test_legacy_dict_plan_store_flagged(self):
        source = """\
            def tweak(shard_plan):
                shard_plan["by_tree"] = []
            """
        findings = lint(source, "src/repro/engine/engine.py", "R007")
        assert rule_ids(findings) == ["R007"]

    def test_mutator_call_flagged(self):
        source = """\
            def tweak(plan, extra):
                plan.column_of.update(extra)
            """
        findings = lint(source, "src/repro/core/index.py", "R007")
        assert rule_ids(findings) == ["R007"]

    def test_augassign_flagged(self):
        source = """\
            def tweak(plan):
                plan.s_hi_eff += 1
            """
        findings = lint(source, "src/repro/core/index.py", "R007")
        assert rule_ids(findings) == ["R007"]

    def test_delete_flagged(self):
        source = """\
            def tweak(plan):
                del plan.column_of[3]
            """
        findings = lint(source, "src/repro/core/index.py", "R007")
        assert rule_ids(findings) == ["R007"]

    def test_holder_rebinding_passes(self):
        source = """\
            class PlanEntry:
                def __init__(self, plan):
                    self.plan = plan
            """
        assert lint(source, "src/repro/core/plan.py", "R007") == []

    def test_local_rebinding_passes(self):
        source = """\
            def resolve(plan, other):
                plan = other
                return plan.q_lo
            """
        assert lint(source, "src/repro/core/index.py", "R007") == []

    def test_reads_pass(self):
        source = """\
            def use(plan):
                column = plan.column_of.get(3)
                return plan.by_tree[0], column
            """
        assert lint(source, "src/repro/core/index.py", "R007") == []

    def test_out_of_scope_subpackage_passes(self):
        source = """\
            def tweak(plan):
                plan.column_of[3] = None
            """
        assert lint(source, "src/repro/storage/pager.py", "R007") == []


# -- suppression comments -----------------------------------------------------


class TestSuppression:
    def test_targeted_suppression(self):
        source = """\
            class Catalog:
                def load(self):
                    return self.pager.read(7)  # repro-lint: ignore[R001]
            """
        assert lint(source, "src/repro/core/catalog.py") == []

    def test_suppression_is_rule_specific(self):
        source = """\
            class Catalog:
                def load(self):
                    return self.pager.read(7)  # repro-lint: ignore[R006]
            """
        findings = lint(source, "src/repro/core/catalog.py")
        assert rule_ids(findings) == ["R001"]

    def test_blanket_suppression(self):
        source = """\
            import time  # repro-lint: ignore
            """
        assert lint(source, "src/repro/core/clock.py") == []
