"""CLI: generate -> build -> query round trip, bench figure selection."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


class TestGenerate:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "stream.csv"
        assert run_cli("generate", "--objects", "20", "--max-time", "3000",
                       "--output", str(out)) == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "oid,x,y,t"
        assert len(lines) > 20

    def test_generate_to_stdout(self, capsys):
        assert run_cli("generate", "--objects", "5",
                       "--max-time", "500") == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("oid,x,y,t")


class TestBuildAndQuery:
    @pytest.fixture
    def built(self, tmp_path, capsys):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "index.db"
        run_cli("generate", "--objects", "30", "--max-time", "30000",
                "--output", str(stream))
        args = ["--window", "20000", "--slide", "100", "--grid", "4",
                "--page-size", "1024"]
        assert run_cli("build", str(stream), str(index), *args) == 0
        capsys.readouterr()
        return index, args

    def test_build_then_interval_query(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "15000",
                       "--t-hi", "25000", *args) == 0
        captured = capsys.readouterr()
        assert "node accesses" in captured.err
        assert "oid=" in captured.out

    def test_timeslice_query(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "25000", *args) == 0

    def test_knn_query(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "25000",
                       "--knn", "3", "--point", "5000", "5000", *args) == 0
        captured = capsys.readouterr()
        assert len([line for line in captured.out.splitlines()
                    if line.startswith("oid=")]) <= 3

    def test_logical_window_query(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "10000",
                       "--t-hi", "29000", "--logical-window", "5000",
                       *args) == 0


class TestShardedBuildAndQuery:
    @pytest.fixture
    def built(self, tmp_path, capsys):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "index.d"
        run_cli("generate", "--objects", "30", "--max-time", "30000",
                "--output", str(stream))
        args = ["--window", "20000", "--slide", "100", "--grid", "4",
                "--page-size", "1024", "--shards", "3"]
        assert run_cli("build", str(stream), str(index), *args) == 0
        capsys.readouterr()
        return index, args

    def test_build_creates_shard_directory(self, built, capsys):
        index, args = built
        assert (index / "engine.json").exists()
        assert (index / "shard-000.pages").exists()
        assert (index / "shard-002.pages").exists()

    def test_sharded_interval_query(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "15000",
                       "--t-hi", "25000", *args) == 0
        captured = capsys.readouterr()
        assert "node accesses" in captured.err
        assert "oid=" in captured.out

    def test_sharded_matches_unsharded_results(self, built, tmp_path,
                                               capsys):
        index, args = built
        plain = tmp_path / "plain.db"
        stream = tmp_path / "stream.csv"
        plain_args = [a for a in args if a not in ("--shards", "3")]
        assert run_cli("build", str(stream), str(plain), *plain_args) == 0
        capsys.readouterr()
        assert run_cli("query", str(index), "--t-lo", "15000",
                       "--t-hi", "25000", *args) == 0
        sharded_out = capsys.readouterr().out
        assert run_cli("query", str(plain), "--t-lo", "15000",
                       "--t-hi", "25000", *plain_args) == 0
        plain_out = capsys.readouterr().out
        assert sorted(sharded_out.splitlines()) == \
            sorted(plain_out.splitlines())

    def test_sharded_query_with_serial_executor(self, built, capsys):
        index, args = built
        assert run_cli("query", str(index), "--t-lo", "25000",
                       "--executor", "serial", *args) == 0


class TestBench:
    def test_bench_single_figure(self, capsys):
        assert run_cli("bench", "--scale", "tiny",
                       "--figures", "Fig.7", "--objects", "20") == 0
        captured = capsys.readouterr()
        assert "Fig.7" in captured.out
        assert "Fig.9" not in captured.out

    def test_bench_chart_mode(self, capsys):
        assert run_cli("bench", "--scale", "tiny", "--chart",
                       "--figures", "Fig.10", "--objects", "20") == 0
        captured = capsys.readouterr()
        assert "|" in captured.out and "#" in captured.out


class TestErrors:
    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("bench", "--scale", "enormous")

    def test_missing_stream_file_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_cli("build", str(tmp_path / "nope.csv"),
                    str(tmp_path / "out.db"))

    def test_query_missing_index_fails(self, tmp_path):
        from repro.storage import CorruptPageFileError, Pager
        with pytest.raises(CorruptPageFileError):
            # A fresh page file has no saved catalog.
            Pager(tmp_path / "empty.db", page_size=8192).close()
            run_cli("query", str(tmp_path / "empty.db"), "--t-lo", "0")


class TestScrub:
    def _build(self, tmp_path):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "idx.db"
        run_cli("generate", "--objects", "15", "--max-time", "2000",
                "--output", str(stream))
        run_cli("build", str(stream), str(index), "--page-size", "1024")
        return index

    def test_clean_index_scrubs_clean(self, tmp_path, capsys):
        index = self._build(tmp_path)
        assert run_cli("scrub", str(index)) == 0
        out = capsys.readouterr().out
        assert "0 corrupt page(s)" in out

    def test_bit_flip_reports_exact_page(self, tmp_path, capsys):
        from repro.storage import FaultInjectingPageDevice, FilePageDevice
        index = self._build(tmp_path)
        device = FaultInjectingPageDevice(FilePageDevice(index, 1024))
        victim = device.page_count() - 1
        device.flip_stored_bit(victim, 33, 0x08)
        device.close()
        assert run_cli("scrub", str(index)) == 1
        out = capsys.readouterr().out
        assert f"page {victim}:" in out
        assert "1 corrupt page(s)" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert run_cli("scrub", str(tmp_path / "nope.db")) == 2


class TestScrubDirectory:
    def _build_dir(self, tmp_path):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "index.d"
        run_cli("generate", "--objects", "20", "--max-time", "3000",
                "--output", str(stream))
        run_cli("build", str(stream), str(index), "--page-size", "1024",
                "--shards", "3")
        return index

    def test_clean_directory_scrubs_clean(self, tmp_path, capsys):
        index = self._build_dir(tmp_path)
        assert run_cli("scrub", str(index)) == 0
        out = capsys.readouterr().out
        assert "engine directory" in out
        assert "3 shard file(s) swept" in out
        assert "directory verdict: clean" in out

    def test_corrupt_shard_fails_directory_scrub(self, tmp_path, capsys):
        from repro.storage import FaultInjectingPageDevice, FilePageDevice
        index = self._build_dir(tmp_path)
        shard = index / "shard-001.pages"
        device = FaultInjectingPageDevice(FilePageDevice(shard, 1024))
        device.flip_stored_bit(device.page_count() - 1, 17, 0x04)
        device.close()
        assert run_cli("scrub", str(index)) == 1
        out = capsys.readouterr().out
        assert "directory verdict: CORRUPT" in out

    def test_missing_shard_file_is_a_problem(self, tmp_path, capsys):
        index = self._build_dir(tmp_path)
        (index / "shard-002.pages").unlink()
        assert run_cli("scrub", str(index)) == 1
        out = capsys.readouterr().out
        assert "shard-002.pages is missing" in out


class TestNoStrictFlag:
    def test_sharded_query_accepts_no_strict(self, tmp_path, capsys):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "index.d"
        run_cli("generate", "--objects", "20", "--max-time", "30000",
                "--output", str(stream))
        args = ["--page-size", "1024", "--shards", "3"]
        run_cli("build", str(stream), str(index), *args)
        capsys.readouterr()
        assert run_cli("query", str(index), "--t-lo", "25000",
                       "--no-strict", *args) == 0
        captured = capsys.readouterr()
        # Healthy directory: full answer, no degradation banner.
        assert "DEGRADED" not in captured.err

    def test_no_strict_warns_without_shards(self, tmp_path, capsys):
        stream = tmp_path / "stream.csv"
        index = tmp_path / "idx.db"
        run_cli("generate", "--objects", "10", "--max-time", "2000",
                "--output", str(stream))
        run_cli("build", str(stream), str(index), "--page-size", "1024")
        capsys.readouterr()
        assert run_cli("query", str(index), "--t-lo", "1500",
                       "--no-strict", "--page-size", "1024") == 0
        assert "no effect" in capsys.readouterr().err


class TestModuleEntry:
    def test_python_dash_m_repro(self):
        proc = subprocess.run([sys.executable, "-m", "repro", "--help"],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "generate" in proc.stdout
