"""SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.svgplots import render_bar_chart, svg_from_result


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestRenderBarChart:
    def test_produces_well_formed_svg(self):
        svg = render_bar_chart("T", {"a": [1.0, 2.0]}, ["x", "y"])
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_one_bar_per_series_per_group(self):
        svg = render_bar_chart("T", {"a": [1.0, 2.0], "b": [3.0, 4.0]},
                               ["x", "y"])
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        bars = [rect for rect in root.iter(f"{ns}rect")
                if rect.get("fill", "").startswith("#")
                and float(rect.get("width")) > 12]  # exclude legend swatches
        assert len(bars) == 4  # 2 series x 2 groups

    def test_bar_heights_proportional(self):
        svg = render_bar_chart("T", {"a": [1.0, 2.0]}, ["x", "y"])
        root = _parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        heights = sorted(float(rect.get("height"))
                         for rect in root.iter(f"{ns}rect")
                         if rect.get("fill") == "#4878a8"
                         and float(rect.get("height")) > 12.1)
        assert heights[1] == pytest.approx(heights[0] * 2, rel=0.01)

    def test_title_and_labels_escaped(self):
        svg = render_bar_chart("A<B & C", {"s<1": [1.0]}, ["<lbl>"])
        _parse(svg)  # must stay well-formed despite special chars
        assert "A&lt;B &amp; C" in svg

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart("T", {"a": [1.0]}, ["x", "y"])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart("T", {}, [])

    def test_all_zero_values_ok(self):
        svg = render_bar_chart("T", {"a": [0.0, 0.0]}, ["x", "y"])
        _parse(svg)


class TestFromResult:
    def test_svg_from_experiment_result(self):
        result = ExperimentResult(
            exp_id="Fig.10", title="demo",
            headers=["point", "SWST", "MV3R"],
            rows=[["0%", 6.77, 3.20], ["5%", 11.23, 19.80]])
        svg = svg_from_result(result, {"SWST": 1, "MV3R": 2})
        root = _parse(svg)
        assert "Fig.10" in svg
        assert root.get("width") == "640"


class TestCliIntegration:
    def test_bench_svg_flag_writes_files(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "figs"
        assert main(["bench", "--scale", "tiny", "--figures", "Fig.10",
                     "--objects", "20", "--svg", str(out)]) == 0
        files = list(out.glob("*.svg"))
        assert len(files) == 1
        _parse(files[0].read_text())
