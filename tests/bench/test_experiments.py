"""Experiment smoke tests: every figure regenerates and has sane shape."""

import pytest

from repro.bench import (TINY, experiment_hrtree, experiment_insertion,
                         experiment_interleaved, experiment_maintenance,
                         experiment_memo, experiment_physical_io,
                         experiment_skew, experiment_spartition,
                         experiment_spatial_cells, experiment_spatial_extent,
                         experiment_time_interval, experiment_wave,
                         experiment_zcurve)


class TestFigures:
    def test_fig7_fig8_rows(self):
        fig7, fig8 = experiment_insertion(TINY)
        assert len(fig7.rows) == len(TINY.dataset_objects)
        assert len(fig8.rows) == len(TINY.dataset_objects)
        for row in fig7.rows:
            assert row[2] > 0 and row[3] > 0  # both indexes did IO
        # Node accesses grow with dataset size.
        assert fig7.rows[-1][2] > fig7.rows[0][2]

    def test_fig9_rows(self):
        result = experiment_spatial_extent(TINY)
        assert [row[0] for row in result.rows] == ["0.5%", "1%", "4%"]
        # SWST accesses grow with the spatial extent.
        swst = [row[1] for row in result.rows]
        assert swst[0] <= swst[-1]

    def test_fig10_rows(self):
        result = experiment_time_interval(TINY)
        assert [row[0] for row in result.rows] == ["0%", "5%", "10%", "15%"]
        swst = [row[1] for row in result.rows]
        mv3r = [row[2] for row in result.rows]
        # Both curves grow with the interval; MV3R grows at least as fast
        # overall (the paper's crossover shape).
        assert swst[0] <= swst[-1]
        assert mv3r[0] <= mv3r[-1]

    def test_fig11_memo_reduces_accesses(self):
        result = experiment_memo(TINY)
        for row in result.rows:
            with_memo, without_memo = row[1], row[2]
            assert with_memo <= without_memo

    def test_param_sweeps_produce_rows(self):
        cells = experiment_spatial_cells(TINY, grids=((2, 2), (5, 5)))
        assert len(cells.rows) == 2
        sp = experiment_spartition(TINY, s_partitions=(25, 201))
        assert len(sp.rows) == 2

    def test_zcurve_ablation_spatial_bits_help(self):
        result = experiment_zcurve(TINY)
        # Without the Z bits, candidate counts are never lower.
        for row in result.rows:
            assert row[3] <= row[4]

    def test_maintenance_swst_cheapest_per_entry(self):
        result = experiment_maintenance(TINY)
        per_entry = {row[0]: row[3] for row in result.rows}
        swst = per_entry["SWST (drop)"]
        assert swst < per_entry["3D R-tree (per-entry delete)"]
        assert swst < per_entry["PIST (per-sub-entry delete)"]

    def test_wave_flat_high_cost(self):
        result = experiment_wave(TINY)
        swst = [row[1] for row in result.rows]
        wave = [row[2] for row in result.rows]
        # Wave pays the multi-sub-index cost at every interval length.
        assert all(w >= s for s, w in zip(swst, wave, strict=True))
        assert wave[0] > 3 * max(swst[0], 1)

    def test_hrtree_interval_collapse_and_storage(self):
        result = experiment_hrtree(TINY)
        swst = [row[1] for row in result.rows]
        hr = [row[2] for row in result.rows]
        # Interval queries: HR-tree searches one R-tree per version.
        assert hr[-1] > 10 * max(swst[-1], 1)
        assert "pages" in result.notes

    def test_physical_io_monotone_in_capacity(self):
        result = experiment_physical_io(TINY, capacities=(2, 64))
        physical = [row[1] for row in result.rows]
        logical = [row[2] for row in result.rows]
        # Physical reads never exceed logical accesses and never grow
        # with a bigger cache.
        assert all(p <= l for p, l in zip(physical, logical, strict=True))
        assert physical[0] >= physical[-1]
        # Logical accesses are capacity-independent.
        assert len(set(logical)) == 1

    def test_skew_produces_all_distributions(self):
        result = experiment_skew(TINY)
        assert [row[0] for row in result.rows] == ["uniform", "gaussian",
                                                   "skewed"]
        for row in result.rows:
            # memo never hurts
            assert row[1] <= row[2]

    def test_interleaved_costs_stay_stable(self):
        result = experiment_interleaved(TINY)
        assert result.rows, "no steady-state checkpoint reached"
        costs = [row[3] for row in result.rows]
        assert max(costs) <= max(4.0 * min(costs), min(costs) + 25)
        # Physical size is bounded by the two-window invariant, not by
        # the full stream length.
        entries = [row[2] for row in result.rows]
        assert entries[-1] < entries[0] * 10

    def test_renders_are_printable(self):
        fig7, fig8 = experiment_insertion(TINY)
        text = fig7.render()
        assert "Fig.7" in text and "SWST" in text
        assert fig8.render().count("\n") >= 3
