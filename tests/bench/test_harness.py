"""Harness: builds and query batches produce coherent measurements."""

import pytest

from repro.bench import (TINY, build_mv3r, build_swst, run_queries_mv3r,
                         run_queries_swst)
from repro.datagen import GSTDGenerator, WorkloadConfig, generate_queries


@pytest.fixture(scope="module")
def stream():
    return GSTDGenerator(TINY.stream).materialize()


class TestBuilds:
    def test_swst_build_counts(self, stream):
        index, result = build_swst(stream, TINY.index)
        assert result.records == len(stream)
        assert result.node_accesses > 0
        assert result.accesses_per_record > 0
        index.close()

    def test_mv3r_build_counts(self, stream):
        index, result = build_mv3r(stream, page_size=TINY.index.page_size)
        assert result.records == len(stream)
        assert result.node_accesses > 0
        index.close()

    def test_same_stream_same_sizes(self, stream):
        swst, _ = build_swst(stream, TINY.index)
        mv3r, _ = build_mv3r(stream, page_size=TINY.index.page_size)
        # Both indexes logically hold one entry per report.
        assert len(mv3r) == len(stream)
        swst.close()
        mv3r.close()


class TestQueryBatches:
    def test_batches_agree_on_result_counts(self, stream):
        swst, _ = build_swst(stream, TINY.index)
        mv3r, _ = build_mv3r(stream, page_size=TINY.index.page_size)
        workload = WorkloadConfig(spatial_extent=0.04, temporal_extent=0.05,
                                  count=15)
        queries = generate_queries(TINY.index, workload, swst.now)
        swst_batch = run_queries_swst(swst, queries)
        mv3r_batch = run_queries_mv3r(mv3r, queries)
        assert swst_batch.queries == mv3r_batch.queries == 15
        # MV3R keeps the full history, so it may additionally return
        # entries that started *before* the sliding window but were still
        # valid during the query interval; SWST correctly expires those.
        assert mv3r_batch.result_entries >= swst_batch.result_entries
        assert (mv3r_batch.result_entries - swst_batch.result_entries
                <= mv3r_batch.result_entries * 0.2 + 5)
        assert swst_batch.node_accesses > 0
        assert mv3r_batch.node_accesses > 0
        swst.close()
        mv3r.close()

    def test_swst_batch_merges_per_query_stats(self, stream):
        swst, _ = build_swst(stream, TINY.index)
        workload = WorkloadConfig(spatial_extent=0.04, temporal_extent=0.05,
                                  count=10)
        queries = generate_queries(TINY.index, workload, swst.now)
        batch = run_queries_swst(swst, queries)
        assert batch.stats is not None
        # The merged per-query stats agree with the batch-level counters.
        assert batch.stats.node_accesses == batch.node_accesses
        assert batch.stats.candidates >= batch.result_entries
        swst.close()

    def test_sharded_engine_drops_into_harness(self, stream):
        from dataclasses import replace

        from repro.engine import SerialExecutor, ShardedEngine

        config = replace(TINY.index, n_shards=3)
        engine = ShardedEngine(config, executor=SerialExecutor())
        for report in stream:
            engine.report(report.oid, report.x, report.y, report.t)
        workload = WorkloadConfig(spatial_extent=0.04, temporal_extent=0.05,
                                  count=10)
        queries = generate_queries(TINY.index, workload, engine.now)
        batch = run_queries_swst(engine, queries, label="SWST-sharded")
        assert batch.queries == 10
        assert batch.stats is not None
        assert batch.stats.node_accesses == batch.node_accesses
        engine.close()

    def test_logical_window_reduces_results(self, stream):
        swst, _ = build_swst(stream, TINY.index)
        workload = WorkloadConfig(spatial_extent=0.04, temporal_extent=0.10,
                                  count=15)
        queries = generate_queries(TINY.index, workload, swst.now)
        full = run_queries_swst(swst, queries)
        short = run_queries_swst(swst, queries, window=TINY.index.window
                                 // 10)
        assert short.result_entries <= full.result_entries
        swst.close()
