"""Table and chart rendering."""

import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.reporting import ascii_chart, chart_from_result, format_table


class TestTable:
    def test_basic_table(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [1000, 0.001]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "1,000" in text

    def test_number_formatting(self):
        text = format_table("T", ["v"], [[1234567], [3.14159], [0.0]])
        assert "1,234,567" in text
        assert "3.14" in text

    def test_column_alignment(self):
        text = format_table("T", ["col"], [[1], [22], [333]])
        rows = text.splitlines()[4:]
        assert len({len(row) for row in rows}) == 1


class TestChart:
    def test_bars_scale_to_peak(self):
        text = ascii_chart("C", {"s": [10.0, 5.0]}, ["a", "b"], width=20)
        lines = [line for line in text.splitlines() if "|" in line]
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_multiple_series_grouped(self):
        text = ascii_chart("C", {"x": [1.0], "y": [2.0]}, ["p"])
        assert "x |" in text and "y |" in text

    def test_zero_values(self):
        text = ascii_chart("C", {"s": [0.0, 0.0]}, ["a", "b"])
        assert "#" not in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("C", {"s": [1.0]}, ["a", "b"])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("C", {}, [])

    def test_chart_from_experiment_result(self):
        result = ExperimentResult(
            exp_id="Fig.X", title="demo",
            headers=["point", "SWST", "MV3R"],
            rows=[["0%", 6.65, 3.08], ["5%", 10.13, 16.93]])
        text = chart_from_result(result, {"SWST": 1, "MV3R": 2})
        assert "Fig.X" in text
        assert text.count("|") == 4
