"""Property-based save/reopen round-trip, including retention overrides.

The catalog must preserve the stored entries, the current table, the
clock and (format 2) the per-object retention overrides; the reopened
index must pass its own integrity check and answer queries identically
— retention filtering included.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=200, slide=20, x_partitions=3, y_partitions=3,
                 d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                 page_size=512)

stream_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),                          # oid
        st.integers(0, 99),                         # x
        st.integers(0, 99),                         # y
        st.one_of(st.integers(0, 6),                # gap (rare window jump)
                  st.integers(150, 500)),
        st.one_of(st.none(), st.integers(1, 40)),   # duration (None=report)
    ),
    min_size=1, max_size=80,
)

retention_strategy = st.dictionaries(
    st.integers(0, 5), st.integers(1, CFG.window), max_size=4)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=stream_strategy, retentions=retention_strategy)
def test_save_reopen_round_trip(tmp_path_factory, stream, retentions):
    path = str(tmp_path_factory.mktemp("rt") / "swst.db")
    index = SWSTIndex(CFG, path=path)
    t = 0
    for oid, x, y, gap, duration in stream:
        t += gap
        index.insert(oid, x, y, t, duration)
    for oid, retention in retentions.items():
        index.set_retention(oid, retention)
    expected_entries = sorted((e.oid, e.x, e.y, e.s, e.d)
                              for e in index.scan())
    expected_current = index.current_objects()
    expected_now = index.now
    q_lo, q_hi = CFG.queriable_period(index.now)
    probe = (CFG.space, max(q_lo - 20, 0), q_hi + 20)
    expected_result = sorted((e.oid, e.x, e.y, e.s, e.d)
                             for e in index.query_interval(*probe))
    index.save()
    index.close()

    reopened = SWSTIndex.open(path, CFG)
    try:
        assert sorted((e.oid, e.x, e.y, e.s, e.d)
                      for e in reopened.scan()) == expected_entries
        assert reopened.current_objects() == expected_current
        assert reopened.now == expected_now
        for oid in range(6):
            assert reopened.retention_of(oid) == \
                retentions.get(oid, CFG.window)
        assert sorted((e.oid, e.x, e.y, e.s, e.d)
                      for e in reopened.query_interval(*probe)) == \
            expected_result
        reopened.check_integrity()
    finally:
        reopened.close()


def test_retention_survives_two_save_cycles(tmp_path):
    path = str(tmp_path / "swst.db")
    index = SWSTIndex(CFG, path=path)
    index.report(1, 10, 10, 0)
    index.set_retention(1, 50)
    index.set_retention(4, 120)
    index.save()
    index.close()
    second = SWSTIndex.open(path, CFG)
    assert second.retention_of(1) == 50
    assert second.retention_of(4) == 120
    second.set_retention(4, None)  # clear one override, keep the other
    second.save()
    second.close()
    third = SWSTIndex.open(path, CFG)
    assert third.retention_of(1) == 50
    assert third.retention_of(4) == CFG.window
    third.check_integrity()
    third.close()


def test_retention_filtering_agrees_after_reopen(tmp_path):
    """An override short enough to hide an old entry hides it both live
    and after a reopen (the bug this PR fixes: overrides were dropped by
    the catalog, silently re-extending retention to the full window)."""
    path = str(tmp_path / "swst.db")
    index = SWSTIndex(CFG, path=path)
    index.insert(1, 10, 10, 0, 10)
    index.insert(2, 20, 20, 0, 10)
    index.advance_time(150)
    index.set_retention(1, 40)  # entry at s=0 is now outside oid 1's window
    live = sorted(e.oid for e in index.query_interval(CFG.space, 0, 150))
    assert live == [2]
    index.save()
    index.close()
    reopened = SWSTIndex.open(path, CFG)
    assert sorted(e.oid for e in
                  reopened.query_interval(CFG.space, 0, 150)) == live
    reopened.close()
