"""Aggregate queries: counts and per-cell densities (Section I use case)."""

import random

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def index():
    with SWSTIndex(CFG) as idx:
        yield idx


class TestCount:
    def test_count_matches_query_length(self, index):
        rng = random.Random(1)
        t = 0
        for _ in range(500):
            t += rng.randrange(0, 4)
            index.insert(rng.randrange(900), rng.randrange(1000),
                         rng.randrange(1000), t, rng.randrange(1, 300))
        count, stats = index.count_interval(EVERYWHERE, t - 500, t)
        assert count == len(index.query_interval(EVERYWHERE, t - 500, t))
        assert stats.node_accesses > 0

    def test_count_respects_logical_window(self, index):
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 200, 200, 1500, 50)
        index.advance_time(1600)
        count, _ = index.count_interval(EVERYWHERE, 0, 1600, window=500)
        assert count == 1


class TestDensityGrid:
    def test_density_counts_distinct_objects(self, index):
        # Two entries of the same object in one cell count once.
        index.insert(1, 100, 100, 50, 20)
        index.insert(1, 110, 110, 71, 20)
        index.insert(2, 120, 120, 72, 20)
        index.advance_time(100)
        density = index.density_grid(EVERYWHERE, 85)
        cell = index.grid.cell_of(110, 110)
        assert density[cell] == 2

    def test_density_covers_all_overlapping_cells(self, index):
        index.insert(1, 100, 100, 50, 20)
        density = index.density_grid(EVERYWHERE, 60)
        assert len(density) == CFG.x_partitions * CFG.y_partitions
        assert sum(density.values()) == 1

    def test_density_restricted_to_area(self, index):
        index.insert(1, 100, 100, 50, 20)
        index.insert(2, 900, 900, 50, 20)
        density = index.density_grid(Rect(0, 0, 499, 499), 60)
        assert sum(density.values()) == 1
        for (cx, cy) in density:
            bounds = index.grid.cell_bounds(cx, cy)
            assert bounds.x_lo <= 499 and bounds.y_lo <= 499

    def test_density_varies_with_time(self, index):
        index.insert(1, 100, 100, 50, 20)    # valid [50, 70)
        index.insert(2, 110, 110, 80, 20)    # valid [80, 100)
        index.advance_time(120)
        cell = index.grid.cell_of(100, 100)
        assert index.density_grid(EVERYWHERE, 60)[cell] == 1
        assert index.density_grid(EVERYWHERE, 75)[cell] == 0
        assert index.density_grid(EVERYWHERE, 90)[cell] == 1
