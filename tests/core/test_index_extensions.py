"""The paper's extensions: KNN queries (Section VI) and variable retention
times (Section IV-B(d))."""

import random

import pytest

from repro.baselines import NaiveStore
from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=5, y_partitions=5,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


def _loaded(seed=1, steps=1500, objects=25):
    rng = random.Random(seed)
    index = SWSTIndex(CFG)
    oracle = NaiveStore(CFG)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        oid = rng.randrange(objects)
        x, y = rng.randrange(1000), rng.randrange(1000)
        index.report(oid, x, y, t)
        oracle.report(oid, x, y, t)
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    return index, oracle, rng


def _dist2(entry, x, y):
    return (entry.x - x) ** 2 + (entry.y - y) ** 2


class TestKNN:
    def test_knn_matches_oracle_distances(self):
        index, oracle, rng = _loaded(seed=11)
        q_lo, q_hi = CFG.queriable_period(index.now)
        for _ in range(40):
            x, y = rng.randrange(1000), rng.randrange(1000)
            k = rng.randrange(1, 8)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 400)
            got = index.query_knn(x, y, k, t_lo, t_hi)
            valid = oracle.query_interval(EVERYWHERE, t_lo, t_hi)
            expected = sorted(_dist2(e, x, y) for e in valid)[:k]
            assert [_dist2(e, x, y) for e in got] == expected
        index.close()

    def test_knn_results_sorted_by_distance(self):
        index, _, _ = _loaded(seed=12)
        q_lo, q_hi = CFG.queriable_period(index.now)
        got = index.query_knn(500, 500, 10, q_lo, q_hi)
        dists = [_dist2(e, 500, 500) for e in got]
        assert dists == sorted(dists)
        index.close()

    def test_knn_timeslice_form(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 50, 20)
        index.insert(2, 200, 200, 55, 20)
        index.insert(3, 900, 900, 60, 20)
        got = index.query_knn(110, 110, 2, 65)
        assert [e.oid for e in got] == [1, 2]
        index.close()

    def test_knn_fewer_than_k_results(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 50, 20)
        got = index.query_knn(0, 0, 5, 60)
        assert [e.oid for e in got] == [1]
        index.close()

    def test_knn_respects_time_predicate(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 50, 10)   # valid [50, 60)
        index.insert(2, 900, 900, 70, 10)   # valid [70, 80)
        got = index.query_knn(100, 100, 5, 75)
        assert [e.oid for e in got] == [2]
        index.close()

    def test_knn_respects_logical_window(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 200, 200, 1500, 50)
        index.advance_time(1600)
        got = index.query_knn(150, 150, 5, 0, 1600, window=500)
        assert {e.oid for e in got} == {2}
        index.close()

    def test_knn_validation(self):
        index = SWSTIndex(CFG)
        with pytest.raises(ValueError):
            index.query_knn(0, 0, 0, 10)
        with pytest.raises(ValueError):
            index.query_knn(5000, 0, 1, 10)
        index.close()

    def test_knn_prunes_far_rings(self):
        # Dense data near the query point: the ring search must not touch
        # every spatial cell.
        index = SWSTIndex(CFG)
        rng = random.Random(13)
        t = 0
        for i in range(600):
            t += rng.randrange(0, 2)
            index.insert(i, rng.randrange(250), rng.randrange(250), t, 50)
        q_lo, q_hi = CFG.queriable_period(index.now)
        result = index.query_knn(100, 100, 3, max(q_lo, 0), index.now)
        assert len(result) == 3
        assert result.stats.spatial_cells < CFG.x_partitions * \
            CFG.y_partitions
        index.close()


class TestVariableRetention:
    def test_retention_hides_old_entries(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 200, 200, 100, 50)
        index.advance_time(1000)
        index.set_retention(1, 300)  # object 1 keeps only 300 time units
        result = index.query_interval(EVERYWHERE, 0, 1000)
        assert result.oids() == {2}
        index.close()

    def test_retention_keeps_recent_entries(self):
        index = SWSTIndex(CFG)
        index.set_retention(1, 300)
        index.insert(1, 100, 100, 100, 50)
        index.advance_time(350)
        assert index.query_interval(EVERYWHERE, 0, 350).oids() == {1}
        index.advance_time(500)
        assert index.query_interval(EVERYWHERE, 0, 500).oids() == set()
        index.close()

    def test_retention_applies_to_knn(self):
        index = SWSTIndex(CFG)
        index.set_retention(1, 200)
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 500, 500, 100, 50)
        index.advance_time(800)
        got = index.query_knn(100, 100, 2, 0, 800)
        assert [e.oid for e in got] == [2]
        index.close()

    def test_clearing_retention_restores_default(self):
        index = SWSTIndex(CFG)
        index.insert(1, 100, 100, 100, 50)
        index.advance_time(1000)
        index.set_retention(1, 300)
        assert index.query_interval(EVERYWHERE, 0, 1000).oids() == set()
        index.set_retention(1, None)
        assert index.query_interval(EVERYWHERE, 0, 1000).oids() == {1}
        index.close()

    def test_retention_bounds_validated(self):
        index = SWSTIndex(CFG)
        with pytest.raises(ValueError):
            index.set_retention(1, 0)
        with pytest.raises(ValueError):
            index.set_retention(1, CFG.window + 1)
        index.close()

    def test_retention_of_accessor(self):
        index = SWSTIndex(CFG)
        assert index.retention_of(1) == CFG.window
        index.set_retention(1, 500)
        assert index.retention_of(1) == 500
        index.close()

    def test_retention_matches_shrunken_oracle(self):
        # An object with retention r behaves exactly like the same stream
        # queried under a logical window of size r (for that object).
        index, oracle, rng = _loaded(seed=14, objects=10)
        index.set_retention(3, 500)
        for _ in range(30):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 300, y0 + 300)
            q_lo, q_hi = CFG.queriable_period(index.now)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 400)
            got = {(e.oid, e.s) for e in
                   index.query_interval(area, t_lo, t_hi)}
            full = oracle.query_interval(area, t_lo, t_hi)
            short = oracle.query_interval(area, t_lo, t_hi, window=500)
            expected = {(e.oid, e.s) for e in full if e.oid != 3}
            expected |= {(e.oid, e.s) for e in short if e.oid == 3}
            assert got == expected
        index.close()
