"""Tuning advisor: the paper's parameter guidance as executable checks."""

import pytest

from repro.core import Rect, SWSTConfig
from repro.core.tuning import (RECOMMENDED_CELLS, memo_bytes_per_cell,
                               memo_bytes_total, suggest_config)

PAPER_CFG = SWSTConfig(window=20000, slide=100, d_max=2000,
                       duration_interval=100)


class TestMemoFootprint:
    def test_per_cell_formula(self):
        # 2 * 16 * Sp * Dp with Sp=201, Dp=20.
        assert memo_bytes_per_cell(PAPER_CFG) == 2 * 16 * 201 * 20

    def test_total_matches_paper_order_of_magnitude(self):
        # Paper Section V-E: "the total space for maintaining statistical
        # information was 25 MB" at 400 cells.  With exact ceilings we get
        # ~49 MiB for both windows (the paper counts Sp=100 per tree in
        # its arithmetic); same order, same no-growth property.
        total = memo_bytes_total(PAPER_CFG)
        assert 20 * (1 << 20) < total < 60 * (1 << 20)

    def test_footprint_independent_of_data(self):
        # The memo is sized by the grid, never by the dataset.
        small = SWSTConfig(window=100, slide=10, d_max=20,
                           duration_interval=5)
        assert memo_bytes_total(small) == \
            memo_bytes_total(SWSTConfig(window=100, slide=10, d_max=20,
                                        duration_interval=5))


class TestSuggest:
    def test_cells_in_recommended_band(self):
        advice = suggest_config(Rect(0, 0, 9999, 9999), window=20000,
                                slide=100, d_max=2000)
        assert RECOMMENDED_CELLS[0] <= advice.cells <= RECOMMENDED_CELLS[1]

    def test_dp_near_paper_default(self):
        advice = suggest_config(Rect(0, 0, 9999, 9999), window=20000,
                                slide=100, d_max=2000)
        assert advice.config.dp == 20

    def test_suggested_config_is_usable(self):
        from repro.core import SWSTIndex
        advice = suggest_config(Rect(0, 0, 999, 999), window=1000,
                                slide=50, d_max=100, page_size=1024)
        index = SWSTIndex(advice.config)
        index.insert(1, 10, 10, 5, 20)
        assert len(index.query_timeslice(Rect(0, 0, 999, 999), 10)) == 1
        index.close()

    def test_notes_explain_choices(self):
        advice = suggest_config(Rect(0, 0, 9999, 9999), window=20000,
                                slide=100, d_max=2000)
        text = " ".join(advice.notes)
        assert "grid" in text and "memo" in text

    def test_small_dmax_gets_small_delta(self):
        advice = suggest_config(Rect(0, 0, 99, 99), window=500, slide=10,
                                d_max=10)
        assert advice.config.duration_interval == 1

    def test_bad_target_range_rejected(self):
        with pytest.raises(ValueError):
            suggest_config(Rect(0, 0, 99, 99), window=500, slide=10,
                           d_max=10, target_cells=(600, 300))
