"""SWSTIndex save/open round-trips on a real page file."""

import random

import pytest

from repro.core import Entry, Rect, SWSTConfig, SWSTIndex
from repro.storage import CorruptPageFileError

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)

EVERYWHERE = Rect(0, 0, 999, 999)


def _populate(index, steps=800, seed=3):
    rng = random.Random(seed)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        index.report(rng.randrange(20), rng.randrange(1000),
                     rng.randrange(1000), t)
    return t


class TestSaveOpen:
    def test_round_trip_preserves_entries(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        _populate(index)
        expected = sorted((e.oid, e.x, e.y, e.s, e.d) for e in index.scan())
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        got = sorted((e.oid, e.x, e.y, e.s, e.d) for e in reopened.scan())
        assert got == expected
        reopened.close()

    def test_round_trip_preserves_clock_and_current_table(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        _populate(index)
        now = index.now
        current = index.current_objects()
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        assert reopened.now == now
        assert reopened.current_objects() == current
        reopened.close()

    def test_queries_agree_after_reopen(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        _populate(index)
        q_lo, q_hi = CFG.queriable_period(index.now)
        area = Rect(100, 100, 600, 600)
        before = {(e.oid, e.s) for e in
                  index.query_interval(area, q_lo, q_hi)}
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        after = {(e.oid, e.s) for e in
                 reopened.query_interval(area, q_lo, q_hi)}
        assert after == before
        reopened.close()

    def test_stream_continues_after_reopen(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        last = _populate(index)
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        reopened.insert(999, 500, 500, last + 10, 50)
        result = reopened.query_interval(EVERYWHERE, last, last + 20)
        assert Entry(999, 500, 500, last + 10, 50) in list(result)
        reopened.close()

    def test_save_twice_reclaims_old_catalog(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        _populate(index, steps=200)
        index.save()
        pages_after_first = index.pager.page_count()
        index.save()
        # The second catalog reuses the freed pages of the first.
        assert index.pager.page_count() <= pages_after_first + 1
        index.close()

    def test_open_without_catalog_fails(self, tmp_path):
        path = str(tmp_path / "empty.db")
        index = SWSTIndex(CFG, path=path)
        index.close()
        with pytest.raises(CorruptPageFileError):
            SWSTIndex.open(path, CFG)

    def test_memo_rebuilt_on_open_prunes_identically(self, tmp_path):
        path = str(tmp_path / "swst.db")
        index = SWSTIndex(CFG, path=path)
        _populate(index)
        area = Rect(0, 0, 300, 300)
        q_lo, q_hi = CFG.queriable_period(index.now)
        res_before = index.query_interval(area, q_lo, q_hi)
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        res_after = reopened.query_interval(area, q_lo, q_hi)
        assert {e.oid for e in res_after} == {e.oid for e in res_before}
        # The rebuilt memo is at least as tight as the live one (live MBRs
        # are never shrunk after deletions), so pruning cannot get worse.
        assert res_after.stats.candidates <= res_before.stats.candidates
        reopened.close()
