"""Sliding-window maintenance: lazy wholesale drops, logical windows."""

import pytest

from repro.core import Entry, Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)

EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def index():
    with SWSTIndex(CFG) as idx:
        yield idx


class TestExpiry:
    def test_expired_entries_excluded_before_any_drop(self, index):
        # An entry leaves the queriable period as soon as the window
        # passes it, even though it is still physically stored.
        index.insert(1, 100, 100, 0, 50)
        index.advance_time(2150)  # queriable period starts at 100
        assert len(index.query_interval(EVERYWHERE, 0, 2150)) == 0
        assert len(index) == 1  # still physically present (lazy)

    def test_still_valid_but_expired_is_excluded(self, index):
        # Section III-A: expiry is decided by start time, not validity.
        index.insert(1, 100, 100, 0, 300)  # valid until t=300
        index.advance_time(2150)
        assert len(index.query_timeslice(EVERYWHERE, 250)) == 0

    def test_drop_happens_at_window_boundary(self, index):
        w_max = CFG.w_max  # 2099
        index.insert(1, 100, 100, 10, 50)
        index.insert(2, 200, 200, w_max + 10, 50)
        assert len(index) == 2
        index.advance_time(2 * w_max)  # window 0 fully expired: dropped
        assert len(index) == 1
        physically = {e.oid for e in index.scan()}
        assert physically == {2}

    def test_drop_frees_pages(self, index):
        w_max = CFG.w_max
        for i in range(300):
            index.insert(i, (i * 7) % 1000, (i * 11) % 1000, i, 50)
        frees_before = index.stats.frees
        index.advance_time(2 * w_max)
        assert index.stats.frees > frees_before

    def test_drop_cost_independent_of_entry_count(self, index):
        # The headline claim: window maintenance is O(pages), not
        # O(entries) — accesses per dropped entry << 1 for full pages.
        w_max = CFG.w_max
        for i in range(2000):
            index.insert(i, (i * 7) % 1000, (i * 11) % 1000, i % w_max if
                         i % w_max >= index.now else index.now, 50)
        dropped = len(index)
        before = index.stats.snapshot()
        index.advance_time(2 * w_max)
        delta = index.stats.diff(before)
        assert delta.node_accesses < dropped

    def test_multiple_boundaries_in_one_advance(self, index):
        w_max = CFG.w_max
        index.insert(1, 100, 100, 10, 50)
        index.advance_time(10 * w_max)  # jumps several boundaries at once
        assert len(index) == 0

    def test_stale_current_entries_dropped_with_their_window(self, index):
        w_max = CFG.w_max
        index.report(1, 100, 100, 10)
        index.advance_time(2 * w_max)
        assert index.current_objects() == {}

    def test_clock_cannot_move_backwards(self, index):
        index.advance_time(500)
        with pytest.raises(ValueError):
            index.advance_time(499)

    def test_reuse_of_tree_after_drop(self, index):
        w_max = CFG.w_max
        index.insert(1, 100, 100, 10, 50)          # window 0, tree 0
        index.insert(2, 100, 100, w_max + 10, 50)  # window 1, tree 1
        index.insert(3, 100, 100, 2 * w_max + 10, 50)  # window 2 -> tree 0
        # Window 0 was dropped when the clock crossed 2*w_max; tree 0 now
        # holds window 2.  Entry 2 is physically present but has already
        # left the queriable period (the window is ~W, less than Wmax*2).
        physically = {e.oid for e in index.scan()}
        assert physically == {2, 3}
        result = index.query_interval(EVERYWHERE, w_max, 2 * w_max + 100)
        assert result.oids() == {3}


class TestLogicalWindows:
    def test_smaller_window_hides_older_entries(self, index):
        index.insert(1, 100, 100, 100, 50)
        index.insert(2, 200, 200, 1500, 50)
        index.advance_time(1600)
        full = index.query_interval(EVERYWHERE, 0, 1600)
        assert full.oids() == {1, 2}
        recent = index.query_interval(EVERYWHERE, 0, 1600, window=500)
        assert recent.oids() == {2}

    def test_logical_window_equal_to_physical(self, index):
        index.insert(1, 100, 100, 100, 50)
        index.advance_time(1000)
        assert index.query_interval(EVERYWHERE, 0, 1000,
                                    window=CFG.window).oids() == {1}

    def test_logical_window_larger_than_physical_rejected(self, index):
        index.insert(1, 100, 100, 100, 50)
        with pytest.raises(ValueError):
            index.query_interval(EVERYWHERE, 0, 100, window=CFG.window + 1)

    def test_per_provider_disclosure_scenario(self, index):
        # The paper's privacy motivation: three providers with different
        # logical history lengths see nested subsets.
        for i, s in enumerate((100, 700, 1300, 1900)):
            index.insert(i, 100 * (i + 1), 100, s, 50)
        index.advance_time(2000)
        week = index.query_interval(EVERYWHERE, 0, 2000).oids()
        day = index.query_interval(EVERYWHERE, 0, 2000, window=800).oids()
        hour = index.query_interval(EVERYWHERE, 0, 2000, window=200).oids()
        assert hour <= day <= week
        assert week == {0, 1, 2, 3}
        assert day == {2, 3}
        assert hour == {3}
