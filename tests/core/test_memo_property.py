"""Model-based property test for the isPresent memo."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CellMemo, Rect

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 5), st.integers(0, 3),
                  st.integers(0, 99), st.integers(0, 99)),
        st.tuples(st.just("remove"), st.integers(0, 5), st.integers(0, 3),
                  st.just(0), st.just(0)),
        st.tuples(st.just("reset"), st.integers(0, 5), st.integers(0, 6),
                  st.just(0), st.just(0)),
    ),
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_memo_matches_multiset_model(ops):
    """The memo's counts match a dict-of-lists model, and every surviving
    point is covered by its cell's MBR (MBRs are allowed to be larger —
    conservative — but never smaller)."""
    memo = CellMemo()
    model: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for op, s_part, d_part, x, y in ops:
        if op == "add":
            memo.add(s_part, d_part, x, y)
            model.setdefault((s_part, d_part), []).append((x, y))
        elif op == "remove":
            key = (s_part, d_part)
            if model.get(key):
                memo.remove(s_part, d_part)
                model[key].pop()
                if not model[key]:
                    del model[key]
        else:  # reset partitions [s_part, s_part + d_part)
            memo.reset_partitions(s_part, s_part + d_part)
            for key in [k for k in model
                        if s_part <= k[0] < s_part + d_part]:
                del model[key]
    for key, points in model.items():
        assert memo.count(*key) == len(points)
        mbr = memo.mbr(*key)
        assert mbr is not None
        for x, y in points:
            assert mbr.contains(x, y)
    assert memo.total_entries() == sum(len(p) for p in model.values())
    # Cells absent from the model are empty in the memo.
    for s_part in range(6):
        for d_part in range(4):
            if (s_part, d_part) not in model:
                assert memo.count(s_part, d_part) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 99), st.integers(0, 99)),
                min_size=1, max_size=50),
       st.tuples(st.integers(0, 99), st.integers(0, 99),
                 st.integers(0, 99), st.integers(0, 99)))
def test_memo_overlap_never_false_negative(points, probe):
    """If any stored point is inside the probe area, overlaps() is True
    (the pruning predicate may over-approximate, never under)."""
    memo = CellMemo()
    for x, y in points:
        memo.add(0, 0, x, y)
    x_lo, y_lo = min(probe[0], probe[2]), min(probe[1], probe[3])
    x_hi, y_hi = max(probe[0], probe[2]), max(probe[1], probe[3])
    area = Rect(x_lo, y_lo, x_hi, y_hi)
    if any(area.contains(x, y) for x, y in points):
        assert memo.overlaps(0, 0, area)
