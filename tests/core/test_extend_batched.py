"""Batched extend() equals per-report insertion, state for state."""

import random

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.datagen import Report

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


def _stream(seed=41, steps=1500, objects=20):
    rng = random.Random(seed)
    t = 0
    reports = []
    for _ in range(steps):
        # Occasional jumps across window boundaries so drops interleave
        # with batches (w_max boundaries split batches into runs).
        t += rng.randrange(0, 4) if rng.random() < 0.98 \
            else rng.randrange(500, 3000)
        reports.append(Report(oid=rng.randrange(objects),
                              x=rng.randrange(1000), y=rng.randrange(1000),
                              t=t))
    return reports


def _summary(index):
    return {
        "entries": sorted((e.oid, e.x, e.y, e.s, e.d) for e in index.scan()),
        "current": index.current_objects(),
        "now": index.now,
        "size": len(index),
    }


@pytest.mark.parametrize("batch_size", [1, 7, 256, 10_000])
def test_extend_state_identical_to_per_report_insert(batch_size):
    stream = _stream()
    oracle = SWSTIndex(CFG)
    for r in stream:
        oracle.report(r.oid, r.x, r.y, r.t)
    batched = SWSTIndex(CFG)
    assert batched.extend(stream, batch_size=batch_size) == len(stream)
    assert _summary(batched) == _summary(oracle)
    q_lo, q_hi = CFG.queriable_period(batched.now)
    got = batched.query_interval(EVERYWHERE, q_lo, q_hi)
    expected = oracle.query_interval(EVERYWHERE, q_lo, q_hi)
    assert sorted((e.oid, e.s) for e in got) == \
        sorted((e.oid, e.s) for e in expected)
    batched.check_integrity()
    oracle.close()
    batched.close()


def test_extend_accepts_a_generator():
    stream = _stream(seed=42, steps=300)
    index = SWSTIndex(CFG)
    assert index.extend(iter(stream)) == len(stream)
    assert len(index) > 0
    index.close()


def test_extend_resumes_after_prior_inserts():
    stream = _stream(seed=43, steps=400)
    split = len(stream) // 2
    oracle = SWSTIndex(CFG)
    for r in stream:
        oracle.report(r.oid, r.x, r.y, r.t)
    index = SWSTIndex(CFG)
    for r in stream[:split]:
        index.report(r.oid, r.x, r.y, r.t)
    index.extend(stream[split:], batch_size=64)
    assert _summary(index) == _summary(oracle)
    oracle.close()
    index.close()


class TestExtendValidation:
    def test_out_of_order_batch_rejected(self):
        index = SWSTIndex(CFG)
        reports = [Report(oid=1, x=10, y=10, t=100),
                   Report(oid=2, x=20, y=20, t=50)]
        with pytest.raises(ValueError, match="out-of-order"):
            index.extend(reports)
        index.close()

    def test_out_of_domain_report_rejected(self):
        index = SWSTIndex(CFG)
        with pytest.raises(ValueError, match="outside the spatial domain"):
            index.extend([Report(oid=1, x=5000, y=10, t=0)])
        index.close()

    def test_bad_batch_size_rejected(self):
        index = SWSTIndex(CFG)
        with pytest.raises(ValueError, match="batch_size"):
            index.extend([], batch_size=0)
        index.close()

    def test_same_timestamp_re_report_is_a_correction(self):
        """The batched path keeps insert()'s same-timestamp semantics:
        a re-report at the same t replaces the current entry."""
        index = SWSTIndex(CFG)
        index.extend([Report(oid=1, x=10, y=10, t=5),
                      Report(oid=1, x=90, y=90, t=5)])
        current = index.current_objects()
        assert current[1] == (90, 90, 5)
        assert len(index) == 1
        index.close()
