"""Spatial grid: cell assignment, bounds, overlap classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rect, SpatialGrid


@pytest.fixture
def grid():
    return SpatialGrid(Rect(0, 0, 99, 99), 4, 4)


class TestCellAssignment:
    def test_corners(self, grid):
        assert grid.cell_of(0, 0) == (0, 0)
        assert grid.cell_of(99, 99) == (3, 3)

    def test_out_of_domain_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.cell_of(100, 0)
        with pytest.raises(ValueError):
            grid.cell_of(0, -1)

    def test_cell_count(self, grid):
        assert grid.cell_count() == 16

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 99), st.integers(0, 99))
    def test_point_lies_in_its_cell_bounds(self, x, y):
        grid = SpatialGrid(Rect(0, 0, 99, 99), 7, 3)
        cx, cy = grid.cell_of(x, y)
        assert grid.cell_bounds(cx, cy).contains(x, y)

    def test_cells_tile_the_domain(self, grid):
        covered = set()
        for cx in range(4):
            for cy in range(4):
                bounds = grid.cell_bounds(cx, cy)
                for x in range(bounds.x_lo, bounds.x_hi + 1):
                    covered.add((x, bounds.y_lo))
        assert {(x, grid.cell_bounds(0, 0).y_lo) for x in range(100)} <= \
            covered

    def test_nonuniform_domain_tiles_without_gaps(self):
        # 10 columns over 97 integer coordinates: widths differ by one but
        # no coordinate is lost or double-assigned.
        grid = SpatialGrid(Rect(0, 0, 96, 96), 10, 10)
        for x in range(97):
            cx, _ = grid.cell_of(x, 0)
            bounds = grid.cell_bounds(cx, 0)
            assert bounds.x_lo <= x <= bounds.x_hi

    def test_cell_bounds_out_of_grid_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.cell_bounds(4, 0)


class TestOverlap:
    def test_full_overlap_detected(self, grid):
        cells = list(grid.overlapping_cells(Rect(0, 0, 99, 99)))
        assert len(cells) == 16
        assert all(cell.full for cell in cells)

    def test_partial_overlap_detected(self, grid):
        cells = list(grid.overlapping_cells(Rect(10, 10, 30, 30)))
        kinds = {(c.cx, c.cy): c.full for c in cells}
        assert kinds == {(0, 0): False, (0, 1): False,
                         (1, 0): False, (1, 1): False}

    def test_clipped_rect_is_intersection(self, grid):
        (cell,) = [c for c in grid.overlapping_cells(Rect(10, 10, 30, 30))
                   if (c.cx, c.cy) == (0, 0)]
        assert cell.clipped == Rect(10, 10, 24, 24)

    def test_query_outside_domain_yields_nothing(self, grid):
        assert list(grid.overlapping_cells(Rect(200, 200, 300, 300))) == []

    def test_query_straddling_domain_is_clipped(self, grid):
        cells = list(grid.overlapping_cells(Rect(90, 90, 500, 500)))
        assert [(c.cx, c.cy) for c in cells] == [(3, 3)]
        assert cells[0].clipped == Rect(90, 90, 99, 99)

    def test_full_cell_inside_larger_query(self, grid):
        cells = {(c.cx, c.cy): c
                 for c in grid.overlapping_cells(Rect(0, 0, 60, 60))}
        assert cells[(0, 0)].full          # 0..24 fully inside 0..60
        assert not cells[(2, 2)].full      # 50..74 partially inside

    def test_single_point_query(self, grid):
        cells = list(grid.overlapping_cells(Rect(50, 50, 50, 50)))
        assert len(cells) == 1
        assert cells[0].clipped == Rect(50, 50, 50, 50)
