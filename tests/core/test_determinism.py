"""Determinism and stats-accounting invariants.

EXPERIMENTS.md promises that node accesses are exactly reproducible; the
query statistics must also add up (every candidate is either accepted or
refined out).
"""

import random

from repro.core import Rect, SWSTConfig, SWSTIndex
from repro.datagen import GSTDConfig, GSTDGenerator

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)


def _build(seed=3):
    index = SWSTIndex(CFG)
    stream = GSTDGenerator(GSTDConfig(num_objects=40, max_time=8000,
                                      interval_lo=1, interval_hi=300,
                                      space=CFG.space, seed=seed))
    count = index.extend(stream.stream())
    return index, count


class TestDeterminism:
    def test_extend_feeds_the_whole_stream(self):
        index, count = _build()
        assert count > 0
        assert len(index.current_objects()) > 0
        index.close()

    def test_identical_runs_produce_identical_node_accesses(self):
        runs = []
        for _ in range(2):
            index, _ = _build()
            rng = random.Random(7)
            accesses = []
            q_lo, q_hi = CFG.queriable_period(index.now)
            for _ in range(30):
                x0, y0 = rng.randrange(700), rng.randrange(700)
                area = Rect(x0, y0, x0 + 200, y0 + 200)
                t_lo = rng.randrange(q_lo, q_hi + 1)
                result = index.query_interval(area, t_lo, t_lo + 300)
                accesses.append(result.stats.node_accesses)
            runs.append(accesses)
            index.close()
        assert runs[0] == runs[1]

    def test_insertion_accesses_reproducible(self):
        totals = []
        for _ in range(2):
            index, _ = _build()
            totals.append(index.stats.node_accesses)
            index.close()
        assert totals[0] == totals[1]


class TestStatsAccounting:
    def test_candidates_split_into_accepted_and_refined(self):
        index, _ = _build(seed=4)
        rng = random.Random(9)
        q_lo, q_hi = CFG.queriable_period(index.now)
        for _ in range(40):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 250, y0 + 250)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            result = index.query_interval(area, t_lo,
                                          t_lo + rng.randrange(0, 400))
            stats = result.stats
            assert stats.candidates == len(result) + stats.refined_out
            assert stats.full_hits <= len(result)
            assert stats.key_ranges <= stats.columns_examined
        index.close()

    def test_empty_query_costs_nothing_on_empty_region(self):
        index = SWSTIndex(CFG)
        index.insert(1, 10, 10, 100, 50)
        # Querying a region with no trees at all.
        result = index.query_timeslice(Rect(900, 900, 999, 999), 120)
        assert len(result) == 0
        assert result.stats.candidates == 0
        index.close()
