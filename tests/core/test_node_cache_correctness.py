"""The node cache is invisible to index semantics and logical accounting.

Runs the same seed workload under the default configuration, under a
one-page buffer (maximum churn: every access evicts) and with the node
cache disabled, then asserts identical stored entries, identical query
results and identical *logical* IO counts everywhere.  Only physical IO
and CPU work may differ between configurations.
"""

import dataclasses
import random

from repro.core import Rect, SWSTConfig, SWSTIndex

BASE = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                  d_max=300, duration_interval=50,
                  space=Rect(0, 0, 999, 999), page_size=1024)

CONFIGS = {
    "default": BASE,
    "one_page_buffer": dataclasses.replace(BASE, buffer_capacity=1),
    "no_node_cache": dataclasses.replace(BASE, node_cache_capacity=0),
    "tiny_node_cache": dataclasses.replace(BASE, node_cache_capacity=2),
}


def _seed_workload(seed=7, steps=1200, objects=20):
    rng = random.Random(seed)
    t = 0
    reports = []
    for _ in range(steps):
        t += rng.randrange(0, 4)
        reports.append((rng.randrange(objects), rng.randrange(1000),
                        rng.randrange(1000), t))
    return reports


def _queries(index, count=30, seed=99):
    rng = random.Random(seed)
    q_lo, q_hi = BASE.queriable_period(index.now)
    queries = []
    for _ in range(count):
        x0, y0 = rng.randrange(700), rng.randrange(700)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        queries.append((Rect(x0, y0, x0 + 250, y0 + 250), t_lo,
                        t_lo + rng.randrange(0, 400)))
    return queries


def _run(config):
    """Build + query one configuration; returns a comparable summary."""
    index = SWSTIndex(config)
    for oid, x, y, t in _seed_workload():
        index.report(oid, x, y, t)
    build_reads = index.stats.logical_reads
    build_writes = index.stats.logical_writes
    results = []
    for area, t_lo, t_hi in _queries(index):
        result = index.query_interval(area, t_lo, t_hi)
        results.append((sorted((e.oid, e.x, e.y, e.s, e.d) for e in result),
                        result.stats.node_accesses))
    entries = sorted((e.oid, e.x, e.y, e.s, e.d) for e in index.scan())
    index.check_integrity()
    index.close()
    return {"entries": entries, "build_reads": build_reads,
            "build_writes": build_writes, "queries": results}


def test_cache_configurations_agree_exactly():
    baseline = _run(CONFIGS["default"])
    for name, config in CONFIGS.items():
        if name == "default":
            continue
        got = _run(config)
        assert got["entries"] == baseline["entries"], name
        assert got["queries"] == baseline["queries"], name
        assert got["build_reads"] == baseline["build_reads"], name
        assert got["build_writes"] == baseline["build_writes"], name


def test_default_workload_actually_hits_the_node_cache():
    index = SWSTIndex(BASE)
    for oid, x, y, t in _seed_workload():
        index.report(oid, x, y, t)
    assert index.stats.node_cache_hits > 0
    assert index.stats.node_parses < index.stats.logical_reads
    index.close()


def test_disabled_cache_parses_every_logical_read():
    index = SWSTIndex(dataclasses.replace(BASE, node_cache_capacity=0))
    for oid, x, y, t in _seed_workload():
        index.report(oid, x, y, t)
    assert index.stats.node_cache_hits == 0
    assert index.stats.node_parses == index.stats.logical_reads
    index.close()
