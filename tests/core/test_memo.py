"""isPresent memo: MBR maintenance, pruning predicate, partition resets."""

import pytest

from repro.core import CellMemo, Rect


@pytest.fixture
def memo():
    return CellMemo()


class TestAddRemove:
    def test_empty_cell_reports_nothing(self, memo):
        assert memo.count(0, 0) == 0
        assert memo.mbr(0, 0) is None

    def test_single_point_mbr(self, memo):
        memo.add(2, 3, 10, 20)
        assert memo.mbr(2, 3) == Rect(10, 20, 10, 20)
        assert memo.count(2, 3) == 1

    def test_mbr_grows_to_cover_points(self, memo):
        memo.add(0, 0, 10, 20)
        memo.add(0, 0, 5, 40)
        memo.add(0, 0, 30, 5)
        assert memo.mbr(0, 0) == Rect(5, 5, 30, 40)

    def test_remove_decrements_and_clears(self, memo):
        memo.add(0, 0, 1, 1)
        memo.add(0, 0, 2, 2)
        memo.remove(0, 0)
        assert memo.count(0, 0) == 1
        memo.remove(0, 0)
        assert memo.mbr(0, 0) is None

    def test_remove_from_empty_cell_raises(self, memo):
        with pytest.raises(KeyError):
            memo.remove(0, 0)

    def test_mbr_is_conservative_after_partial_remove(self, memo):
        # The MBR never shrinks on partial deletes (documented behaviour:
        # it may under-prune but never over-prunes).
        memo.add(0, 0, 0, 0)
        memo.add(0, 0, 100, 100)
        memo.remove(0, 0)
        assert memo.mbr(0, 0) == Rect(0, 0, 100, 100)


class TestOverlaps:
    def test_overlap_with_area(self, memo):
        memo.add(1, 1, 50, 50)
        assert memo.overlaps(1, 1, Rect(0, 0, 60, 60))
        assert not memo.overlaps(1, 1, Rect(51, 0, 60, 60))

    def test_empty_cell_never_overlaps(self, memo):
        assert not memo.overlaps(1, 1, Rect(0, 0, 1000, 1000))

    def test_edge_touching_counts_as_overlap(self, memo):
        memo.add(0, 0, 10, 10)
        assert memo.overlaps(0, 0, Rect(10, 10, 20, 20))


class TestReset:
    def test_reset_partitions_clears_range(self, memo):
        memo.add(0, 0, 1, 1)
        memo.add(5, 2, 1, 1)
        memo.add(9, 0, 1, 1)
        memo.reset_partitions(0, 6)
        assert memo.count(0, 0) == 0
        assert memo.count(5, 2) == 0
        assert memo.count(9, 0) == 1

    def test_reset_is_half_open(self, memo):
        memo.add(5, 0, 1, 1)
        memo.reset_partitions(0, 5)
        assert memo.count(5, 0) == 1

    def test_totals(self, memo):
        memo.add(0, 0, 1, 1)
        memo.add(0, 0, 2, 2)
        memo.add(7, 3, 1, 1)
        assert memo.total_entries() == 3
        assert memo.total_in_partitions(0, 5) == 2
        assert memo.total_in_partitions(5, 10) == 1
        assert memo.nonempty_cells() == 2
