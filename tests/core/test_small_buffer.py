"""End-to-end correctness under a tiny buffer pool.

With capacity for only a handful of pages, every operation churns the
cache (evictions + write-backs on the hot path).  Results must be
identical to the oracle; only *physical* IO counts may differ.
"""

import random

from repro.baselines import NaiveStore
from repro.core import Rect, SWSTConfig, SWSTIndex

TINY_BUFFER = SWSTConfig(window=2000, slide=100, x_partitions=4,
                         y_partitions=4, d_max=300, duration_interval=50,
                         space=Rect(0, 0, 999, 999), page_size=1024,
                         buffer_capacity=4)


def test_oracle_agreement_with_four_page_buffer(tmp_path):
    rng = random.Random(17)
    index = SWSTIndex(TINY_BUFFER, path=str(tmp_path / "tiny.db"))
    oracle = NaiveStore(TINY_BUFFER)
    t = 0
    for _ in range(1500):
        t += rng.randrange(0, 4)
        oid = rng.randrange(20)
        x, y = rng.randrange(1000), rng.randrange(1000)
        index.report(oid, x, y, t)
        oracle.report(oid, x, y, t)
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    q_lo, q_hi = TINY_BUFFER.queriable_period(index.now)
    for _ in range(40):
        x0, y0 = rng.randrange(700), rng.randrange(700)
        area = Rect(x0, y0, x0 + 250, y0 + 250)
        t_lo = rng.randrange(q_lo, q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 400)
        got = {(e.oid, e.s) for e in index.query_interval(area, t_lo, t_hi)}
        expected = {(e.oid, e.s)
                    for e in oracle.query_interval(area, t_lo, t_hi)}
        assert got == expected
    # Eviction pressure really happened.
    assert index.stats.physical_writes > 0
    assert index.stats.physical_reads > 0
    index.check_integrity()
    index.close()


def test_save_and_reopen_with_tiny_buffer(tmp_path):
    path = str(tmp_path / "tiny2.db")
    index = SWSTIndex(TINY_BUFFER, path=path)
    rng = random.Random(18)
    t = 0
    for _ in range(400):
        t += rng.randrange(0, 4)
        index.report(rng.randrange(10), rng.randrange(1000),
                     rng.randrange(1000), t)
    before = sorted((e.oid, e.s) for e in index.scan())
    index.save()
    index.close()
    reopened = SWSTIndex.open(path, TINY_BUFFER)
    assert sorted((e.oid, e.s) for e in reopened.scan()) == before
    reopened.close()
