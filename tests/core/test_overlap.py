"""Temporal overlap classification vs brute-force enumeration.

The brute force enumerates every physically representable (s, d) pair in
the two live windows and checks the classifier's three promises:

* *coverage* — every qualifying pair lies in a reported column at or above
  ``d_first``;
* *full soundness* — every pair in a cell classified full qualifies;
* *none soundness* — no pair below ``d_first`` (or in an unreported
  column) qualifies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SWSTConfig, classify_interval, classify_timeslice

CFG = SWSTConfig(window=40, slide=10, d_max=12, duration_interval=4)


def qualifying(cfg: SWSTConfig, s: int, d: int, t_lo: int, t_hi: int,
               now: int, window=None) -> bool:
    q_lo, q_hi = cfg.queriable_period(now, window)
    if not q_lo <= s <= min(q_hi, t_hi):
        return False
    if d == cfg.nd:  # current entry: open-ended
        return True
    return s + d > t_lo


def physical_pairs(cfg: SWSTConfig, now: int):
    """All (s, d) pairs that can physically sit in the two live trees."""
    window_idx = now // cfg.w_max
    s_lo = max(window_idx - 1, 0) * cfg.w_max
    for s in range(s_lo, now + 1):
        for d in range(1, cfg.nd + 1):
            yield s, d


def check_classification(cfg: SWSTConfig, now: int, t_lo: int, t_hi: int,
                         window=None) -> None:
    columns = {(c.tree, c.s_part): c
               for c in classify_interval(cfg, now, t_lo, t_hi, window)}
    for s, d in physical_pairs(cfg, now):
        col = columns.get((cfg.tree_of(s), cfg.s_partition(s)))
        d_part = cfg.d_partition(d)
        ok = qualifying(cfg, s, d, t_lo, t_hi, now, window)
        if col is None or d_part < col.d_first:
            assert not ok, (f"qualifying pair (s={s}, d={d}) missed for "
                            f"query [{t_lo}, {t_hi}] at now={now}")
            continue
        if ok:
            assert col.s_abs_lo <= s <= col.s_abs_hi
        if d_part >= col.d_full:
            assert ok, (f"cell marked full but (s={s}, d={d}) does not "
                        f"qualify for [{t_lo}, {t_hi}] at now={now}")


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(now=st.integers(0, 400), offset=st.integers(-80, 20),
           length=st.integers(0, 80))
    def test_interval_queries(self, now, offset, length):
        t_lo = max(now + offset - length, 0)
        t_hi = t_lo + length
        check_classification(CFG, now, t_lo, t_hi)

    @settings(max_examples=120, deadline=None)
    @given(now=st.integers(0, 400), offset=st.integers(-60, 0))
    def test_timeslice_queries(self, now, offset):
        t = max(now + offset, 0)
        check_classification(CFG, now, t, t)

    @settings(max_examples=60, deadline=None)
    @given(now=st.integers(30, 400), offset=st.integers(-25, 0),
           length=st.integers(0, 30), window=st.integers(1, 40))
    def test_logical_windows(self, now, offset, length, window):
        t_lo = max(now + offset - length, 0)
        check_classification(CFG, now, t_lo, t_lo + length, window)

    def test_exhaustive_small_sweep(self):
        cfg = SWSTConfig(window=12, slide=4, d_max=6, duration_interval=3)
        for now in range(0, 60, 7):
            for t_lo in range(max(now - 20, 0), now + 1, 3):
                for length in (0, 2, 9):
                    check_classification(cfg, now, t_lo, t_lo + length)


class TestStructure:
    def test_columns_sorted_and_unique(self):
        columns = classify_interval(CFG, 200, 150, 190)
        keys = [(c.tree, c.s_part) for c in columns]
        assert len(keys) == len(set(keys))
        starts = [c.s_abs_lo for c in columns]
        assert starts == sorted(starts)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            classify_interval(CFG, 100, 50, 40)

    def test_future_query_yields_nothing_before_window(self):
        # Query entirely before the queriable period.
        cfg = CFG
        q_lo, _ = cfg.queriable_period(300)
        assert classify_interval(cfg, 300, 0, q_lo - 1) == [] or all(
            c.s_abs_hi < q_lo for c in
            classify_interval(cfg, 300, 0, q_lo - 1))

    def test_timeslice_is_degenerate_interval(self):
        assert classify_timeslice(CFG, 200, 170) == \
            classify_interval(CFG, 200, 170, 170)

    def test_d_first_never_exceeds_d_full(self):
        for now in (50, 120, 333):
            for c in classify_interval(CFG, now, max(now - 30, 0), now):
                assert 0 <= c.d_first <= c.d_full <= CFG.dp

    def test_overlap_kind_labels(self):
        columns = classify_interval(CFG, 200, 150, 190)
        assert columns, "expected at least one column"
        col = columns[0]
        if col.d_first > 0:
            assert col.overlap_kind(col.d_first - 1) == "none"
        if col.d_full < CFG.dp:
            assert col.overlap_kind(col.d_full) == "full"
        if col.d_first < col.d_full:
            assert col.overlap_kind(col.d_first) == "partial"
