"""Constructive demonstration: Hilbert-curve keys would lose results.

Section III-B.2 rejects the Hilbert curve because a key range built from
``hc(lower-left)`` / ``hc(upper-right)`` can *exclude* points inside the
rectangle.  This test builds the counterexample end-to-end: a
hypothetical Hilbert key range misses a qualifying entry that the
Z-curve range (and therefore SWST) finds.
"""

from repro.sfc import hc_encode, zc_encode


def _find_violation(order: int):
    """A rectangle + interior point whose hc value escapes the corner
    range."""
    size = 1 << order
    for x_lo in range(size):
        for y_lo in range(size):
            for x_hi in range(x_lo, size):
                for y_hi in range(y_lo, size):
                    lo = hc_encode(x_lo, y_lo, order=order)
                    hi = hc_encode(x_hi, y_hi, order=order)
                    for x in range(x_lo, x_hi + 1):
                        for y in range(y_lo, y_hi + 1):
                            h = hc_encode(x, y, order=order)
                            if not min(lo, hi) <= h <= max(lo, hi):
                                return (x_lo, y_lo, x_hi, y_hi), (x, y)
    return None  # pragma: no cover


def test_hilbert_key_range_misses_an_interior_point():
    violation = _find_violation(order=2)
    assert violation is not None
    rect, point = violation
    x_lo, y_lo, x_hi, y_hi = rect
    # The same rectangle under the Z-curve always covers the point.
    z_lo = zc_encode(x_lo, y_lo, order=2)
    z_hi = zc_encode(x_hi, y_hi, order=2)
    z = zc_encode(*point, order=2)
    assert z_lo <= z <= z_hi


def test_hilbert_violation_would_drop_a_query_result():
    """Play the violation through a SWST-like key comparison: with
    Hilbert bits, the in-rectangle entry sorts outside the column key
    range and the B+ tree search would skip it — a *missed result*, not
    just a false positive."""
    violation = _find_violation(order=2)
    (x_lo, y_lo, x_hi, y_hi), (px, py) = violation

    def hilbert_key(d_part: int, x: int, y: int) -> int:
        return (d_part << 4) | hc_encode(x, y, order=2)

    lo = hilbert_key(3, x_lo, y_lo)
    hi = hilbert_key(3, x_hi, y_hi)
    entry_key = hilbert_key(3, px, py)
    assert not min(lo, hi) <= entry_key <= max(lo, hi)
