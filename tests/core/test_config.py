"""SWSTConfig: derived quantities, partition formulas, window arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rect, SWSTConfig


@pytest.fixture
def cfg():
    return SWSTConfig(window=20000, slide=100, d_max=2000,
                      duration_interval=100)


class TestDerived:
    def test_w_max(self, cfg):
        assert cfg.w_max == 20099

    def test_sp_is_ceiling(self, cfg):
        assert cfg.sp == 201  # ceil(20099 / 100)

    def test_dp_is_ceiling(self, cfg):
        assert cfg.dp == 20  # ceil(2000 / 100)

    def test_nd_sentinel(self, cfg):
        assert cfg.nd == 2001

    def test_paper_temporal_cells_per_tree(self, cfg):
        # Paper Section V-E: "2000 temporal cells for each B+ tree"; with
        # exact ceilings ours is 201 x 20 = 4020 over both windows, i.e.
        # 2010 per tree — the paper rounds Sp to 200.
        assert cfg.sp * cfg.dp == 4020

    def test_s_partitions_override(self):
        cfg = SWSTConfig(window=1000, slide=100, s_partitions=5)
        assert cfg.sp == 5

    def test_zc_order_covers_domain(self, cfg):
        assert 1 << cfg.zc_order > cfg.space.x_hi
        assert 1 << cfg.zc_order > cfg.space.y_hi


class TestValidation:
    def test_slide_exceeding_window_rejected(self):
        with pytest.raises(ValueError):
            SWSTConfig(window=10, slide=20)

    def test_nonpositive_params_rejected(self):
        with pytest.raises(ValueError):
            SWSTConfig(window=0)
        with pytest.raises(ValueError):
            SWSTConfig(d_max=0)
        with pytest.raises(ValueError):
            SWSTConfig(x_partitions=0)

    def test_negative_domain_rejected(self):
        with pytest.raises(ValueError):
            SWSTConfig(space=Rect(-5, 0, 10, 10))

    def test_nonpositive_slide_rejected(self):
        with pytest.raises(ValueError, match="slide"):
            SWSTConfig(slide=0)

    def test_nonpositive_grid_dims_rejected(self):
        with pytest.raises(ValueError, match="partitions"):
            SWSTConfig(y_partitions=0)
        with pytest.raises(ValueError, match="partitions"):
            SWSTConfig(x_partitions=-3)

    def test_nonpositive_duration_interval_rejected(self):
        with pytest.raises(ValueError, match="duration_interval"):
            SWSTConfig(duration_interval=0)

    def test_bad_s_partitions_override_rejected(self):
        with pytest.raises(ValueError, match="s_partitions"):
            SWSTConfig(s_partitions=0)

    def test_nonpositive_page_size_rejected(self):
        with pytest.raises(ValueError, match="page_size"):
            SWSTConfig(page_size=0)

    def test_nonpositive_buffer_capacity_rejected(self):
        with pytest.raises(ValueError, match="buffer_capacity"):
            SWSTConfig(buffer_capacity=0)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            SWSTConfig(n_shards=0)
        with pytest.raises(ValueError, match="n_shards"):
            SWSTConfig(n_shards=-2)

    def test_single_shard_is_default(self):
        assert SWSTConfig().n_shards == 1
        assert SWSTConfig(n_shards=8).n_shards == 8


class TestPartitionFormulas:
    def test_s_partition_ranges(self, cfg):
        assert cfg.s_partition(0) == 0
        assert cfg.s_partition(cfg.w_max - 1) == cfg.sp - 1
        assert cfg.s_partition(cfg.w_max) == cfg.sp
        assert cfg.s_partition(2 * cfg.w_max - 1) == 2 * cfg.sp - 1

    def test_s_partition_wraps_modulo(self, cfg):
        assert cfg.s_partition(2 * cfg.w_max) == 0
        assert cfg.s_partition(5 * 2 * cfg.w_max + 123) == \
            cfg.s_partition(123)

    def test_d_partition_ranges(self, cfg):
        assert cfg.d_partition(1) == 0
        assert cfg.d_partition(cfg.d_max) == cfg.dp - 1
        assert cfg.d_partition(cfg.nd) == cfg.dp - 1  # current entries

    def test_d_partition_bounds_enforced(self, cfg):
        with pytest.raises(ValueError):
            cfg.d_partition(0)
        with pytest.raises(ValueError):
            cfg.d_partition(cfg.nd + 1)

    def test_tree_of_alternates_by_window(self, cfg):
        assert cfg.tree_of(0) == 0
        assert cfg.tree_of(cfg.w_max - 1) == 0
        assert cfg.tree_of(cfg.w_max) == 1
        assert cfg.tree_of(2 * cfg.w_max) == 0

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 10 ** 7))
    def test_s_cell_bounds_invert_s_partition(self, s):
        cfg = SWSTConfig(window=977, slide=31, d_max=101,
                         duration_interval=13)
        m = cfg.s_partition(s)
        s1, s2 = cfg.s_cell_bounds(m)
        assert s1 <= s % (2 * cfg.w_max) < s2

    @settings(max_examples=200, deadline=None)
    @given(st.integers(1, 102))
    def test_d_cell_bounds_invert_d_partition(self, d):
        cfg = SWSTConfig(window=977, slide=31, d_max=101,
                         duration_interval=13)
        n = cfg.d_partition(d)
        d1, d2 = cfg.d_cell_bounds(n)
        assert d1 <= d < d2

    def test_cell_bounds_partition_the_space(self, cfg):
        # s-cells tile [0, 2*Wmax) without gaps or overlaps.
        edges = [cfg.s_cell_bounds(m) for m in range(2 * cfg.sp)]
        assert edges[0][0] == 0
        assert edges[-1][1] == 2 * cfg.w_max
        for (_, prev_hi), (lo, _) in zip(edges, edges[1:],
                                         strict=False):
            assert prev_hi == lo
        # d-cells tile [1, ND + 1).
        d_edges = [cfg.d_cell_bounds(n) for n in range(cfg.dp)]
        assert d_edges[0][0] == 1
        assert d_edges[-1][1] == cfg.nd + 1
        for (_, prev_hi), (lo, _) in zip(d_edges, d_edges[1:],
                                         strict=False):
            assert prev_hi == lo


class TestWindowArithmetic:
    def test_lifetime_end_formula(self, cfg):
        # ceil((s + W) / L) * L
        assert cfg.lifetime_end(0) == 20000
        assert cfg.lifetime_end(1) == 20100
        assert cfg.lifetime_end(100) == 20100

    def test_is_expired(self, cfg):
        assert not cfg.is_expired(0, 20000)
        assert cfg.is_expired(0, 20001)

    def test_queriable_period(self, cfg):
        lo, hi = cfg.queriable_period(50000)
        assert (lo, hi) == (30000, 50000)

    def test_queriable_period_floors_at_zero(self, cfg):
        assert cfg.queriable_period(100) == (0, 100)

    def test_queriable_period_rounds_by_slide(self, cfg):
        lo, _ = cfg.queriable_period(50050)
        assert lo == 30000  # floor(50050/100)*100 - 20000

    def test_logical_window(self, cfg):
        lo, hi = cfg.queriable_period(50000, window=5000)
        assert (lo, hi) == (45000, 50000)

    def test_logical_window_cannot_exceed_physical(self, cfg):
        with pytest.raises(ValueError):
            cfg.queriable_period(50000, window=30000)
        with pytest.raises(ValueError):
            cfg.queriable_period(50000, window=0)

    def test_window_size_varies_between_w_and_w_plus_l(self, cfg):
        # Section III-A: the actual window size varies in [W, W + L - 1].
        for now in range(40000, 40200):
            lo, hi = cfg.queriable_period(now)
            assert cfg.window <= hi - lo <= cfg.window + cfg.slide - 1
