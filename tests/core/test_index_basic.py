"""SWSTIndex: insertion, current entries, updates, deletes, validation."""

import pytest

from repro.core import Entry, Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)

EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def index():
    with SWSTIndex(CFG) as idx:
        yield idx


class TestClosedEntries:
    def test_insert_and_query(self, index):
        index.insert(1, 100, 100, 50, 20)
        result = index.query_timeslice(EVERYWHERE, 60)
        assert list(result) == [Entry(1, 100, 100, 50, 20)]

    def test_len_counts_entries(self, index):
        for i in range(10):
            index.insert(i, 10 * i, 10 * i, i, 5)
        assert len(index) == 10

    def test_entry_not_valid_outside_its_duration(self, index):
        index.insert(1, 100, 100, 50, 20)
        assert len(index.query_timeslice(EVERYWHERE, 49)) == 0
        assert len(index.query_timeslice(EVERYWHERE, 70)) == 0
        assert len(index.query_timeslice(EVERYWHERE, 69)) == 1

    def test_spatial_predicate(self, index):
        index.insert(1, 100, 100, 50, 20)
        index.insert(2, 900, 900, 50, 20)
        result = index.query_timeslice(Rect(0, 0, 500, 500), 60)
        assert result.oids() == {1}

    def test_overlong_duration_lands_in_top_partition(self, index):
        # Durations above Dmax are legal: keyed as ND, exact in results.
        index.insert(1, 100, 100, 50, 5000)
        result = index.query_timeslice(EVERYWHERE, 60)
        assert list(result) == [Entry(1, 100, 100, 50, 5000)]

    def test_out_of_order_insert_rejected(self, index):
        index.insert(1, 1, 1, 100, 5)
        with pytest.raises(ValueError):
            index.insert(2, 1, 1, 99, 5)

    def test_out_of_domain_insert_rejected(self, index):
        with pytest.raises(ValueError):
            index.insert(1, 1000, 0, 0, 5)

    def test_nonpositive_duration_rejected(self, index):
        with pytest.raises(ValueError):
            index.insert(1, 1, 1, 0, 0)


class TestCurrentEntries:
    def test_current_entry_valid_at_any_later_time(self, index):
        index.report(1, 100, 100, 50)
        index.advance_time(500)
        result = index.query_timeslice(EVERYWHERE, 400)
        assert list(result) == [Entry(1, 100, 100, 50, None)]

    def test_report_finalises_previous_entry(self, index):
        index.report(1, 100, 100, 50)
        index.report(1, 200, 200, 80)
        entries = sorted(index.query_interval(EVERYWHERE, 0, 100),
                         key=lambda e: e.s)
        assert entries == [Entry(1, 100, 100, 50, 30),
                           Entry(1, 200, 200, 80, None)]

    def test_same_time_re_report_is_a_correction(self, index):
        index.report(1, 100, 100, 50)
        index.report(1, 300, 300, 50)
        entries = list(index.query_interval(EVERYWHERE, 0, 100))
        assert entries == [Entry(1, 300, 300, 50, None)]

    def test_close_object_finalises(self, index):
        index.report(1, 100, 100, 50)
        assert index.close_object(1, 90)
        entries = list(index.query_interval(EVERYWHERE, 0, 100))
        assert entries == [Entry(1, 100, 100, 50, 40)]

    def test_close_object_without_current_entry(self, index):
        assert not index.close_object(99, 10)

    def test_rejected_close_leaves_state_intact(self, index):
        index.report(1, 100, 100, 50)
        with pytest.raises(ValueError):
            index.close_object(1, 50)
        assert index.current_objects() == {1: (100, 100, 50)}
        index.check_integrity()
        assert index.close_object(1, 90)

    def test_current_objects_snapshot(self, index):
        index.report(1, 100, 100, 50)
        index.report(2, 200, 200, 60)
        assert index.current_objects() == {1: (100, 100, 50),
                                           2: (200, 200, 60)}

    def test_current_entry_update_costs_two_inserts_one_delete(self, index):
        # Paper Section V-C: each report is 2 insertions + 1 deletion.
        index.report(1, 100, 100, 50)
        size_before = len(index)
        index.report(1, 200, 200, 80)
        # net effect: one more physical entry
        assert len(index) == size_before + 1


class TestDelete:
    def test_delete_closed_entry(self, index):
        index.insert(1, 100, 100, 50, 20)
        assert index.delete(1, 100, 100, 50, 20)
        assert len(index.query_interval(EVERYWHERE, 0, 100)) == 0

    def test_delete_current_entry(self, index):
        index.report(1, 100, 100, 50)
        assert index.delete(1, 100, 100, 50, None)
        assert index.current_objects() == {}
        assert len(index.query_interval(EVERYWHERE, 0, 100)) == 0

    def test_delete_missing_returns_false(self, index):
        assert not index.delete(1, 100, 100, 50, 20)

    def test_delete_any_valid_entry_not_just_current(self, index):
        # No partial-persistency restriction (unlike MV3R).
        index.insert(1, 100, 100, 10, 20)
        index.insert(2, 200, 200, 30, 20)
        index.insert(3, 300, 300, 50, 20)
        assert index.delete(1, 100, 100, 10, 20)  # oldest entry
        remaining = index.query_interval(EVERYWHERE, 0, 100).oids()
        assert remaining == {2, 3}


class TestStats:
    def test_query_reports_node_accesses(self, index):
        for i in range(200):
            index.insert(i, (i * 13) % 1000, (i * 29) % 1000, i, 10)
        result = index.query_interval(EVERYWHERE, 0, 250)
        assert result.stats.node_accesses > 0
        assert result.stats.spatial_cells > 0

    def test_full_hits_skip_refinement(self, index):
        for i in range(100):
            index.insert(i, (i * 13) % 1000, (i * 29) % 1000, 100, 10)
        index.advance_time(500)
        # Whole-domain interval covering everything: most accepted entries
        # should be full hits (no per-entry checks).
        result = index.query_interval(EVERYWHERE, 0, 500)
        assert len(result) == 100
        assert result.stats.full_hits > 0

    def test_refined_out_counts_false_positives(self, index):
        index.insert(1, 0, 999, 50, 10)   # inside the Z range of the query
        index.insert(2, 999, 0, 50, 10)
        result = index.query_interval(Rect(0, 900, 80, 999), 55, 55)
        assert result.oids() == {1}
        assert result.stats.candidates >= 1

    def test_closed_index_rejects_operations(self):
        index = SWSTIndex(CFG)
        index.close()
        with pytest.raises(ValueError):
            index.insert(1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            index.query_timeslice(EVERYWHERE, 0)
