"""SWSTIndex query results vs the naive oracle on randomised streams."""

import random

import pytest

from repro.baselines import NaiveStore
from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=5, y_partitions=5,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)


def _drive(seed: int, steps: int, objects: int = 25):
    """Feed an identical random stream into SWST and the oracle."""
    rng = random.Random(seed)
    index = SWSTIndex(CFG)
    oracle = NaiveStore(CFG)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        oid = rng.randrange(objects)
        x, y = rng.randrange(1000), rng.randrange(1000)
        if rng.random() < 0.75:
            index.report(oid, x, y, t)
            oracle.report(oid, x, y, t)
        else:
            d = rng.randrange(1, 301)
            index.insert(oid + 1000, x, y, t, d)
            oracle.insert(oid + 1000, x, y, t, d)
    # Mirror SWST's dropping of stale current entries so both sides agree.
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    return index, oracle, rng


def _key_set(entries):
    return {(e.oid, e.x, e.y, e.s, e.d) for e in entries}


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_interval_queries_match_oracle(seed):
    index, oracle, rng = _drive(seed, steps=2500)
    q_lo, q_hi = CFG.queriable_period(index.now)
    for _ in range(120):
        x0, y0 = rng.randrange(800), rng.randrange(800)
        area = Rect(x0, y0, x0 + rng.randrange(10, 300),
                    y0 + rng.randrange(10, 300))
        t_lo = rng.randrange(max(q_lo - 200, 0), q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 600)
        got = index.query_interval(area, t_lo, t_hi)
        assert len(_key_set(got)) == len(got.entries), "duplicates returned"
        assert _key_set(got) == _key_set(
            oracle.query_interval(area, t_lo, t_hi))
    index.close()


@pytest.mark.parametrize("seed", [4, 5])
def test_timeslice_queries_match_oracle(seed):
    index, oracle, rng = _drive(seed, steps=2000)
    q_lo, q_hi = CFG.queriable_period(index.now)
    for _ in range(100):
        x0, y0 = rng.randrange(700), rng.randrange(700)
        area = Rect(x0, y0, x0 + rng.randrange(50, 400),
                    y0 + rng.randrange(50, 400))
        t = rng.randrange(max(q_lo - 100, 0), q_hi + 1)
        got = index.query_timeslice(area, t)
        assert _key_set(got) == _key_set(oracle.query_timeslice(area, t))
    index.close()


@pytest.mark.parametrize("seed", [6])
def test_logical_window_queries_match_oracle(seed):
    index, oracle, rng = _drive(seed, steps=2000)
    q_lo, q_hi = CFG.queriable_period(index.now)
    for _ in range(80):
        window = rng.choice([200, 500, 1000, 2000])
        x0, y0 = rng.randrange(700), rng.randrange(700)
        area = Rect(x0, y0, x0 + 250, y0 + 250)
        t_lo = rng.randrange(max(q_lo - 100, 0), q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 400)
        got = index.query_interval(area, t_lo, t_hi, window=window)
        expected = oracle.query_interval(area, t_lo, t_hi, window=window)
        assert _key_set(got) == _key_set(expected)
    index.close()


def test_queries_far_in_the_past_or_future_are_empty():
    index, oracle, _ = _drive(7, steps=1200)
    area = Rect(0, 0, 999, 999)
    q_lo, _ = CFG.queriable_period(index.now)
    if q_lo > 0:
        past = index.query_interval(area, 0, max(q_lo - CFG.slide - 1, 0))
        assert all(e.end > 0 for e in past)  # nothing invalid slips in
    index.close()


def test_memo_disabled_returns_identical_results():
    import dataclasses
    rng = random.Random(9)
    cfg_off = dataclasses.replace(CFG, use_memo=False)
    on = SWSTIndex(CFG)
    off = SWSTIndex(cfg_off)
    t = 0
    for _ in range(1200):
        t += rng.randrange(0, 4)
        oid = rng.randrange(25)
        x, y = rng.randrange(1000), rng.randrange(1000)
        on.report(oid, x, y, t)
        off.report(oid, x, y, t)
    q_lo, q_hi = CFG.queriable_period(on.now)
    for _ in range(60):
        x0, y0 = rng.randrange(700), rng.randrange(700)
        area = Rect(x0, y0, x0 + 200, y0 + 200)
        t_lo = rng.randrange(max(q_lo - 100, 0), q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 500)
        assert _key_set(on.query_interval(area, t_lo, t_hi)) == \
            _key_set(off.query_interval(area, t_lo, t_hi))
    on.close()
    off.close()


def test_spatial_keys_disabled_returns_identical_results():
    import dataclasses
    rng = random.Random(10)
    cfg_off = dataclasses.replace(CFG, spatial_keys=False)
    on = SWSTIndex(CFG)
    off = SWSTIndex(cfg_off)
    t = 0
    for _ in range(1200):
        t += rng.randrange(0, 4)
        oid = rng.randrange(25)
        x, y = rng.randrange(1000), rng.randrange(1000)
        on.report(oid, x, y, t)
        off.report(oid, x, y, t)
    q_lo, q_hi = CFG.queriable_period(on.now)
    for _ in range(60):
        x0, y0 = rng.randrange(700), rng.randrange(700)
        area = Rect(x0, y0, x0 + 200, y0 + 200)
        t_lo = rng.randrange(max(q_lo - 100, 0), q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 500)
        assert _key_set(on.query_interval(area, t_lo, t_hi)) == \
            _key_set(off.query_interval(area, t_lo, t_hi))
    on.close()
    off.close()
