"""QueryStats/QueryResult merging: additive counters, chaining, iadd."""

from dataclasses import fields

from repro.core import Entry, QueryResult, QueryStats


def stats_with(value):
    # Every additive counter gets ``value``; the sticky ``degraded``
    # flag OR-merges instead and is exercised separately below.
    return QueryStats(**{f.name: value for f in fields(QueryStats)
                         if f.name != "degraded"})


class TestQueryStatsMerge:
    def test_merge_adds_every_counter(self):
        merged = stats_with(1).merge(stats_with(2))
        assert merged == stats_with(3)

    def test_degraded_flag_is_sticky_not_additive(self):
        base = QueryStats()
        assert not base.merge(QueryStats()).degraded
        base.merge(QueryStats(degraded=True))
        assert base.degraded
        base.merge(QueryStats())  # never resets once set
        assert base.degraded

    def test_merge_returns_self_for_chaining(self):
        base = stats_with(1)
        assert base.merge(stats_with(1)).merge(stats_with(1)) is base
        assert base == stats_with(3)

    def test_iadd_accumulates(self):
        total = QueryStats()
        for _ in range(4):
            total += stats_with(2)
        assert total == stats_with(8)

    def test_merge_with_zero_is_identity(self):
        base = QueryStats(node_accesses=7, candidates=3, full_hits=1)
        assert base.merge(QueryStats()) == QueryStats(
            node_accesses=7, candidates=3, full_hits=1)


class TestQueryResultMerge:
    def test_merge_concatenates_entries_and_adds_stats(self):
        a = QueryResult(entries=[Entry(1, 0, 0, 0, 5)],
                        stats=QueryStats(node_accesses=2))
        b = QueryResult(entries=[Entry(2, 1, 1, 1, None)],
                        stats=QueryStats(node_accesses=3))
        merged = a.merge(b)
        assert merged is a
        assert [e.oid for e in merged] == [1, 2]
        assert merged.stats.node_accesses == 5
        # The source result is untouched.
        assert [e.oid for e in b] == [2]
        assert b.stats.node_accesses == 3

    def test_merge_empty_results(self):
        a = QueryResult()
        a.merge(QueryResult())
        assert len(a) == 0
        assert a.stats == QueryStats()

    def test_oids_after_merge(self):
        a = QueryResult(entries=[Entry(1, 0, 0, 0, 5)])
        a.merge(QueryResult(entries=[Entry(1, 2, 2, 2, 5),
                                     Entry(3, 3, 3, 3, None)]))
        assert a.oids() == {1, 3}
