"""The compiled query-plan cache: hits, epoch fencing (a pre-slide plan
is never reused after a slide), memo-generation fencing of cached key
ranges, LRU bounding, and byte-identical statistics with the cache on
and off."""

import dataclasses
import random

import pytest

from repro.core import (PlanCache, QueryStats, Rect, SWSTConfig, SWSTIndex,
                        build_query_plan, classify_interval)

CFG = SWSTConfig(window=200, slide=20, x_partitions=4, y_partitions=4,
                 d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                 page_size=512)


def fill(index, seed=7, count=250):
    rng = random.Random(seed)
    t = 0
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        index.report(rng.randrange(30), rng.randrange(100),
                     rng.randrange(100), t)
    return t


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def stats_without_cache_hits(stats):
    clone = dataclasses.replace(stats)
    clone.plan_cache_hits = 0
    return clone


class TestPlanCacheHits:
    def test_repeated_query_hits_the_cache(self):
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(10, 10, 60, 60)
            first = index.query_interval(area, t - 50, t)
            second = index.query_interval(area, t - 50, t)
            assert first.stats.plan_cache_hits == 0
            assert second.stats.plan_cache_hits == 1
            assert sorted(map(entry_key, first.entries)) == \
                sorted(map(entry_key, second.entries))

    def test_cached_results_and_stats_are_identical(self):
        """Everything except the hit counter is byte-identical on a hit
        — including node accesses (the cache must not change IO)."""
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(5, 5, 80, 80)
            first = index.query_interval(area, t - 80, t)
            second = index.query_interval(area, t - 80, t)
            assert stats_without_cache_hits(first.stats) == \
                stats_without_cache_hits(second.stats)
            assert [entry_key(e) for e in first.entries] == \
                [entry_key(e) for e in second.entries]

    def test_distinct_signatures_miss(self):
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(0, 0, 99, 99)
            index.query_interval(area, t - 50, t)
            other = index.query_interval(area, t - 51, t)
            assert other.stats.plan_cache_hits == 0
            windowed = index.query_interval(area, t - 50, t, 100)
            assert windowed.stats.plan_cache_hits == 0

    def test_count_and_knn_share_the_cache(self):
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(0, 0, 99, 99)
            index.query_interval(area, t - 30, t)
            _, count_stats = index.count_interval(area, t - 30, t)
            assert count_stats.plan_cache_hits == 1
            knn = index.query_knn(50, 50, 3, t - 30, t)
            assert knn.stats.plan_cache_hits == 1


class TestEpochFence:
    def test_pre_slide_plan_is_never_reused_after_slide(self):
        """S1 regression: a plan compiled before advance_time must not
        answer queries after the clock moved — the queriable period
        (and possibly the live tree set) changed."""
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(0, 0, 99, 99)
            index.query_interval(area, t - 50, t)  # populate the cache
            index.advance_time(t + CFG.slide)
            post = index.query_interval(area, t - 50, t)
            assert post.stats.plan_cache_hits == 0
            # The post-slide result matches a fresh index that never
            # cached anything.
            with SWSTIndex(CFG) as fresh:
                fill(fresh)
                fresh.advance_time(t + CFG.slide)
                expected = fresh.query_interval(area, t - 50, t)
            assert sorted(map(entry_key, post.entries)) == \
                sorted(map(entry_key, expected.entries))
            assert stats_without_cache_hits(post.stats) == \
                stats_without_cache_hits(expected.stats)

    def test_slide_across_drop_boundary_invalidates(self):
        """A slide that crosses a Wmax boundary drops a whole tree; the
        fence must hold there too (the old plan references dropped
        columns)."""
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(0, 0, 99, 99)
            index.query_interval(area, max(t - 50, 0), t)
            boundary = (t // CFG.w_max + 2) * CFG.w_max
            index.advance_time(boundary)
            q_lo, q_hi = CFG.queriable_period(boundary)
            post = index.query_interval(area, q_lo, q_hi)
            assert post.stats.plan_cache_hits == 0
            index.check_integrity()

    def test_same_clock_mutation_is_visible_through_the_cache(self):
        """Inserts at an unchanged clock don't invalidate the plan (the
        classification can't change) but must invalidate the cached
        memo-pruned ranges — the new entry has to be found."""
        with SWSTIndex(CFG) as index:
            t = fill(index)
            area = Rect(0, 0, 99, 99)
            index.query_interval(area, t - 30, t)
            index.insert(991, 50, 50, t, 5)  # same clock
            hit = index.query_interval(area, t - 30, t)
            assert hit.stats.plan_cache_hits == 1
            assert (991, 50, 50, t, 5) in [entry_key(e)
                                           for e in hit.entries]

    def test_same_clock_delete_is_visible_through_the_cache(self):
        with SWSTIndex(CFG) as index:
            t = fill(index)
            index.insert(992, 40, 40, t, 7)
            area = Rect(0, 0, 99, 99)
            before = index.query_interval(area, t - 30, t)
            assert (992, 40, 40, t, 7) in [entry_key(e)
                                           for e in before.entries]
            assert index.delete(992, 40, 40, t, 7)
            after = index.query_interval(area, t - 30, t)
            assert after.stats.plan_cache_hits == 1
            assert (992, 40, 40, t, 7) not in [entry_key(e)
                                               for e in after.entries]


class TestCacheDisabled:
    def test_size_zero_disables_caching_with_identical_results(self):
        cached_cfg = CFG
        uncached_cfg = dataclasses.replace(CFG, plan_cache_size=0)
        with SWSTIndex(cached_cfg) as cached, \
                SWSTIndex(uncached_cfg) as uncached:
            t = fill(cached)
            fill(uncached)
            area = Rect(10, 0, 70, 90)
            for _ in range(3):
                a = cached.query_interval(area, t - 40, t)
                b = uncached.query_interval(area, t - 40, t)
                assert b.stats.plan_cache_hits == 0
                assert [entry_key(e) for e in a.entries] == \
                    [entry_key(e) for e in b.entries]
                # Identical logical work, in particular node accesses.
                assert stats_without_cache_hits(a.stats) == \
                    stats_without_cache_hits(b.stats)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            dataclasses.replace(CFG, plan_cache_size=-1)


class TestPlanCacheUnit:
    def make_plan(self, clock, t_lo, t_hi, window=None):
        columns = classify_interval(CFG, clock, t_lo, t_hi, window)
        assert columns
        return build_query_plan(CFG, clock, columns, t_lo, t_hi, window)

    def test_lru_bound(self):
        cache = PlanCache(4)
        for t_lo in range(10):
            plan = self.make_plan(100, t_lo, 100)
            cache.store(plan, t_lo, 100, None)
        assert len(cache) == 4
        assert cache.lookup(9, 100, None, 100) is not None
        assert cache.lookup(0, 100, None, 100) is None

    def test_lookup_moves_to_front(self):
        cache = PlanCache(2)
        cache.store(self.make_plan(100, 1, 100), 1, 100, None)
        cache.store(self.make_plan(100, 2, 100), 2, 100, None)
        assert cache.lookup(1, 100, None, 100) is not None
        cache.store(self.make_plan(100, 3, 100), 3, 100, None)
        assert cache.lookup(1, 100, None, 100) is not None
        assert cache.lookup(2, 100, None, 100) is None

    def test_clock_fence_drops_stale_entry_defensively(self):
        cache = PlanCache(4)
        cache.store(self.make_plan(100, 5, 100), 5, 100, None)
        assert cache.lookup(5, 100, None, 120) is None
        assert len(cache) == 0

    def test_invalidate_clears_everything(self):
        cache = PlanCache(4)
        cache.store(self.make_plan(100, 5, 100), 5, 100, None)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup(5, 100, None, 100) is None

    def test_capacity_zero_stores_nothing(self):
        cache = PlanCache(0)
        entry = cache.store(self.make_plan(100, 5, 100), 5, 100, None)
        assert entry.plan.clock == 100  # entry still usable in-query
        assert len(cache) == 0
        assert cache.lookup(5, 100, None, 100) is None

    def test_plan_is_frozen(self):
        plan = self.make_plan(100, 5, 100)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.q_lo = 0
