"""Property-based end-to-end test: SWST equals the oracle on arbitrary
streams and arbitrary queries, including window slides and deletions."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveStore
from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=200, slide=20, x_partitions=3, y_partitions=3,
                 d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                 page_size=512)


def _key_set(entries):
    return {(e.oid, e.x, e.y, e.s, e.d) for e in entries}


stream_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),            # oid
        st.integers(0, 99),           # x
        st.integers(0, 99),           # y
        # Mostly small gaps, occasionally a jump across window boundaries
        # (CFG.w_max = 219) so drops interleave with the stream.
        st.one_of(st.integers(0, 6), st.integers(150, 500)),
        st.one_of(st.none(), st.integers(1, 40)),  # duration (None=report)
    ),
    min_size=1, max_size=120,
)

query_strategy = st.lists(
    st.tuples(
        st.integers(0, 80), st.integers(0, 80),   # x_lo, y_lo
        st.integers(1, 60), st.integers(1, 60),   # width, height
        st.integers(0, 700),                      # t_lo
        st.integers(0, 120),                      # interval length
        st.sampled_from([None, 50, 100, 200]),    # logical window
    ),
    min_size=1, max_size=25,
)


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=stream_strategy, queries=query_strategy)
def test_swst_equals_oracle_on_arbitrary_streams(stream, queries):
    index = SWSTIndex(CFG)
    oracle = NaiveStore(CFG)
    t = 0
    for oid, x, y, gap, duration in stream:
        t += gap
        index.insert(oid, x, y, t, duration)
        oracle.insert(oid, x, y, t, duration)
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    for x_lo, y_lo, width, height, t_lo, length, window in queries:
        area = Rect(x_lo, y_lo, min(x_lo + width, 99),
                    min(y_lo + height, 99))
        t_hi = t_lo + length
        got = index.query_interval(area, t_lo, t_hi, window=window)
        expected = oracle.query_interval(area, t_lo, t_hi, window=window)
        assert _key_set(got) == _key_set(expected)
    index.close()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=stream_strategy, seed=st.integers(0, 1000))
def test_deletions_preserve_oracle_agreement(stream, seed):
    index = SWSTIndex(CFG)
    oracle = NaiveStore(CFG)
    t = 0
    inserted = []
    for oid, x, y, gap, duration in stream:
        t += gap
        index.insert(oid, x, y, t, duration)
        oracle.insert(oid, x, y, t, duration)
        if duration is not None:
            inserted.append((oid, x, y, t, duration))
    rng = random.Random(seed)
    rng.shuffle(inserted)
    for victim in inserted[:len(inserted) // 2]:
        index_deleted = index.delete(*victim)
        oracle_deleted = oracle.delete(*victim)
        if index_deleted != oracle_deleted:
            # The only legal divergence: SWST already dropped the entry's
            # whole window (the oracle keeps history forever).
            assert oracle_deleted and not index_deleted
            assert victim[3] // CFG.w_max <= index._drop_epoch - 2
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    area = Rect(0, 0, 99, 99)
    q_lo, q_hi = CFG.queriable_period(index.now)
    got = index.query_interval(area, max(q_lo - 50, 0), q_hi + 50)
    expected = oracle.query_interval(area, max(q_lo - 50, 0), q_hi + 50)
    assert _key_set(got) == _key_set(expected)
    index.close()
