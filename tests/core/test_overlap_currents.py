"""Overlap classification of *current* entries (the top d-partition).

The paper: "The current entries whose start timestamp satisfies the
overlapping criteria and are within the queriable time period will always
have a full overlap."  These tests pin that behaviour and the index-level
consequences.
"""

from repro.core import (Rect, SWSTConfig, SWSTIndex, classify_interval,
                        classify_timeslice)

CFG = SWSTConfig(window=400, slide=20, d_max=60, duration_interval=20)


class TestClassifier:
    def test_top_partition_always_overlaps(self):
        # Any column with queriable starts overlaps at the top partition,
        # because current entries (d = inf) reach past any t_lo.
        columns = classify_interval(CFG, now=1000, t_lo=990, t_hi=1000)
        assert columns
        for column in columns:
            assert column.d_first <= CFG.dp - 1

    def test_current_entries_fully_overlap_when_start_qualifies(self):
        # A column whose whole start range precedes the timeslice: its top
        # partition must be classified full (no refinement for currents).
        now = 1000
        t = 995
        for column in classify_timeslice(CFG, now, t):
            s1_mod, s2_mod = CFG.s_cell_bounds(column.s_part)
            # Reconstruct the absolute bounds from the clipped ones.
            if column.s_abs_hi < t and column.d_full < CFG.dp:
                assert column.overlap_kind(CFG.dp - 1) == "full"

    def test_old_current_entry_found_by_recent_timeslice(self):
        index = SWSTIndex(SWSTConfig(window=400, slide=20, d_max=60,
                                     duration_interval=20, x_partitions=2,
                                     y_partitions=2,
                                     space=Rect(0, 0, 99, 99),
                                     page_size=512))
        index.report(1, 10, 10, 100)
        index.advance_time(450)
        # 350 time units later and with zero same-duration entries nearby,
        # the current entry still answers the timeslice.
        hits = index.query_timeslice(Rect(0, 0, 99, 99), 440)
        assert [e.oid for e in hits] == [1]
        index.close()

    def test_current_entry_not_found_before_start(self):
        index = SWSTIndex(SWSTConfig(window=400, slide=20, d_max=60,
                                     duration_interval=20, x_partitions=2,
                                     y_partitions=2,
                                     space=Rect(0, 0, 99, 99),
                                     page_size=512))
        index.report(1, 10, 10, 100)
        index.advance_time(450)
        assert len(index.query_timeslice(Rect(0, 0, 99, 99), 90)) == 0
        index.close()

    def test_current_entry_expires_with_window(self):
        index = SWSTIndex(SWSTConfig(window=400, slide=20, d_max=60,
                                     duration_interval=20, x_partitions=2,
                                     y_partitions=2,
                                     space=Rect(0, 0, 99, 99),
                                     page_size=512))
        index.report(1, 10, 10, 100)
        index.advance_time(600)  # start 100 left the queriable period
        hits = index.query_interval(Rect(0, 0, 99, 99), 0, 600)
        assert len(hits) == 0
        index.close()
