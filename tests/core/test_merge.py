"""The paper's merge algorithm must agree with the direct classifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SWSTConfig, classify_interval, classify_interval_merge

CFG = SWSTConfig(window=40, slide=10, d_max=12, duration_interval=4)


def _normalize(columns):
    return sorted((c.tree, c.s_part, c.s_abs_lo, c.s_abs_hi, c.d_first,
                   c.d_full) for c in columns)


class TestEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(now=st.integers(0, 500), offset=st.integers(-80, 0),
           length=st.integers(0, 80))
    def test_merge_equals_direct_for_intervals(self, now, offset, length):
        t_lo = max(now + offset - length, 0)
        t_hi = t_lo + length
        direct = classify_interval(CFG, now, t_lo, t_hi)
        merged = classify_interval_merge(CFG, now, t_lo, t_hi)
        assert _normalize(direct) == _normalize(merged)

    @settings(max_examples=100, deadline=None)
    @given(now=st.integers(0, 500), offset=st.integers(-60, 0))
    def test_merge_equals_direct_for_timeslices(self, now, offset):
        t = max(now + offset, 0)
        direct = classify_interval(CFG, now, t, t)
        merged = classify_interval_merge(CFG, now, t, t)
        assert _normalize(direct) == _normalize(merged)

    @settings(max_examples=60, deadline=None)
    @given(now=st.integers(40, 500), offset=st.integers(-30, 0),
           length=st.integers(0, 40), window=st.integers(1, 40))
    def test_merge_respects_logical_windows(self, now, offset, length,
                                            window):
        t_lo = max(now + offset - length, 0)
        t_hi = t_lo + length
        direct = classify_interval(CFG, now, t_lo, t_hi, window)
        merged = classify_interval_merge(CFG, now, t_lo, t_hi, window)
        assert _normalize(direct) == _normalize(merged)

    def test_other_configurations(self):
        for cfg in (SWSTConfig(window=12, slide=4, d_max=6,
                               duration_interval=3),
                    SWSTConfig(window=100, slide=7, d_max=30,
                               duration_interval=11)):
            for now in range(0, 6 * cfg.w_max, cfg.w_max // 3):
                for t_lo in range(max(now - cfg.window, 0), now + 1,
                                  max(cfg.window // 4, 1)):
                    for length in (0, cfg.slide, cfg.window // 2):
                        direct = classify_interval(cfg, now, t_lo,
                                                   t_lo + length)
                        merged = classify_interval_merge(cfg, now, t_lo,
                                                         t_lo + length)
                        assert _normalize(direct) == _normalize(merged)
