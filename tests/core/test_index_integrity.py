"""check_integrity: the cross-structure invariants hold through every
lifecycle event (inserts, updates, deletes, drops, reopen)."""

import random

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)


def _random_ops(index, steps, seed, objects=20):
    rng = random.Random(seed)
    t = index.now
    closed = []
    for _ in range(steps):
        t += rng.randrange(0, 4)
        oid = rng.randrange(objects)
        x, y = rng.randrange(1000), rng.randrange(1000)
        if rng.random() < 0.7:
            index.report(oid, x, y, t)
        else:
            d = rng.randrange(1, 301)
            index.insert(oid + 100, x, y, t, d)
            closed.append((oid + 100, x, y, t, d))
    return closed


class TestIntegrity:
    def test_after_pure_inserts(self):
        index = SWSTIndex(CFG)
        _random_ops(index, 800, seed=1)
        index.check_integrity()
        index.close()

    def test_after_deletes(self):
        index = SWSTIndex(CFG)
        closed = _random_ops(index, 800, seed=2)
        rng = random.Random(3)
        rng.shuffle(closed)
        for victim in closed[: len(closed) // 2]:
            index.delete(*victim)
        index.check_integrity()
        index.close()

    def test_after_window_drops(self):
        index = SWSTIndex(CFG)
        _random_ops(index, 600, seed=4)
        index.advance_time(index.now + 3 * CFG.w_max)
        index.check_integrity()
        _random_ops(index, 400, seed=5)
        index.check_integrity()
        index.close()

    def test_after_reopen(self, tmp_path):
        path = str(tmp_path / "x.db")
        index = SWSTIndex(CFG, path=path)
        _random_ops(index, 500, seed=6)
        index.save()
        index.close()
        reopened = SWSTIndex.open(path, CFG)
        reopened.check_integrity()
        reopened.close()

    def test_detects_size_corruption(self):
        index = SWSTIndex(CFG)
        _random_ops(index, 100, seed=7)
        index._size += 1
        with pytest.raises(AssertionError):
            index.check_integrity()
        index.close()

    def test_detects_current_table_corruption(self):
        index = SWSTIndex(CFG)
        index.report(1, 10, 10, 100)
        index._current[99] = (1, 1, 1)
        with pytest.raises(AssertionError):
            index.check_integrity()
        index.close()

    def test_detects_memo_corruption(self):
        index = SWSTIndex(CFG)
        index.insert(1, 10, 10, 100, 50)
        memo = index._memos[index.grid.cell_of(10, 10)]
        s_part = CFG.s_partition(100)
        d_part = CFG.d_partition(50)
        memo._cells[(s_part, d_part)][0] += 1
        with pytest.raises(AssertionError):
            index.check_integrity()
        index.close()
