"""Key codec: field packing, ordering properties, column ranges."""

import pytest

from repro.core import KeyCodec, Rect, SWSTConfig
from repro.sfc import zc_encode


@pytest.fixture
def cfg():
    return SWSTConfig(window=2000, slide=100, d_max=300,
                      duration_interval=50, space=Rect(0, 0, 999, 999))


@pytest.fixture
def codec(cfg):
    return KeyCodec(cfg)


class TestEncodeDecode:
    def test_decode_inverts_encode(self, cfg, codec):
        key = codec.encode(s=150, d=70, x=3, y=900)
        decoded = codec.decode(key)
        assert decoded.s_part == cfg.s_partition(150)
        assert decoded.d_part == cfg.d_partition(70)
        assert decoded.z_value == zc_encode(3, 900, codec.zc_order)

    def test_key_fits_declared_width(self, cfg, codec):
        key = codec.encode(s=2 * cfg.w_max - 1, d=cfg.nd,
                           x=cfg.space.x_hi, y=cfg.space.y_hi)
        assert key < (1 << codec.key_bits)

    def test_key_width_is_bounded(self, codec):
        assert codec.key_bits <= 128

    def test_too_wide_key_rejected(self):
        big = Rect(0, 0, (1 << 60) - 1, (1 << 60) - 1)
        with pytest.raises(ValueError):
            KeyCodec(SWSTConfig(space=big))


class TestOrdering:
    """The properties Section III-B.2 claims for the linearisation."""

    def test_s_partition_dominates(self, cfg, codec):
        # All keys of one s-partition sort below all keys of the next, so
        # a window's entries form one contiguous droppable band.
        low = codec.encode(s=0, d=cfg.nd, x=cfg.space.x_hi,
                           y=cfg.space.y_hi)
        high = codec.encode(s=cfg.slide, d=1, x=0, y=0)
        assert cfg.s_partition(0) < cfg.s_partition(cfg.slide)
        assert low < high

    def test_d_partition_orders_within_column(self, cfg, codec):
        low = codec.encode(s=0, d=1, x=cfg.space.x_hi, y=cfg.space.y_hi)
        high = codec.encode(s=0, d=cfg.d_max, x=0, y=0)
        assert low < high

    def test_z_value_orders_within_cell(self, codec):
        assert codec.encode(0, 1, 0, 0) < codec.encode(0, 1, 1, 0) \
            < codec.encode(0, 1, 1, 1)

    def test_modulo_keeps_keys_bounded_over_time(self, cfg, codec):
        # Paper: the key width never grows with stream time.
        early = codec.encode(s=10, d=1, x=5, y=5)
        late = codec.encode(s=10 + 2 * cfg.w_max * 1000, d=1, x=5, y=5)
        assert early == late


class TestColumnRange:
    def test_range_covers_all_cell_points(self, cfg, codec):
        clipped = Rect(100, 200, 150, 260)
        lo, hi = codec.column_range(3, 1, 4, clipped)
        for x in (100, 125, 150):
            for y in (200, 230, 260):
                for d_part in (1, 2, 3, 4):
                    key = codec.pack(3, d_part, x, y)
                    assert lo <= key <= hi

    def test_range_excludes_other_columns(self, cfg, codec):
        clipped = Rect(0, 0, 999, 999)
        lo, hi = codec.column_range(3, 0, cfg.dp - 1, clipped)
        other = codec.pack(4, 0, 0, 0)
        assert not lo <= other <= hi

    def test_range_excludes_lower_d_partitions(self, cfg, codec):
        clipped = Rect(0, 0, 999, 999)
        lo, _ = codec.column_range(3, 2, 4, clipped)
        below = codec.pack(3, 1, 999, 999)
        assert below < lo

    def test_empty_d_range_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.column_range(0, 3, 2, Rect(0, 0, 1, 1))


class TestSpatialKeyAblation:
    def test_without_spatial_bits_location_is_ignored(self, cfg):
        codec = KeyCodec(SWSTConfig(window=2000, slide=100, d_max=300,
                                    duration_interval=50,
                                    space=Rect(0, 0, 999, 999),
                                    spatial_keys=False))
        assert codec.encode(5, 1, 0, 0) == codec.encode(5, 1, 999, 999)
        assert codec.z_bits == 0

    def test_without_spatial_bits_temporal_order_kept(self, cfg):
        codec = KeyCodec(SWSTConfig(window=2000, slide=100, d_max=300,
                                    duration_interval=50,
                                    space=Rect(0, 0, 999, 999),
                                    spatial_keys=False))
        assert codec.encode(0, 1, 0, 0) < codec.encode(0, 200, 0, 0) \
            < codec.encode(150, 1, 0, 0)
