"""KNN bounded-heap regression: results and ordering match a full sort.

``_knn_ring_search`` keeps the k best candidates in a bounded max-heap
instead of re-sorting the whole candidate list after every ring.  The
observable contract is unchanged: exactly the k nearest entries, ordered
by ascending ``(dist², oid, s)``.  The reference below materialises every
valid entry and sorts once.
"""

import random

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=5, y_partitions=5,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


def _reference_knn(index, x, y, k, t_lo, t_hi):
    """Full-sort oracle over the materialised interval query."""
    entries = list(index.query_interval(EVERYWHERE, t_lo, t_hi))
    entries.sort(key=lambda e: ((e.x - x) ** 2 + (e.y - y) ** 2,
                                e.oid, e.s))
    return [(e.oid, e.x, e.y, e.s, e.d) for e in entries[:k]]


def _loaded(seed=21, steps=1500, objects=25):
    rng = random.Random(seed)
    index = SWSTIndex(CFG)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        index.report(rng.randrange(objects), rng.randrange(1000),
                     rng.randrange(1000), t)
    return index, rng


class TestBoundedHeapMatchesFullSort:
    def test_random_queries_exact_order(self):
        index, rng = _loaded()
        q_lo, q_hi = CFG.queriable_period(index.now)
        for _ in range(50):
            x, y = rng.randrange(1000), rng.randrange(1000)
            k = rng.randrange(1, 12)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 400)
            got = [(e.oid, e.x, e.y, e.s, e.d)
                   for e in index.query_knn(x, y, k, t_lo, t_hi)]
            assert got == _reference_knn(index, x, y, k, t_lo, t_hi)
        index.close()

    def test_k_larger_than_population_returns_all_sorted(self):
        index, _ = _loaded(seed=22, steps=100, objects=5)
        q_lo, q_hi = CFG.queriable_period(index.now)
        got = [(e.oid, e.x, e.y, e.s, e.d)
               for e in index.query_knn(500, 500, 10_000, q_lo, q_hi)]
        assert got == _reference_knn(index, 500, 500, 10_000, q_lo, q_hi)
        index.close()


class TestTieBreaking:
    def test_equal_distances_break_ties_by_oid_then_start(self):
        """Co-located entries (equal dist²) must come out in (oid, s)
        order — this is where heap comparisons would reach the Entry
        objects without the sequence-number guard."""
        index = SWSTIndex(CFG)
        # Several objects at the same point, plus one object reporting
        # twice from the same point (same dist², same oid, differing s).
        for oid in (5, 3, 9, 1):
            index.insert(oid, 400, 400, 0, 100)
        index.insert(7, 410, 400, 0, 100)  # strictly farther
        index.insert(3, 400, 400, 120, 100)
        got = [(e.oid, e.s) for e in index.query_knn(400, 400, 6, 0, 300)]
        assert got == [(1, 0), (3, 0), (3, 120), (5, 0), (9, 0), (7, 0)]
        index.close()

    def test_bounded_heap_keeps_best_not_first(self):
        """With k smaller than a co-located cluster the heap must evict
        earlier, worse candidates found in the same ring."""
        index = SWSTIndex(CFG)
        for oid in (9, 8, 7, 6, 5):
            index.insert(oid, 200, 200, 0, 100)
        got = [(e.oid, e.s) for e in index.query_knn(200, 200, 2, 0, 200)]
        assert got == [(5, 0), (6, 0)]
        index.close()
