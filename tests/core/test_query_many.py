"""S3/S4 sweeps: boundary semantics (degenerate intervals and
rectangles) and the ``query_interval_many`` equivalence oracle — the
batched multi-rectangle path must return, per rectangle, exactly what a
rectangle-at-a-time ``query_interval`` loop returns, including the
refinement statistics (node accesses excepted: batched descents are
shared and reported only at batch level)."""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MultiQueryResult, Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=200, slide=20, x_partitions=4, y_partitions=4,
                 d_max=40, duration_interval=10, space=Rect(0, 0, 99, 99),
                 page_size=512)


def fill(index, seed=13, count=300):
    rng = random.Random(seed)
    t = 0
    for _ in range(count):
        t += rng.choice([0, 1, 1, 2])
        if rng.random() < 0.25:
            index.insert(rng.randrange(30), rng.randrange(100),
                         rng.randrange(100), t, rng.randrange(1, 45))
        else:
            index.report(rng.randrange(30), rng.randrange(100),
                         rng.randrange(100), t)
    return t


def entry_key(entry):
    return (entry.oid, entry.x, entry.y, entry.s,
            -1 if entry.d is None else entry.d)


def stats_without_node_accesses(stats):
    clone = dataclasses.replace(stats)
    clone.node_accesses = 0
    clone.plan_cache_hits = 0
    return clone


rect_strategy = st.builds(
    lambda x, y, w, h: Rect(x, y, min(x + w, 99), min(y + h, 99)),
    st.integers(0, 99), st.integers(0, 99),
    st.integers(0, 70), st.integers(0, 70),
)


@pytest.fixture(scope="module")
def filled_index():
    with SWSTIndex(CFG) as index:
        t = fill(index)
        yield index, t


class TestBoundarySemantics:
    """S3: point intervals and degenerate rectangles."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(area=rect_strategy, back=st.integers(0, 250),
           window=st.sampled_from([None, 50, 200]))
    def test_point_interval_equals_timeslice(self, filled_index, area,
                                             back, window):
        index, t = filled_index
        at = max(t - back, 0)
        interval = index.query_interval(area, at, at, window)
        timeslice = index.query_timeslice(area, at, window)
        assert sorted(map(entry_key, interval.entries)) == \
            sorted(map(entry_key, timeslice.entries))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(x=st.integers(0, 99), y=st.integers(0, 99),
           back=st.integers(0, 150), length=st.integers(0, 80))
    def test_degenerate_rects_scalar_vs_batched(self, filled_index, x, y,
                                                back, length):
        """Line and point rectangles (x_lo == x_hi and/or y_lo == y_hi)
        through both evaluation paths."""
        index, t = filled_index
        t_lo = max(t - back, 0)
        t_hi = t_lo + length
        areas = [Rect(x, y, x, y),           # point
                 Rect(x, 0, x, 99),          # vertical line
                 Rect(0, y, 99, y)]          # horizontal line
        batch = index.query_interval_many(areas, t_lo, t_hi)
        assert isinstance(batch, MultiQueryResult)
        assert len(batch) == len(areas)
        for area, result in zip(areas, batch):
            scalar = index.query_interval(area, t_lo, t_hi)
            assert [entry_key(e) for e in result.entries] == \
                [entry_key(e) for e in scalar.entries]

    def test_count_matches_query_on_degenerate_rects(self, filled_index):
        index, t = filled_index
        for area in (Rect(50, 50, 50, 50), Rect(0, 31, 99, 31)):
            count, _ = index.count_interval(area, t - 60, t)
            assert count == len(index.query_interval(area, t - 60, t))


class TestManyEquivalence:
    """S4: the hypothesis oracle over the batched API."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(areas=st.lists(rect_strategy, min_size=1, max_size=8),
           back=st.integers(0, 250), length=st.integers(0, 120),
           window=st.sampled_from([None, 50, 200]))
    def test_batched_equals_scalar_loop(self, filled_index, areas, back,
                                        length, window):
        index, t = filled_index
        t_lo = max(t - back, 0)
        t_hi = t_lo + length
        batch = index.query_interval_many(areas, t_lo, t_hi, window)
        assert len(batch.results) == len(areas)
        for area, result in zip(areas, batch.results):
            scalar = index.query_interval(area, t_lo, t_hi, window)
            assert [entry_key(e) for e in result.entries] == \
                [entry_key(e) for e in scalar.entries]
            # Per-rectangle refinement statistics are exact; only node
            # accesses live at batch level (shared descents).
            assert result.stats.node_accesses == 0
            assert stats_without_node_accesses(result.stats) == \
                stats_without_node_accesses(scalar.stats)

    def test_empty_batch(self, filled_index):
        index, t = filled_index
        batch = index.query_interval_many([], t - 10, t)
        assert len(batch) == 0
        assert batch.stats.node_accesses == 0

    def test_duplicate_and_nested_rects(self, filled_index):
        """Identical and fully-nested rectangles share every cell; the
        per-rect slicing must still attribute hits correctly."""
        index, t = filled_index
        big = Rect(0, 0, 99, 99)
        small = Rect(20, 20, 40, 40)
        areas = [big, big, small, big]
        batch = index.query_interval_many(areas, t - 40, t)
        expected_big = index.query_interval(big, t - 40, t)
        expected_small = index.query_interval(small, t - 40, t)
        for idx, expected in zip(range(4), [expected_big, expected_big,
                                            expected_small, expected_big]):
            assert [entry_key(e) for e in batch.results[idx].entries] == \
                [entry_key(e) for e in expected.entries]

    def test_batch_reuses_one_plan(self, filled_index):
        index, t = filled_index
        index.query_interval(Rect(0, 0, 9, 9), t - 25, t)
        batch = index.query_interval_many(
            [Rect(0, 0, 50, 50), Rect(10, 10, 99, 99)], t - 25, t)
        # One cache hit for the whole batch, not one per rectangle.
        assert batch.stats.plan_cache_hits == 1

    def test_invalid_interval_rejected(self, filled_index):
        index, t = filled_index
        with pytest.raises(ValueError, match="empty query interval"):
            index.query_interval_many([Rect(0, 0, 9, 9)], t, t - 1)
