"""End-to-end oracle agreement across a matrix of configurations.

The single most important integration property — SWST returns exactly the
model's answer — must hold for any legal combination of page size, grid
resolution, partition counts and window geometry, not just the defaults
the other tests use.
"""

import random

import pytest

from repro.baselines import NaiveStore
from repro.core import Rect, SWSTConfig, SWSTIndex

CONFIGS = {
    "tiny-pages": SWSTConfig(window=1000, slide=50, x_partitions=3,
                             y_partitions=3, d_max=150,
                             duration_interval=25,
                             space=Rect(0, 0, 499, 499), page_size=512),
    "single-cell": SWSTConfig(window=1000, slide=50, x_partitions=1,
                              y_partitions=1, d_max=150,
                              duration_interval=25,
                              space=Rect(0, 0, 499, 499), page_size=1024),
    "fine-grid": SWSTConfig(window=1000, slide=50, x_partitions=16,
                            y_partitions=16, d_max=150,
                            duration_interval=25,
                            space=Rect(0, 0, 499, 499), page_size=1024),
    "slide-equals-window": SWSTConfig(window=500, slide=500,
                                      x_partitions=4, y_partitions=4,
                                      d_max=150, duration_interval=25,
                                      space=Rect(0, 0, 499, 499),
                                      page_size=1024),
    "unit-slide": SWSTConfig(window=300, slide=1, x_partitions=4,
                             y_partitions=4, d_max=50,
                             duration_interval=10,
                             space=Rect(0, 0, 499, 499), page_size=1024,
                             s_partitions=30),
    "coarse-duration": SWSTConfig(window=1000, slide=50, x_partitions=4,
                                  y_partitions=4, d_max=150,
                                  duration_interval=150,
                                  space=Rect(0, 0, 499, 499),
                                  page_size=1024),
    "asymmetric-grid": SWSTConfig(window=1000, slide=50, x_partitions=2,
                                  y_partitions=12, d_max=150,
                                  duration_interval=25,
                                  space=Rect(0, 0, 499, 499),
                                  page_size=1024),
    "offset-domain": SWSTConfig(window=1000, slide=50, x_partitions=4,
                                y_partitions=4, d_max=150,
                                duration_interval=25,
                                space=Rect(100, 200, 599, 699),
                                page_size=1024),
}


@pytest.mark.parametrize("name", sorted(CONFIGS), ids=sorted(CONFIGS))
def test_oracle_agreement(name):
    config = CONFIGS[name]
    rng = random.Random(hash(name) & 0xFFFF)
    index = SWSTIndex(config)
    oracle = NaiveStore(config)
    space = config.space
    t = 0
    for _ in range(1200):
        t += rng.randrange(0, 3)
        oid = rng.randrange(15)
        x = rng.randrange(space.x_lo, space.x_hi + 1)
        y = rng.randrange(space.y_lo, space.y_hi + 1)
        if rng.random() < 0.7:
            index.report(oid, x, y, t)
            oracle.report(oid, x, y, t)
        else:
            d = rng.randrange(1, config.d_max + 1)
            index.insert(oid + 100, x, y, t, d)
            oracle.insert(oid + 100, x, y, t, d)
    survivors = index.current_objects()
    oracle.current = {oid: e for oid, e in oracle.current.items()
                      if oid in survivors}
    index.check_integrity()
    q_lo, q_hi = config.queriable_period(index.now)
    for _ in range(50):
        x0 = rng.randrange(space.x_lo, space.x_hi)
        y0 = rng.randrange(space.y_lo, space.y_hi)
        area = Rect(x0, y0, min(x0 + rng.randrange(10, 300), space.x_hi),
                    min(y0 + rng.randrange(10, 300), space.y_hi))
        t_lo = rng.randrange(max(q_lo - 100, 0), q_hi + 1)
        t_hi = t_lo + rng.randrange(0, 400)
        got = {(e.oid, e.x, e.y, e.s, e.d)
               for e in index.query_interval(area, t_lo, t_hi)}
        expected = {(e.oid, e.x, e.y, e.s, e.d)
                    for e in oracle.query_interval(area, t_lo, t_hi)}
        assert got == expected, f"config {name} diverged from the oracle"
    index.close()
