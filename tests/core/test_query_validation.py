"""Inverted query intervals are rejected, not silently empty.

``t_hi < t_lo`` used to fall through classification and return an empty
result, masking caller bugs (e.g. swapped arguments).  Every query
entry point now raises ``ValueError`` instead; degenerate single-point
intervals (``t_hi == t_lo``) remain valid timeslices.
"""

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def index():
    idx = SWSTIndex(CFG)
    for t in range(0, 500, 50):
        idx.report(1, 100 + t, 100, t)
    yield idx
    idx.close()


class TestInvertedIntervals:
    def test_query_interval_rejects_inverted(self, index):
        with pytest.raises(ValueError, match="empty query interval"):
            index.query_interval(EVERYWHERE, 100, 99)

    def test_count_interval_rejects_inverted(self, index):
        with pytest.raises(ValueError, match="empty query interval"):
            index.count_interval(EVERYWHERE, 100, 99)

    def test_query_knn_rejects_inverted(self, index):
        with pytest.raises(ValueError, match="empty query interval"):
            index.query_knn(500, 500, 3, 100, 99)

    def test_negative_width_is_rejected_regardless_of_magnitude(self, index):
        with pytest.raises(ValueError):
            index.query_interval(EVERYWHERE, 10**9, 0)


class TestDegenerateIntervals:
    def test_point_interval_is_a_timeslice(self, index):
        point = index.query_interval(EVERYWHERE, 200, 200)
        slice_ = index.query_timeslice(EVERYWHERE, 200)
        assert {(e.oid, e.s) for e in point} == \
            {(e.oid, e.s) for e in slice_}

    def test_point_count_is_valid(self, index):
        count, _ = index.count_interval(EVERYWHERE, 200, 200)
        assert count == len(index.query_timeslice(EVERYWHERE, 200))

    def test_knn_without_t_hi_is_a_timeslice(self, index):
        got = index.query_knn(100, 100, 1, 200)
        assert len(got) == 1
