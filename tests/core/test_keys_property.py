"""Property tests on the key codec's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeyCodec, Rect, SWSTConfig

CFG = SWSTConfig(window=2000, slide=100, d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999))
CODEC = KeyCodec(CFG)

s_values = st.integers(0, 10 ** 6)
d_values = st.integers(1, CFG.nd)
coords = st.integers(0, 999)


@settings(max_examples=150, deadline=None)
@given(s_values, d_values, coords, coords)
def test_decode_inverts_encode(s, d, x, y):
    decoded = CODEC.decode(CODEC.encode(s, d, x, y))
    assert decoded.s_part == CFG.s_partition(s)
    assert decoded.d_part == CFG.d_partition(d)


@settings(max_examples=150, deadline=None)
@given(s_values, s_values, d_values, d_values, coords, coords, coords,
       coords)
def test_key_order_is_lexicographic_in_fields(s1, s2, d1, d2, x1, y1, x2,
                                              y2):
    """Keys sort by (s-partition, d-partition, z-value) lexicographically."""
    key1 = CODEC.encode(s1, d1, x1, y1)
    key2 = CODEC.encode(s2, d2, x2, y2)
    fields1 = (CFG.s_partition(s1), CFG.d_partition(d1),
               CODEC.decode(key1).z_value)
    fields2 = (CFG.s_partition(s2), CFG.d_partition(d2),
               CODEC.decode(key2).z_value)
    assert (key1 < key2) == (fields1 < fields2)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2 * CFG.sp - 1), st.integers(0, CFG.dp - 1),
       st.integers(0, CFG.dp - 1),
       st.tuples(coords, coords, coords, coords),
       d_values, coords, coords)
def test_column_range_covers_exactly_when_point_inside(s_part, n_a, n_b,
                                                       rect_coords, d, x,
                                                       y):
    """Any entry whose d-partition is inside the band and whose location is
    inside the clipped rectangle falls within the generated key range."""
    d_lo, d_hi = min(n_a, n_b), max(n_a, n_b)
    x_lo, y_lo = min(rect_coords[0], rect_coords[2]), \
        min(rect_coords[1], rect_coords[3])
    x_hi, y_hi = max(rect_coords[0], rect_coords[2]), \
        max(rect_coords[1], rect_coords[3])
    clipped = Rect(x_lo, y_lo, x_hi, y_hi)
    lo, hi = CODEC.column_range(s_part, d_lo, d_hi, clipped)
    d_part = CFG.d_partition(d)
    if d_lo <= d_part <= d_hi and clipped.contains(x, y):
        key = CODEC.pack(s_part, d_part, x, y)
        assert lo <= key <= hi
    # Keys of other columns are always outside.
    other = CODEC.pack((s_part + 1) % (2 * CFG.sp), d_part, x, y)
    if other != CODEC.pack(s_part, d_part, x, y):
        in_range = lo <= other <= hi
        assert not in_range or (s_part + 1) % (2 * CFG.sp) == s_part
