"""count_interval's counting refine path: same answer, no materialisation.

The counting sink must agree with ``len(query_interval(...))`` on every
query — including full-overlap fast-path counts, retention-filtered
workloads and logical windows — at the same node-access cost.
"""

import random

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


def _loaded(seed=31, steps=1500, objects=25):
    rng = random.Random(seed)
    index = SWSTIndex(CFG)
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 4)
        index.report(rng.randrange(objects), rng.randrange(1000),
                     rng.randrange(1000), t)
    return index, rng


class TestCountMatchesMaterialised:
    def test_random_queries(self):
        index, rng = _loaded()
        q_lo, q_hi = CFG.queriable_period(index.now)
        for _ in range(40):
            x0, y0 = rng.randrange(700), rng.randrange(700)
            area = Rect(x0, y0, x0 + 300, y0 + 300)
            t_lo = rng.randrange(q_lo, q_hi + 1)
            t_hi = t_lo + rng.randrange(0, 400)
            count, _ = index.count_interval(area, t_lo, t_hi)
            assert count == len(index.query_interval(area, t_lo, t_hi))
        index.close()

    def test_full_overlap_fast_path(self):
        """Whole-domain, whole-period queries count candidates from keys
        alone; the total must still match the materialised result."""
        index, _ = _loaded(seed=32)
        q_lo, q_hi = CFG.queriable_period(index.now)
        count, _ = index.count_interval(EVERYWHERE, q_lo, q_hi)
        assert count == len(index.query_interval(EVERYWHERE, q_lo, q_hi))
        index.close()

    def test_logical_window(self):
        index, _ = _loaded(seed=33)
        count, _ = index.count_interval(EVERYWHERE, 0, index.now,
                                        window=500)
        assert count == len(index.query_interval(EVERYWHERE, 0, index.now,
                                                 window=500))
        index.close()

    def test_with_retention_overrides(self):
        """Retention filtering forces the per-entry refine even on full
        overlaps; counts must track it."""
        index, rng = _loaded(seed=34)
        for oid in range(0, 25, 3):
            index.set_retention(oid, rng.randrange(1, CFG.window + 1))
        q_lo, q_hi = CFG.queriable_period(index.now)
        count, _ = index.count_interval(EVERYWHERE, q_lo, q_hi)
        assert count == len(index.query_interval(EVERYWHERE, q_lo, q_hi))
        index.close()


class TestCountCost:
    def test_count_costs_no_more_node_accesses_than_query(self):
        index, _ = _loaded(seed=35)
        q_lo, q_hi = CFG.queriable_period(index.now)
        area = Rect(100, 100, 600, 600)
        count, count_stats = index.count_interval(area, q_lo, q_hi)
        result = index.query_interval(area, q_lo, q_hi)
        assert count == len(result)
        assert count_stats.node_accesses == result.stats.node_accesses
        index.close()

    def test_count_on_empty_region(self):
        index = SWSTIndex(CFG)
        index.report(1, 10, 10, 0)
        count, stats = index.count_interval(Rect(900, 900, 999, 999), 0, 0)
        assert count == 0
        index.close()
