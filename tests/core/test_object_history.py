"""object_history and forget_object (trajectory audit + right to erasure)."""

import random

import pytest

from repro.core import Rect, SWSTConfig, SWSTIndex

CFG = SWSTConfig(window=2000, slide=100, x_partitions=4, y_partitions=4,
                 d_max=300, duration_interval=50,
                 space=Rect(0, 0, 999, 999), page_size=1024)
EVERYWHERE = Rect(0, 0, 999, 999)


@pytest.fixture
def index():
    with SWSTIndex(CFG) as idx:
        rng = random.Random(21)
        t = 0
        for _ in range(800):
            t += rng.randrange(0, 4)
            idx.report(rng.randrange(10), rng.randrange(1000),
                       rng.randrange(1000), t)
        yield idx


class TestObjectHistory:
    def test_history_ordered_by_start(self, index):
        history = index.object_history(3)
        starts = [e.s for e in history]
        assert starts == sorted(starts)
        assert all(e.oid == 3 for e in history)

    def test_history_matches_full_query_filter(self, index):
        q_lo, q_hi = CFG.queriable_period(index.now)
        expected = sorted((e for e in
                           index.query_interval(EVERYWHERE, q_lo, q_hi)
                           if e.oid == 3), key=lambda e: e.s)
        assert index.object_history(3) == expected

    def test_history_bounded_by_interval(self, index):
        q_lo, q_hi = CFG.queriable_period(index.now)
        mid = (q_lo + q_hi) // 2
        partial = index.object_history(3, t_lo=mid)
        full = index.object_history(3)
        assert len(partial) <= len(full)
        assert all(e.end > mid for e in partial)

    def test_history_respects_logical_window(self, index):
        short = index.object_history(3, window=300)
        full = index.object_history(3)
        assert len(short) <= len(full)

    def test_unknown_object_has_empty_history(self, index):
        assert index.object_history(999) == []


class TestForgetObject:
    def test_forget_removes_all_traces(self, index):
        assert index.object_history(5)
        removed = index.forget_object(5)
        assert removed > 0
        assert index.object_history(5) == []
        assert all(e.oid != 5 for e in index.scan())
        assert 5 not in index.current_objects()
        index.check_integrity()

    def test_forget_leaves_other_objects_intact(self, index):
        before = {e.oid for e in index.scan()}
        index.forget_object(5)
        after = {e.oid for e in index.scan()}
        assert after == before - {5}

    def test_forget_clears_retention_override(self, index):
        index.set_retention(5, 500)
        index.forget_object(5)
        assert index.retention_of(5) == CFG.window

    def test_forget_unknown_object_is_noop(self, index):
        assert index.forget_object(999) == 0
