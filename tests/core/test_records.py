"""Entry and Rect: validity predicates and payload serialisation."""

import pytest

from repro.core import Entry, RECORD_SIZE, Rect


class TestEntry:
    def test_pack_unpack_closed_entry(self):
        entry = Entry(oid=7, x=100, y=200, s=5000, d=42)
        assert Entry.unpack(entry.pack()) == entry

    def test_pack_unpack_current_entry(self):
        entry = Entry(oid=7, x=100, y=200, s=5000, d=None)
        assert Entry.unpack(entry.pack()) == entry

    def test_payload_is_fixed_size(self):
        assert len(Entry(1, 2, 3, 4, 5).pack()) == RECORD_SIZE
        assert len(Entry(1, 2, 3, 4, None).pack()) == RECORD_SIZE

    def test_is_current(self):
        assert Entry(1, 0, 0, 0, None).is_current
        assert not Entry(1, 0, 0, 0, 5).is_current

    def test_end_of_closed_entry(self):
        assert Entry(1, 0, 0, 10, 5).end == 15

    def test_end_of_current_entry_is_infinite(self):
        assert Entry(1, 0, 0, 10, None).end == float("inf")

    def test_valid_at_half_open_interval(self):
        entry = Entry(1, 0, 0, 10, 5)
        assert not entry.valid_at(9)
        assert entry.valid_at(10)
        assert entry.valid_at(14)
        assert not entry.valid_at(15)

    def test_current_entry_valid_from_start_onwards(self):
        entry = Entry(1, 0, 0, 10, None)
        assert not entry.valid_at(9)
        assert entry.valid_at(10 ** 9)

    def test_valid_during_overlap_semantics(self):
        entry = Entry(1, 0, 0, 10, 5)  # valid [10, 15)
        assert entry.valid_during(0, 10)      # touches start
        assert entry.valid_during(14, 20)     # touches end - 1
        assert not entry.valid_during(15, 20)  # starts at exclusive end
        assert not entry.valid_during(0, 9)

    def test_entries_are_hashable_and_frozen(self):
        entry = Entry(1, 2, 3, 4, 5)
        assert hash(entry) == hash(Entry(1, 2, 3, 4, 5))
        with pytest.raises(AttributeError):
            entry.x = 10


class TestRect:
    def test_contains_is_closed(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(0, 0)
        assert rect.contains(10, 10)
        assert not rect.contains(11, 5)

    def test_empty_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 4, 10)

    def test_degenerate_point_rect_allowed(self):
        rect = Rect(3, 3, 3, 3)
        assert rect.contains(3, 3)
        assert rect.area() == 1

    def test_intersects_symmetry(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 20, 20)
        c = Rect(11, 0, 20, 10)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c) and not c.intersects(a)

    def test_touching_edges_intersect(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 5, 9, 9))

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 20, 20)
        assert a.intersection(b) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(11, 11, 12, 12)) is None

    def test_covers(self):
        assert Rect(0, 0, 10, 10).covers(Rect(2, 2, 8, 8))
        assert Rect(0, 0, 10, 10).covers(Rect(0, 0, 10, 10))
        assert not Rect(0, 0, 10, 10).covers(Rect(2, 2, 11, 8))

    def test_area_counts_integer_points(self):
        assert Rect(0, 0, 1, 1).area() == 4
        assert Rect(0, 0, 9, 0).area() == 10
