"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable (``python setup.py develop`` or
``pip install -e .``) on environments whose setuptools predates PEP 660
wheel-less editable installs.
"""

from setuptools import setup

setup()
