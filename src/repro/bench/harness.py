"""Experiment harness: build indexes from a GSTD stream, run query batches,
collect node accesses and CPU time.

The harness drives SWST and MV3R with the *same* report stream and the
same query workload, mirroring the paper's method: the stream is inserted
to steady state, then 200 random queries inside the current sliding window
are evaluated, and average node accesses per operation are compared
(Section V-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.config import SWSTConfig
from ..core.index import SWSTIndex
from ..core.results import QueryStats
from ..datagen.gstd import Report
from ..datagen.workloads import Query
from ..mv3r.mv3r import MV3RTree


@dataclass
class BuildResult:
    """Cost of feeding one stream into one index."""

    label: str
    records: int
    node_accesses: int
    cpu_seconds: float

    @property
    def accesses_per_record(self) -> float:
        return self.node_accesses / max(self.records, 1)


@dataclass
class QueryBatchResult:
    """Cost of one query batch on one index.

    ``stats`` is the merged per-query :class:`QueryStats` (candidate,
    refinement and memo counters summed across the batch); ``None`` for
    indexes whose query path does not report them (MV3R).
    """

    label: str
    queries: int
    node_accesses: int
    cpu_seconds: float
    result_entries: int
    stats: QueryStats | None = None

    @property
    def accesses_per_query(self) -> float:
        return self.node_accesses / max(self.queries, 1)


def build_swst(stream: list[Report], config: SWSTConfig,
               label: str = "SWST") -> tuple[SWSTIndex, BuildResult]:
    """Feed a report stream into a fresh SWST index."""
    index = SWSTIndex(config)
    try:
        before = index.stats.snapshot()
        started = time.process_time()
        for report in stream:
            index.report(report.oid, report.x, report.y, report.t)
        elapsed = time.process_time() - started
        delta = index.stats.diff(before)
    except BaseException:
        index.close()
        raise
    return index, BuildResult(label=label, records=len(stream),
                              node_accesses=delta.node_accesses,
                              cpu_seconds=elapsed)


def build_swst_batched(stream: list[Report], config: SWSTConfig,
                       label: str = "SWST-batched",
                       batch_size: int = 1024) -> tuple[SWSTIndex,
                                                        BuildResult]:
    """Feed a report stream through the batched :meth:`SWSTIndex.extend`
    ingestion path (groups reports per spatial cell for node-cache
    locality; final index state identical to per-report :func:`build_swst`).
    """
    index = SWSTIndex(config)
    try:
        before = index.stats.snapshot()
        started = time.process_time()
        index.extend(stream, batch_size=batch_size)
        elapsed = time.process_time() - started
        delta = index.stats.diff(before)
    except BaseException:
        index.close()
        raise
    return index, BuildResult(label=label, records=len(stream),
                              node_accesses=delta.node_accesses,
                              cpu_seconds=elapsed)


def build_mv3r(stream: list[Report], page_size: int = 8192,
               buffer_capacity: int = 512, use_aux: bool = True,
               label: str = "MV3R") -> tuple[MV3RTree, BuildResult]:
    """Feed the same report stream into a fresh MV3R tree."""
    index = MV3RTree(page_size=page_size, buffer_capacity=buffer_capacity,
                     use_aux=use_aux)
    try:
        before = index.stats.snapshot()
        started = time.process_time()
        for report in stream:
            index.report(report.oid, report.x, report.y, report.t)
        elapsed = time.process_time() - started
        delta = index.stats.diff(before)
    except BaseException:
        index.close()
        raise
    return index, BuildResult(label=label, records=len(stream),
                              node_accesses=delta.node_accesses,
                              cpu_seconds=elapsed)


def run_queries_swst(index: SWSTIndex, queries: list[Query],
                     window: int | None = None,
                     label: str = "SWST") -> QueryBatchResult:
    """Evaluate a query batch on SWST, summing per-query statistics.

    ``index`` may be a plain :class:`SWSTIndex` or a
    :class:`~repro.engine.ShardedEngine` — both expose the same query
    surface and IO-stats snapshot/diff protocol.
    """
    before = index.stats.snapshot()
    started = time.process_time()
    entries = 0
    batch_stats = QueryStats()
    for query in queries:
        result = index.query_interval(query.area, query.t_lo, query.t_hi,
                                      window)
        entries += len(result)
        batch_stats += result.stats
    elapsed = time.process_time() - started
    delta = index.stats.diff(before)
    return QueryBatchResult(label=label, queries=len(queries),
                            node_accesses=delta.node_accesses,
                            cpu_seconds=elapsed, result_entries=entries,
                            stats=batch_stats)


def run_queries_mv3r(index: MV3RTree, queries: list[Query],
                     use_aux: bool | None = None,
                     label: str = "MV3R") -> QueryBatchResult:
    """Evaluate a query batch on MV3R."""
    before = index.stats.snapshot()
    started = time.process_time()
    entries = 0
    for query in queries:
        if query.is_timeslice:
            entries += len(index.query_timeslice(query.area, query.t_lo))
        else:
            entries += len(index.query_interval(query.area, query.t_lo,
                                                query.t_hi,
                                                use_aux=use_aux))
    elapsed = time.process_time() - started
    delta = index.stats.diff(before)
    return QueryBatchResult(label=label, queries=len(queries),
                            node_accesses=delta.node_accesses,
                            cpu_seconds=elapsed, result_entries=entries)
