"""Self-contained SVG rendering of experiment results.

The environment has no plotting library, so this module hand-writes the
small subset of SVG needed to redraw the paper's figures: grouped bar
charts (one group per x-axis point, one bar per series) with axes, value
labels and a legend.  ``python -m repro bench --svg DIR`` writes one
``.svg`` per figure.
"""

from __future__ import annotations

import html
from typing import Any, Sequence

#: Flat, print-friendly series colours.
PALETTE = ["#4878a8", "#d65f5f", "#6acc64", "#956cb4", "#d5bb67"]

_WIDTH = 640
_HEIGHT = 360
_MARGIN_LEFT = 70
_MARGIN_RIGHT = 20
_MARGIN_TOP = 50
_MARGIN_BOTTOM = 60


def render_bar_chart(title: str, series: dict[str, list[float]],
                     labels: Sequence[str],
                     y_label: str = "node accesses / query") -> str:
    """Return a grouped-bar SVG document as a string.

    Args:
        title: chart heading.
        series: name -> one value per label.
        labels: x-axis group labels.
        y_label: y-axis caption.
    """
    if not series:
        raise ValueError("at least one series required")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} has {len(values)} values "
                             f"for {len(labels)} labels")
    peak = max((v for vs in series.values() for v in vs), default=0.0)
    peak = peak if peak > 0 else 1.0
    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    n_groups = len(labels)
    n_series = len(series)
    group_w = plot_w / max(n_groups, 1)
    bar_w = max(group_w * 0.8 / max(n_series, 1), 2.0)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{html.escape(title)}</text>',
    ]
    # Axes.
    x0, y0 = _MARGIN_LEFT, _HEIGHT - _MARGIN_BOTTOM
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" '
                 f'stroke="black"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0}" '
                 f'y2="{_MARGIN_TOP}" stroke="black"/>')
    parts.append(f'<text x="16" y="{_MARGIN_TOP + plot_h / 2}" '
                 f'font-size="11" text-anchor="middle" '
                 f'transform="rotate(-90 16 {_MARGIN_TOP + plot_h / 2})">'
                 f'{html.escape(y_label)}</text>')
    # Horizontal gridlines + y ticks.
    for tick in range(5):
        frac = tick / 4
        y = y0 - frac * plot_h
        value = peak * frac
        parts.append(f'<line x1="{x0}" y1="{y:.1f}" x2="{x0 + plot_w}" '
                     f'y2="{y:.1f}" stroke="#dddddd"/>')
        parts.append(f'<text x="{x0 - 6}" y="{y + 4:.1f}" font-size="10" '
                     f'text-anchor="end">{_fmt(value)}</text>')
    # Bars.
    for group, label in enumerate(labels):
        gx = x0 + group * group_w + group_w * 0.1
        for idx, (_name, values) in enumerate(series.items()):
            value = values[group]
            height = plot_h * value / peak
            bx = gx + idx * bar_w
            by = y0 - height
            colour = PALETTE[idx % len(PALETTE)]
            parts.append(f'<rect x="{bx:.1f}" y="{by:.1f}" '
                         f'width="{bar_w:.1f}" height="{height:.1f}" '
                         f'fill="{colour}"/>')
            parts.append(f'<text x="{bx + bar_w / 2:.1f}" '
                         f'y="{by - 3:.1f}" font-size="9" '
                         f'text-anchor="middle">{_fmt(value)}</text>')
        parts.append(f'<text x="{gx + n_series * bar_w / 2:.1f}" '
                     f'y="{y0 + 16}" font-size="11" text-anchor="middle">'
                     f'{html.escape(str(label))}</text>')
    # Legend.
    legend_x = x0
    legend_y = _HEIGHT - 18
    for idx, name in enumerate(series):
        colour = PALETTE[idx % len(PALETTE)]
        parts.append(f'<rect x="{legend_x}" y="{legend_y - 10}" width="12" '
                     f'height="12" fill="{colour}"/>')
        parts.append(f'<text x="{legend_x + 16}" y="{legend_y}" '
                     f'font-size="11">{html.escape(name)}</text>')
        legend_x += 26 + 7 * len(name)
    parts.append("</svg>")
    return "\n".join(parts)


def svg_from_result(result: Any, value_columns: dict[str, int],
                    y_label: str = "node accesses / query") -> str:
    """Render an :class:`ExperimentResult` as a grouped-bar SVG."""
    labels = [str(row[0]) for row in result.rows]
    series = {name: [float(row[col]) for row in result.rows]
              for name, col in value_columns.items()}
    return render_bar_chart(f"{result.exp_id}: {result.title}", series,
                            labels, y_label)


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"
