"""Benchmark parameter sets.

``PAPER`` reproduces Table II exactly; ``SCALED`` shrinks the stream by
10–50× so every figure regenerates in seconds on a laptop while keeping
every structural ratio of the paper's setup (reports per object, window
fraction of the temporal domain, grid sizes).  Set the environment
variable ``SWST_BENCH_SCALE=paper`` to run at paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..core.config import SWSTConfig
from ..core.records import Rect
from ..datagen.gstd import GSTDConfig


@dataclass(frozen=True)
class BenchParams:
    """One benchmark configuration: index config + stream shape."""

    name: str
    index: SWSTConfig
    stream: GSTDConfig
    #: dataset sizes for the Fig. 7/8 sweep, as object counts.
    dataset_objects: tuple[int, ...] = (100, 250, 500)
    #: number of benchmark queries per point (paper: 200).
    query_count: int = 200
    #: the paper's total temporal domain T (basis of temporal extents).
    temporal_domain: int = 100_000


_PAPER_SPACE = Rect(0, 0, 10000, 10000)

#: The paper's Table II settings, verbatim.
PAPER = BenchParams(
    name="paper",
    index=SWSTConfig(window=20000, slide=100, x_partitions=20,
                     y_partitions=20, d_max=2000, duration_interval=100,
                     space=_PAPER_SPACE, page_size=8192,
                     buffer_capacity=2048),
    stream=GSTDConfig(num_objects=50_000, max_time=100_000,
                      space=_PAPER_SPACE, interval_lo=1, interval_hi=2000,
                      seed=1),
    dataset_objects=(10_000, 25_000, 50_000),
    query_count=200,
)

#: Laptop-scale variant: same shape, ~50x smaller stream.  Window stays
#: 20% of the temporal domain and each object still reports ~100 times.
SCALED = BenchParams(
    name="scaled",
    index=SWSTConfig(window=20000, slide=100, x_partitions=10,
                     y_partitions=10, d_max=2000, duration_interval=100,
                     space=_PAPER_SPACE, page_size=2048,
                     buffer_capacity=1024),
    stream=GSTDConfig(num_objects=500, max_time=100_000,
                      space=_PAPER_SPACE, interval_lo=1, interval_hi=2000,
                      seed=1),
    dataset_objects=(100, 250, 500),
    query_count=60,
)

#: Tiny variant for the test suite's smoke tests.
TINY = BenchParams(
    name="tiny",
    index=replace(SCALED.index, x_partitions=5, y_partitions=5,
                  buffer_capacity=256),
    stream=replace(SCALED.stream, num_objects=60, max_time=30_000),
    dataset_objects=(30, 60),
    query_count=10,
)


def active_params() -> BenchParams:
    """Parameter set selected by ``SWST_BENCH_SCALE`` (default: scaled)."""
    choice = os.environ.get("SWST_BENCH_SCALE", "scaled").lower()
    table = {"paper": PAPER, "scaled": SCALED, "tiny": TINY}
    if choice not in table:
        raise ValueError(f"SWST_BENCH_SCALE must be one of {sorted(table)}, "
                         f"got {choice!r}")
    return table[choice]
