"""One function per paper table/figure: regenerate the evaluation.

Every function returns an :class:`ExperimentResult` whose rows mirror the
series of the corresponding figure; ``render()`` prints the same rows the
paper plots.  Absolute numbers differ from the paper (different substrate),
but the *shape* — who wins, by what factor, where crossovers fall — is the
reproduction target recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Sequence

from ..baselines.pist import PISTIndex
from ..baselines.r3d import R3DIndex
from ..core.config import SWSTConfig
from ..core.records import Entry
from ..datagen.gstd import GSTDConfig, GSTDGenerator, Report
from ..datagen.workloads import WorkloadConfig, generate_queries
from .harness import (build_mv3r, build_swst, run_queries_mv3r,
                      run_queries_swst)
from .params import BenchParams
from .reporting import format_table

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..core.index import SWSTIndex


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        text = format_table(f"{self.exp_id}: {self.title}",
                            self.headers, self.rows)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


def _stream_for(params: BenchParams, num_objects: int,
                **overrides: Any) -> list[Report]:
    config = replace(params.stream, num_objects=num_objects, **overrides)
    return GSTDGenerator(config).materialize()


# -- Fig. 7 / Fig. 8: insertion cost -------------------------------------------------


def experiment_insertion(params: BenchParams
                         ) -> tuple[ExperimentResult, ExperimentResult]:
    """Fig. 7 (insertion node accesses) and Fig. 8 (insertion CPU time)."""
    fig7 = ExperimentResult(
        exp_id="Fig.7", title="Insertion node accesses vs dataset size",
        headers=["objects", "records", "SWST IOs", "MV3R IOs",
                 "SWST IOs/rec", "MV3R IOs/rec"])
    fig8 = ExperimentResult(
        exp_id="Fig.8", title="Insertion CPU time vs dataset size",
        headers=["objects", "records", "SWST s", "MV3R s",
                 "MV3R/SWST speedup"],
        notes="paper: SWST insertion CPU ~5x faster than MV3R")
    for num_objects in params.dataset_objects:
        stream = _stream_for(params, num_objects)
        swst, swst_build = build_swst(stream, params.index)
        mv3r, mv3r_build = build_mv3r(stream,
                                      page_size=params.index.page_size,
                                      buffer_capacity=params.index
                                      .buffer_capacity)
        fig7.rows.append([num_objects, len(stream),
                          swst_build.node_accesses,
                          mv3r_build.node_accesses,
                          swst_build.accesses_per_record,
                          mv3r_build.accesses_per_record])
        speedup = (mv3r_build.cpu_seconds
                   / max(swst_build.cpu_seconds, 1e-9))
        fig8.rows.append([num_objects, len(stream),
                          swst_build.cpu_seconds, mv3r_build.cpu_seconds,
                          speedup])
        swst.close()
        mv3r.close()
    return fig7, fig8


# -- Fig. 9 / Fig. 10: search cost ---------------------------------------------------


def _search_experiment(params: BenchParams, spatial_extents: list[float],
                       temporal_extents: list[float],
                       exp_id: str, title: str,
                       vary: str) -> ExperimentResult:
    stream = _stream_for(params, params.dataset_objects[-1])
    swst, _ = build_swst(stream, params.index)
    mv3r, _ = build_mv3r(stream, page_size=params.index.page_size,
                         buffer_capacity=params.index.buffer_capacity)
    result = ExperimentResult(
        exp_id=exp_id, title=title,
        headers=[vary, "SWST acc/query", "MV3R acc/query", "results/query"])
    points = [(s, t) for s in spatial_extents for t in temporal_extents]
    for spatial, temporal in points:
        workload = WorkloadConfig(spatial_extent=spatial,
                                  temporal_extent=temporal,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(params.index, workload, swst.now)
        swst_batch = run_queries_swst(swst, queries)
        mv3r_batch = run_queries_mv3r(mv3r, queries)
        label = (f"{spatial * 100:g}%" if vary == "spatial extent"
                 else f"{temporal * 100:g}%")
        result.rows.append([label, swst_batch.accesses_per_query,
                            mv3r_batch.accesses_per_query,
                            swst_batch.result_entries
                            / max(len(queries), 1)])
    swst.close()
    mv3r.close()
    return result


def experiment_spatial_extent(params: BenchParams) -> ExperimentResult:
    """Fig. 9: effect of the query's spatial extent (temporal fixed 10%)."""
    result = _search_experiment(
        params, spatial_extents=[0.005, 0.01, 0.04],
        temporal_extents=[0.10],
        exp_id="Fig.9", title="Search node accesses vs spatial extent "
                              "(time interval 10% of T)",
        vary="spatial extent")
    result.notes = ("paper: SWST wins below ~4% spatial extent, gap grows "
                    "as the extent shrinks")
    return result


def experiment_time_interval(params: BenchParams) -> ExperimentResult:
    """Fig. 10: effect of the query's time interval (spatial fixed 1%)."""
    result = _search_experiment(
        params, spatial_extents=[0.01],
        temporal_extents=[0.0, 0.05, 0.10, 0.15],
        exp_id="Fig.10", title="Search node accesses vs time interval "
                               "(spatial extent 1%)",
        vary="time interval")
    result.notes = ("paper: MV3R wins at timeslice (0%), SWST wins once "
                    "the interval exceeds ~4-5% of T")
    return result


# -- Fig. 11: the isPresent memo -----------------------------------------------------


def experiment_memo(params: BenchParams) -> ExperimentResult:
    """Fig. 11: SWST with vs without the memo, 4% long-duration entries."""
    stream = _stream_for(params, params.dataset_objects[-1],
                         long_fraction=0.04, long_interval_hi=20000)
    # Long durations exist, so the index must represent them: raise Dmax to
    # the long interval bound, as the paper's Fig. 11 setup does.
    base = replace(params.index, d_max=20000, duration_interval=1000)
    result = ExperimentResult(
        exp_id="Fig.11", title="isPresent memo benefit with 4% "
                               "long-duration entries",
        headers=["time interval", "with memo acc/query",
                 "without memo acc/query", "memo reduction"],
        notes="paper: the memo greatly reduces node accesses when a small "
              "fraction of entries is long")
    with_memo, _ = build_swst(stream, replace(base, use_memo=True))
    without_memo, _ = build_swst(stream, replace(base, use_memo=False))
    for temporal in (0.0, 0.05, 0.10):
        workload = WorkloadConfig(spatial_extent=0.01,
                                  temporal_extent=temporal,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(base, workload, with_memo.now)
        batch_with = run_queries_swst(with_memo, queries)
        batch_without = run_queries_swst(without_memo, queries)
        reduction = (batch_without.accesses_per_query
                     / max(batch_with.accesses_per_query, 1e-9))
        result.rows.append([f"{temporal * 100:g}%",
                            batch_with.accesses_per_query,
                            batch_without.accesses_per_query,
                            f"{reduction:.2f}x"])
    with_memo.close()
    without_memo.close()
    return result


# -- Section V-E: parameter effects ----------------------------------------------------


def experiment_spatial_cells(params: BenchParams,
                             grids: Sequence[tuple[int, int]] = (
                                 (2, 2), (5, 5), (10, 10), (20, 20),
                                 (30, 30))) -> ExperimentResult:
    """V-E: effect of the number of spatial cells (paper: 300-600 best)."""
    stream = _stream_for(params, params.dataset_objects[-1])
    result = ExperimentResult(
        exp_id="Sec.V-E(a)", title="Effect of the number of spatial cells",
        headers=["grid", "cells", "SWST acc/query"],
        notes="paper: too few cells lose spatial discrimination; too many "
              "raise overhead (their sweet spot: 300-600 cells)")
    for xp, yp in grids:
        config = replace(params.index, x_partitions=xp, y_partitions=yp)
        index, _ = build_swst(stream, config)
        workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(config, workload, index.now)
        batch = run_queries_swst(index, queries)
        result.rows.append([f"{xp}x{yp}", xp * yp,
                            batch.accesses_per_query])
        index.close()
    return result


def experiment_spartition(params: BenchParams,
                          s_partitions: Sequence[int] = (
                              25, 100, 201, 400, 800)) -> ExperimentResult:
    """V-E: effect of the s-partition size on search."""
    stream = _stream_for(params, params.dataset_objects[-1])
    result = ExperimentResult(
        exp_id="Sec.V-E(b)", title="Effect of the s-partition count "
                                   "(per window)",
        headers=["Sp", "s-interval", "SWST acc/query"],
        notes="paper: too-large s-partitions create false positives, "
              "too-small ones scatter similar entries")
    for sp in s_partitions:
        config = replace(params.index, s_partitions=sp)
        index, _ = build_swst(stream, config)
        workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(config, workload, index.now)
        batch = run_queries_swst(index, queries)
        result.rows.append([sp, -(-config.w_max // sp),
                            batch.accesses_per_query])
        index.close()
    return result


# -- Ablations ------------------------------------------------------------------------


def experiment_zcurve(params: BenchParams) -> ExperimentResult:
    """Ablation: keys with vs without the Z-curve spatial bits (Fig. 9
    discussion: spatial encoding is what keeps small-overlap cells cheap)."""
    stream = _stream_for(params, params.dataset_objects[-1])
    result = ExperimentResult(
        exp_id="Ablation-Z", title="Z-curve spatial key bits on vs off",
        headers=["spatial extent", "with Z acc/query", "without Z "
                 "acc/query", "with Z candidates", "without Z candidates"])
    with_z, _ = build_swst(stream, replace(params.index, spatial_keys=True))
    without_z, _ = build_swst(stream,
                              replace(params.index, spatial_keys=False))
    for spatial in (0.005, 0.01, 0.04):
        workload = WorkloadConfig(spatial_extent=spatial,
                                  temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(params.index, workload, with_z.now)
        candidates = [0, 0]
        accesses = [0, 0]
        for pos, index in enumerate((with_z, without_z)):
            for query in queries:
                res = index.query_interval(query.area, query.t_lo,
                                           query.t_hi)
                candidates[pos] += res.stats.candidates
                accesses[pos] += res.stats.node_accesses
        n = max(len(queries), 1)
        result.rows.append([f"{spatial * 100:g}%", accesses[0] / n,
                            accesses[1] / n, candidates[0] / n,
                            candidates[1] / n])
    with_z.close()
    without_z.close()
    return result


def experiment_maintenance(params: BenchParams) -> ExperimentResult:
    """Ablation (Sections IV-C and V-A): sliding-window maintenance cost.

    SWST drops an expired window wholesale; a 3D R-tree must delete each
    expired entry; PIST must delete each expired *sub-entry* (splitting
    multiplies them).
    """
    stream = _stream_for(params, params.dataset_objects[0])
    config = params.index
    cutoff = config.w_max  # expire the first window
    result = ExperimentResult(
        exp_id="Ablation-M", title="Sliding-window maintenance cost "
                                   "(expiring one window)",
        headers=["index", "expired entries", "node accesses",
                 "accesses/entry", "cpu s"])

    # SWST: the drop happens when the clock crosses 2*Wmax.
    swst, _ = build_swst([r for r in stream if r.t < 2 * config.w_max],
                         config)
    expired = sum(1 for r in stream if r.t < cutoff)
    before = swst.stats.snapshot()
    started = time.process_time()
    swst.advance_time(2 * config.w_max)
    swst_cpu = time.process_time() - started
    swst_accesses = swst.stats.diff(before).node_accesses
    result.rows.append(["SWST (drop)", expired, swst_accesses,
                        swst_accesses / max(expired, 1), swst_cpu])
    swst.close()

    # 3D R-tree: per-entry deletes.
    r3d = R3DIndex(page_size=config.page_size,
                   buffer_capacity=config.buffer_capacity)
    for report in stream:
        if report.t < 2 * config.w_max:
            r3d.report(report.oid, report.x, report.y, report.t)
    before = r3d.stats.snapshot()
    started = time.process_time()
    removed = r3d.expire_before(cutoff)
    r3d_cpu = time.process_time() - started
    r3d_accesses = r3d.stats.diff(before).node_accesses
    result.rows.append(["3D R-tree (per-entry delete)", removed,
                        r3d_accesses, r3d_accesses / max(removed, 1),
                        r3d_cpu])
    r3d.close()

    # PIST: per-sub-entry deletes (split multiplies the work).
    closed = _closed_entries(stream, horizon=2 * config.w_max)
    pist = PISTIndex(config.space, config.x_partitions, config.y_partitions,
                     lam=config.slide, page_size=config.page_size,
                     buffer_capacity=config.buffer_capacity)
    pist.build(closed)
    before = pist.stats.snapshot()
    started = time.process_time()
    removed = pist.delete_expired(cutoff)
    pist_cpu = time.process_time() - started
    pist_accesses = pist.stats.diff(before).node_accesses
    result.rows.append(["PIST (per-sub-entry delete)", removed,
                        pist_accesses, pist_accesses / max(removed, 1),
                        pist_cpu])
    pist.close()
    result.notes = ("SWST accesses/entry should be <<1 (wholesale drop); "
                    "the baselines pay per entry or per sub-entry")
    return result


def experiment_wave(params: BenchParams) -> ExperimentResult:
    """Ablation for Section II's sub-index argument: SWST's two-tree
    modulo design vs a wave-index-style partition per slide step.

    Both expire wholesale, but the per-slide design must search every
    live partition (no duration dimension), so its query cost is flat and
    high while SWST's scales with the query interval.
    """
    from ..baselines.wave import WaveIndex

    stream = _stream_for(params, params.dataset_objects[-1])
    swst, swst_build = build_swst(stream, params.index)
    wave = WaveIndex(params.index)
    before = wave.stats.snapshot()
    started = time.process_time()
    for report in stream:
        wave.report(report.oid, report.x, report.y, report.t)
    wave_cpu = time.process_time() - started
    wave_build = wave.stats.diff(before).node_accesses
    result = ExperimentResult(
        exp_id="Ablation-W", title="Two-tree modulo design vs per-slide "
                                   "sub-indexes (wave index)",
        headers=["time interval", "SWST acc/query", "wave acc/query"],
        notes=f"insertion: SWST {swst_build.node_accesses:,} accesses / "
              f"{swst_build.cpu_seconds:.2f}s, wave {wave_build:,} / "
              f"{wave_cpu:.2f}s; search below")
    for temporal in (0.0, 0.05, 0.10, 0.15):
        workload = WorkloadConfig(spatial_extent=0.01,
                                  temporal_extent=temporal,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count)
        queries = generate_queries(params.index, workload, swst.now)
        swst_batch = run_queries_swst(swst, queries)
        before = wave.stats.snapshot()
        for query in queries:
            wave.query_interval(query.area, query.t_lo, query.t_hi)
        wave_accesses = wave.stats.diff(before).node_accesses
        result.rows.append([f"{temporal * 100:g}%",
                            swst_batch.accesses_per_query,
                            wave_accesses / max(len(queries), 1)])
    swst.close()
    wave.close()
    return result


def experiment_hrtree(params: BenchParams) -> ExperimentResult:
    """Ablation for Section II's HR-tree discussion: one R-tree version
    per timestamp is strong at timeslices, unusable for long intervals,
    and storage-hungry."""
    from ..baselines.hrtree import HRTree

    stream = _stream_for(params, params.dataset_objects[0])
    swst, _ = build_swst(stream, params.index)
    hrtree = HRTree(page_size=params.index.page_size,
                    buffer_capacity=params.index.buffer_capacity)
    for report in stream:
        hrtree.report(report.oid, report.x, report.y, report.t)
    result = ExperimentResult(
        exp_id="Ablation-HR", title="HR-tree (R-tree per timestamp) vs "
                                    "SWST",
        headers=["time interval", "SWST acc/query", "HR-tree acc/query"],
        notes=f"storage: SWST {swst.node_count():,} pages vs HR-tree "
              f"{hrtree.live_pages():,} pages for {len(stream):,} reports "
              f"of {params.dataset_objects[0]} objects")
    for temporal in (0.0, 0.05, 0.10):
        workload = WorkloadConfig(spatial_extent=0.01,
                                  temporal_extent=temporal,
                                  temporal_domain=params.temporal_domain,
                                  count=max(params.query_count // 4, 5))
        queries = generate_queries(params.index, workload, swst.now)
        swst_batch = run_queries_swst(swst, queries)
        before = hrtree.stats.snapshot()
        for query in queries:
            if query.is_timeslice:
                hrtree.query_timeslice(query.area, query.t_lo)
            else:
                hrtree.query_interval(query.area, query.t_lo, query.t_hi)
        hr_accesses = hrtree.stats.diff(before).node_accesses
        result.rows.append([f"{temporal * 100:g}%",
                            swst_batch.accesses_per_query,
                            hr_accesses / max(len(queries), 1)])
    swst.close()
    hrtree.close()
    return result


def experiment_physical_io(params: BenchParams,
                           capacities: Sequence[int] = (8, 32, 128, 512),
                           ) -> ExperimentResult:
    """Disk-level behaviour: physical reads per query vs buffer capacity.

    Node accesses (the paper's metric) are cache-independent; this
    extension measures what actually hits the disk.  The index is built
    once on a real page file, then reopened cold with different buffer
    pool sizes.  SWST's key clustering keeps each query inside a few
    leaves, so physical reads approach the logical count with tiny
    buffers and collapse quickly as the pool grows.
    """
    import os
    import tempfile

    from ..core.index import SWSTIndex

    stream = _stream_for(params, params.dataset_objects[-1])
    result = ExperimentResult(
        exp_id="Physical-IO", title="Physical reads per query vs buffer "
                                    "pool capacity (cold cache, SWST)",
        headers=["buffer pages", "physical reads/query",
                 "logical accesses/query"])
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "swst.db")
        disk = _replay_to_disk(stream, params.index, path)
        now = disk.now
        disk.save()
        disk.close()
        workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=max(params.query_count // 4, 5))
        for capacity in capacities:
            config = replace(params.index, buffer_capacity=capacity)
            with SWSTIndex.open(path, config) as reopened:
                reopened.pool.drop_cache()
                reopened.stats.reset()
                queries = generate_queries(config, workload, now)
                for query in queries:
                    reopened.query_interval(query.area, query.t_lo,
                                            query.t_hi)
                stats = reopened.stats
                result.rows.append([capacity,
                                    stats.physical_reads / len(queries),
                                    stats.node_accesses / len(queries)])
    result.notes = ("logical accesses are capacity-independent; physical "
                    "reads shrink as the pool grows — key clustering at "
                    "work")
    return result


def _replay_to_disk(stream: list[Report], config: SWSTConfig,
                    path: str) -> "SWSTIndex":
    from ..core.index import SWSTIndex

    index = SWSTIndex(config, path=path)
    try:
        for report in stream:
            index.report(report.oid, report.x, report.y, report.t)
    except BaseException:
        index.close()
        raise
    return index


def experiment_skew(params: BenchParams) -> ExperimentResult:
    """Section V-B's omitted result: "Our index performs better when the
    data is skewed.  For skewed data, the isPresent memo becomes more
    useful."  We measure SWST vs MV3R on uniform, gaussian and skewed
    GSTD initial distributions, plus the memo's contribution per
    distribution."""
    result = ExperimentResult(
        exp_id="Sec.V-B(skew)", title="Effect of spatial data skew "
                                      "(1% spatial, 10% temporal, queries "
                                      "correlated with the data)",
        headers=["distribution", "SWST acc/query", "SWST no-memo "
                 "acc/query", "MV3R acc/query"],
        notes="paper (text only): SWST gains on skewed data because the "
              "memo prunes more")
    for distribution in ("uniform", "gaussian", "skewed"):
        stream = _stream_for(params, params.dataset_objects[-1],
                             initial=distribution)
        swst, _ = build_swst(stream, params.index)
        no_memo, _ = build_swst(stream,
                                replace(params.index, use_memo=False))
        mv3r, _ = build_mv3r(stream, page_size=params.index.page_size,
                             buffer_capacity=params.index.buffer_capacity)
        workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=params.query_count,
                                  placement=distribution)
        queries = generate_queries(params.index, workload, swst.now)
        result.rows.append([
            distribution,
            run_queries_swst(swst, queries).accesses_per_query,
            run_queries_swst(no_memo, queries).accesses_per_query,
            run_queries_mv3r(mv3r, queries).accesses_per_query,
        ])
        swst.close()
        no_memo.close()
        mv3r.close()
    return result


def experiment_interleaved(params: BenchParams) -> ExperimentResult:
    """Section V-A: a sliding-window index must support *interleaved*
    insertions and queries (the restriction that disqualifies PIST).

    Feeds the stream in chunks and fires a query burst after every chunk
    once steady state is reached, reporting how query cost evolves as the
    window keeps sliding.  Stable per-query cost across checkpoints is
    the success criterion — the index does not degrade as windows expire
    and trees are recycled.
    """
    stream = _stream_for(params, params.dataset_objects[-1])
    index, _ = build_swst(stream[:0], params.index)  # empty index
    checkpoints = 5
    chunk = len(stream) // checkpoints
    result = ExperimentResult(
        exp_id="Interleaved", title="Query cost at steady-state "
                                    "checkpoints (interleaved workload)",
        headers=["checkpoint", "stream time", "physical entries",
                 "SWST acc/query"],
        notes="stable accesses/query across checkpoints = no degradation "
              "as the window slides")
    for checkpoint in range(checkpoints):
        for report in stream[checkpoint * chunk:(checkpoint + 1) * chunk]:
            index.report(report.oid, report.x, report.y, report.t)
        if index.now < params.index.window:
            continue  # not yet at steady state
        workload = WorkloadConfig(spatial_extent=0.01, temporal_extent=0.10,
                                  temporal_domain=params.temporal_domain,
                                  count=max(params.query_count // 4, 5),
                                  seed=checkpoint)
        queries = generate_queries(params.index, workload, index.now)
        batch = run_queries_swst(index, queries)
        result.rows.append([checkpoint + 1, index.now, len(index),
                            batch.accesses_per_query])
    index.close()
    return result


def _closed_entries(stream: list[Report], horizon: int) -> list[Entry]:
    """Convert a report stream into closed entries (for PIST's bulk load)."""
    last: dict[int, Report] = {}
    closed: list[Entry] = []
    for report in stream:
        if report.t >= horizon:
            break
        previous = last.get(report.oid)
        if previous is not None and report.t > previous.t:
            closed.append(Entry(previous.oid, previous.x, previous.y,
                                previous.t, report.t - previous.t))
        last[report.oid] = report
    return closed


def run_all(params: BenchParams) -> list[ExperimentResult]:
    """Regenerate every table/figure; returns the results in paper order."""
    fig7, fig8 = experiment_insertion(params)
    return [
        fig7,
        fig8,
        experiment_spatial_extent(params),
        experiment_time_interval(params),
        experiment_memo(params),
        experiment_spatial_cells(params),
        experiment_spartition(params),
        experiment_zcurve(params),
        experiment_maintenance(params),
        experiment_wave(params),
        experiment_hrtree(params),
        experiment_physical_io(params),
        experiment_skew(params),
        experiment_interleaved(params),
    ]
