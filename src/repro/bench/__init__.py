"""Benchmark harness: regenerate every table and figure of the paper."""

from .experiments import (ExperimentResult, experiment_hrtree,
                          experiment_insertion,
                          experiment_interleaved, experiment_maintenance,
                          experiment_memo, experiment_physical_io,
                          experiment_skew,
                          experiment_spartition, experiment_spatial_cells,
                          experiment_spatial_extent, experiment_time_interval,
                          experiment_wave, experiment_zcurve, run_all)
from .harness import (BuildResult, QueryBatchResult, build_mv3r, build_swst,
                      build_swst_batched, run_queries_mv3r, run_queries_swst)
from .params import PAPER, SCALED, TINY, BenchParams, active_params
from .reporting import format_table

__all__ = [
    "BenchParams",
    "BuildResult",
    "ExperimentResult",
    "PAPER",
    "QueryBatchResult",
    "SCALED",
    "TINY",
    "active_params",
    "build_mv3r",
    "build_swst",
    "build_swst_batched",
    "experiment_hrtree",
    "experiment_insertion",
    "experiment_interleaved",
    "experiment_maintenance",
    "experiment_memo",
    "experiment_physical_io",
    "experiment_skew",
    "experiment_spartition",
    "experiment_spatial_cells",
    "experiment_spatial_extent",
    "experiment_time_interval",
    "experiment_wave",
    "experiment_zcurve",
    "format_table",
    "run_all",
    "run_queries_mv3r",
    "run_queries_swst",
]
