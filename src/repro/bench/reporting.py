"""Plain-text tables for benchmark output, one row per paper data point."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render a monospace table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title),
             " | ".join(h.ljust(w)
                        for h, w in zip(headers, widths, strict=True)),
             sep]
    for row in cells:
        lines.append(" | ".join(cell.rjust(w)
                                for cell, w in zip(row, widths,
                                                   strict=True)))
    return "\n".join(lines)


def ascii_chart(title: str, series: dict[str, list[float]],
                labels: Sequence[str], width: int = 50) -> str:
    """Horizontal-bar chart of one or more numeric series.

    Args:
        title: chart heading.
        series: name -> values, one value per label.
        labels: x-axis labels (one row group per label).
        width: bar width in characters for the maximum value.

    Renders the figures the paper plots as grouped bars, e.g.::

        Fig.10
        ======
        0%    SWST |#####                       6.65
              MV3R |##                          3.08
        ...
    """
    if not series:
        raise ValueError("at least one series required")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} has {len(values)} values "
                             f"for {len(labels)} labels")
    peak = max((value for values in series.values() for value in values),
               default=0.0)
    scale = width / peak if peak > 0 else 0.0
    name_width = max(len(name) for name in series)
    label_width = max(len(str(label)) for label in labels)
    lines = [title, "=" * len(title)]
    for idx, label in enumerate(labels):
        for pos, (name, values) in enumerate(series.items()):
            prefix = str(label).ljust(label_width) if pos == 0 \
                else " " * label_width
            bar = "#" * max(int(values[idx] * scale), 0)
            lines.append(f"{prefix} {name.rjust(name_width)} |"
                         f"{bar} {_fmt(values[idx])}")
        lines.append("")
    return "\n".join(lines).rstrip()


def chart_from_result(result: Any, value_columns: dict[str, int],
                      width: int = 50) -> str:
    """Render an :class:`ExperimentResult` as a grouped bar chart.

    Args:
        result: the experiment result (first column = label).
        value_columns: series name -> column index in ``result.rows``.
    """
    labels = [str(row[0]) for row in result.rows]
    series = {name: [float(row[col]) for row in result.rows]
              for name, col in value_columns.items()}
    return ascii_chart(f"{result.exp_id}: {result.title}", series, labels,
                       width)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
