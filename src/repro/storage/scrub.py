"""Offline integrity sweep over a page file (the ``repro scrub`` command).

:func:`scrub_page_file` checksum-verifies every page slot and parses the
pager's header slots without loading the index, reporting the exact ids
and reasons for any corrupt pages.  It never repairs anything — a clean
report means "every byte checks out", a non-empty ``corrupt`` list names
what to restore from backup.

Format-v1 files (no checksums) scrub trivially: only structural checks
(file size, header magic) can fail.
"""

from __future__ import annotations

import dataclasses
import os
import struct
import zlib

from .errors import CorruptPageFileError, StorageError
from .page import _SUPERBLOCK, SUPERBLOCK_MAGIC, FilePageDevice
from .pager import _FLAG_CLEAN, _HEADER_V1, _HEADER_V2, _MAGIC_V1, _MAGIC_V2


@dataclasses.dataclass
class HeaderSlot:
    """One parsed v2 header slot (``valid`` False if it fails checks)."""

    slot: int
    valid: bool
    generation: int = 0
    page_count: int = 0
    clean: bool = False


@dataclasses.dataclass
class ScrubReport:
    """Result of a full integrity sweep."""

    path: str
    format_version: int
    page_size: int
    pages: int
    corrupt: list[tuple[int, str]]
    header_slots: list[HeaderSlot]

    @property
    def ok(self) -> bool:
        return not self.corrupt

    @property
    def committed(self) -> HeaderSlot | None:
        """The newest valid header slot, if any."""
        valid = [slot for slot in self.header_slots if slot.valid]
        return max(valid, key=lambda slot: slot.generation) if valid \
            else None

    def render(self) -> str:
        lines = [f"{self.path}: format v{self.format_version}, "
                 f"page size {self.page_size}, {self.pages} pages"]
        head = self.committed
        if self.format_version == 2:
            if head is None:
                lines.append("  header: NO VALID SLOT")
            else:
                state = "clean" if head.clean else "dirty"
                lines.append(f"  header: slot {head.slot} generation "
                             f"{head.generation}, {head.page_count} "
                             f"committed pages, {state}")
        for page_id, reason in self.corrupt:
            lines.append(f"  page {page_id}: {reason}")
        lines.append(f"  {len(self.corrupt)} corrupt page(s)")
        return "\n".join(lines)


def probe_page_file(path: str | os.PathLike[str]) -> tuple[int, int]:
    """Return ``(format_version, page_size)`` without a full open.

    Raises :class:`CorruptPageFileError` if the file is neither a v2
    device (superblock magic) nor a v1 pager file (header magic).
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        head = handle.read(max(_SUPERBLOCK.size, _HEADER_V1.size))
    if len(head) >= _SUPERBLOCK.size and head[:8] == SUPERBLOCK_MAGIC:
        _, page_size, _, _ = _SUPERBLOCK.unpack_from(head)
        return 2, page_size
    if len(head) >= _HEADER_V1.size and head[:8] == _MAGIC_V1:
        _, page_size, _ = _HEADER_V1.unpack_from(head)
        return 1, page_size
    raise CorruptPageFileError(f"{path}: not a recognised SWST page file")


def probe_committed_generation(path: str | os.PathLike[str]) -> int | None:
    """Newest committed header generation of a page file, probed passively.

    The engine's epoch recovery must learn how far each shard got
    *without opening it* — ``Pager`` open itself commits a header
    (recovery + clean mark), which would advance the generation and
    destroy the evidence.  This reads the two v2 header slots directly
    and returns the highest valid generation.

    Returns ``0`` for a format-v1 file (no generations) and ``None``
    when no committed state is observable at all: the file is missing,
    unrecognisable, or neither header slot checks out.
    """
    path = os.fspath(path)
    try:
        version, page_size = probe_page_file(path)
    except (OSError, StorageError):
        return None
    if version != 2:
        return 0
    device = FilePageDevice(path, page_size)
    best: int | None = None
    try:
        pages = device.page_count()
        for slot in (0, 1):
            if slot >= pages:
                continue
            try:
                raw = device.read(slot)
            except StorageError:
                # A torn header slot is an expected crash artefact; the
                # other slot decides.
                continue
            parsed = _parse_header_slot(slot, raw, page_size)
            if parsed.valid and (best is None or parsed.generation > best):
                best = parsed.generation
    finally:
        device.close()
    return best


def _parse_header_slot(slot: int, raw: bytes, page_size: int) -> HeaderSlot:
    try:
        (magic, ps, generation, page_count, free_head, flags,
         meta_len, crc) = _HEADER_V2.unpack_from(raw)
    except struct.error:
        # Short slot -> invalid; anything else (ChecksumError from a
        # fault-injecting device, OSError) must propagate to the caller.
        return HeaderSlot(slot, valid=False)
    if magic != _MAGIC_V2 or ps != page_size:
        return HeaderSlot(slot, valid=False)
    if meta_len > len(raw) - _HEADER_V2.size:
        return HeaderSlot(slot, valid=False)
    meta = raw[_HEADER_V2.size:_HEADER_V2.size + meta_len]
    probe = _HEADER_V2.pack(magic, ps, generation, page_count, free_head,
                            flags, meta_len, 0)
    if zlib.crc32(probe + meta) != crc:
        return HeaderSlot(slot, valid=False)
    return HeaderSlot(slot, valid=True, generation=generation,
                      page_count=page_count,
                      clean=bool(flags & _FLAG_CLEAN))


def scrub_page_file(path: str | os.PathLike[str]) -> ScrubReport:
    """Checksum-verify every page of ``path`` and parse its headers."""
    path = os.fspath(path)
    version, page_size = probe_page_file(path)
    device = FilePageDevice(path, page_size)
    corrupt: list[tuple[int, str]] = []
    header_slots: list[HeaderSlot] = []
    try:
        pages = device.page_count()
        generations: dict[int, int] = {}
        for page_id in range(pages):
            try:
                generations[page_id] = device.check_page(page_id)
            except StorageError as exc:
                reason = str(exc)
                prefix = f"page {page_id}: "
                if reason.startswith(prefix):
                    reason = reason[len(prefix):]
                corrupt.append((page_id, reason))
        if version == 2:
            bad = {page_id for page_id, _ in corrupt}
            for slot in (0, 1):
                if slot < pages and slot not in bad:
                    header_slots.append(_parse_header_slot(
                        slot, device.read(slot), page_size))
                else:
                    header_slots.append(HeaderSlot(slot, valid=False))
            if not any(slot.valid for slot in header_slots):
                corrupt.append((0, "no valid committed header slot"))
            else:
                best = max((s for s in header_slots if s.valid),
                           key=lambda s: s.generation)
                if best.page_count > pages:
                    corrupt.append(
                        (0, f"header claims {best.page_count} pages but "
                            f"only {pages} are on disk"))
                # A committed page stamped newer than the committed
                # header is an in-place overwrite from a crashed write
                # window: the committed snapshot did not survive, and
                # recovery-on-open will refuse the file the same way.
                for page_id in range(2, min(best.page_count, pages)):
                    generation = generations.get(page_id)
                    if generation is not None \
                            and generation > best.generation:
                        corrupt.append(
                            (page_id,
                             f"uncommitted data from generation "
                             f"{generation} overwrites the committed "
                             f"snapshot (generation {best.generation})"))
    finally:
        device.close()
    return ScrubReport(path=path, format_version=version,
                       page_size=page_size, pages=pages,
                       corrupt=corrupt, header_slots=header_slots)
