"""Raw page devices.

A *page device* stores fixed-size pages addressed by integer id and knows
nothing about their contents.  Two implementations are provided:

* :class:`FilePageDevice` — pages live in a single binary file on disk.  This
  is the production device and the one the paper's cost model assumes.
* :class:`MemoryPageDevice` — pages live in a dict.  Used by tests and
  benchmarks that only care about *logical* node accesses (the paper's
  metric), where real disk IO would add noise without changing the counts.
"""

from __future__ import annotations

import os
from typing import Protocol

from .errors import PageError, PagerClosedError

DEFAULT_PAGE_SIZE = 8192


class PageDevice(Protocol):
    """Minimal interface a page store must provide."""

    page_size: int

    def read(self, page_id: int) -> bytes: ...

    def write(self, page_id: int, data: bytes) -> None: ...

    def extend(self) -> int: ...

    def page_count(self) -> int: ...

    def sync(self) -> None: ...

    def close(self) -> None: ...


class FilePageDevice:
    """Fixed-size pages stored in one binary file."""

    def __init__(self, path: str | os.PathLike[str],
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size % 512:
            raise ValueError(f"page_size must be a positive multiple of 512, "
                             f"got {page_size}")
        self.path = os.fspath(path)
        self.page_size = page_size
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        self._closed = False
        size = os.fstat(self._file.fileno()).st_size
        if size % page_size:
            raise PageError(
                f"file size {size} is not a multiple of page size {page_size}")
        self._count = size // page_size

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("page device is closed")

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._count:
            raise PageError(f"page id {page_id} out of range "
                            f"[0, {self._count})")

    def read(self, page_id: int) -> bytes:
        self._check_open()
        self._check_id(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check_open()
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise PageError(f"page data must be exactly {self.page_size} "
                            f"bytes, got {len(data)}")
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def extend(self) -> int:
        """Append one zeroed page and return its id."""
        self._check_open()
        page_id = self._count
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._count += 1
        return page_id

    def page_count(self) -> int:
        return self._count

    def sync(self) -> None:
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True


class MemoryPageDevice:
    """Pages stored in memory; same contract as :class:`FilePageDevice`."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: list[bytes] = []
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("page device is closed")

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(f"page id {page_id} out of range "
                            f"[0, {len(self._pages)})")

    def read(self, page_id: int) -> bytes:
        self._check_open()
        self._check_id(page_id)
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check_open()
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise PageError(f"page data must be exactly {self.page_size} "
                            f"bytes, got {len(data)}")
        self._pages[page_id] = bytes(data)

    def extend(self) -> int:
        self._check_open()
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def page_count(self) -> int:
        return len(self._pages)

    def sync(self) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True
