"""Raw page devices.

A *page device* stores fixed-size pages addressed by integer id and knows
nothing about their contents.  Two implementations are provided:

* :class:`FilePageDevice` — pages live in a single binary file on disk.  This
  is the production device and the one the paper's cost model assumes.
* :class:`MemoryPageDevice` — pages live in a dict.  Used by tests and
  benchmarks that only care about *logical* node accesses (the paper's
  metric), where real disk IO would add noise without changing the counts.

On-disk format v2 (the default for new files)::

    superblock (512 bytes): magic "SWSTDV2\\0", page_size, trailer_size, crc32
    page slot i at offset 512 + i * (page_size + 16):
        page data (page_size bytes)
        trailer (16 bytes): crc32, format tag "SWP2", write generation

The trailer lives *outside* the logical page, so the page size seen by every
layer above (pager, buffer pool, B+ tree fan-out) is identical with and
without checksums.  Reads verify the trailer: a wrong format tag raises
:class:`TornWriteError` (the write never completed), a CRC mismatch raises
:class:`ChecksumError`.  The write generation is stamped by the pager and
lets crash recovery detect pages written after the last committed header.

Format v1 files (no superblock; raw ``page_size``-sized pages) are detected
by the absence of the superblock magic and stay fully readable and writable,
just without checksums.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Protocol

from .errors import (ChecksumError, CorruptPageFileError, PageError,
                     PagerClosedError, TornWriteError)

DEFAULT_PAGE_SIZE = 8192

#: Size of the format-v2 superblock that prefixes the page slots.
SUPERBLOCK_SIZE = 512
SUPERBLOCK_MAGIC = b"SWSTDV2\x00"
_SUPERBLOCK = struct.Struct("<8sIII")  # magic, page_size, trailer_size, crc32

#: Per-page trailer: crc32, format tag, write generation.
PAGE_TRAILER = struct.Struct("<IIQ")
TRAILER_TAG = 0x53575032  # "SWP2" little-endian


class PageDevice(Protocol):
    """Minimal interface a page store must provide."""

    page_size: int
    checksums: bool

    def read(self, page_id: int) -> bytes: ...

    def write(self, page_id: int, data: bytes) -> None: ...

    def extend(self) -> int: ...

    def page_count(self) -> int: ...

    def truncate(self, page_count: int) -> None: ...

    def sync(self) -> None: ...

    def close(self) -> None: ...


class FilePageDevice:
    """Fixed-size pages stored in one binary file.

    New files are created in format v2 (superblock + per-page checksum
    trailers); existing v1 files open read/write-compatibly with
    ``checksums`` False.
    """

    def __init__(self, path: str | os.PathLike[str],
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size % 512:
            raise ValueError(f"page_size must be a positive multiple of 512, "
                             f"got {page_size}")
        self.path = os.fspath(path)
        self.page_size = page_size
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        self._closed = False
        self._write_generation = 0
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size == 0:
                self._init_v2()
            else:
                self._open_existing(size)
        except BaseException:
            self._closed = True
            self._file.close()
            raise

    # -- format handling -----------------------------------------------------

    def _init_v2(self) -> None:
        self.format_version = 2
        self.checksums = True
        self._base = SUPERBLOCK_SIZE
        self._slot_size = self.page_size + PAGE_TRAILER.size
        fixed = _SUPERBLOCK.pack(SUPERBLOCK_MAGIC, self.page_size,
                                 PAGE_TRAILER.size, 0)
        crc = zlib.crc32(fixed)
        blob = _SUPERBLOCK.pack(SUPERBLOCK_MAGIC, self.page_size,
                                PAGE_TRAILER.size, crc)
        self._file.seek(0)
        self._file.write(blob.ljust(SUPERBLOCK_SIZE, b"\x00"))
        self._count = 0

    def _open_existing(self, size: int) -> None:
        self._file.seek(0)
        head = self._file.read(_SUPERBLOCK.size)
        if head[:8] == SUPERBLOCK_MAGIC and len(head) == _SUPERBLOCK.size:
            magic, ps, trailer_size, crc = _SUPERBLOCK.unpack(head)
            probe = _SUPERBLOCK.pack(magic, ps, trailer_size, 0)
            if zlib.crc32(probe) != crc:
                raise CorruptPageFileError(
                    f"{self.path}: superblock failed its checksum")
            if ps != self.page_size:
                raise CorruptPageFileError(
                    f"file page size {ps} != requested {self.page_size}")
            if trailer_size != PAGE_TRAILER.size:
                raise CorruptPageFileError(
                    f"unsupported page trailer size {trailer_size}")
            self.format_version = 2
            self.checksums = True
            self._base = SUPERBLOCK_SIZE
            self._slot_size = self.page_size + PAGE_TRAILER.size
            payload = max(size - SUPERBLOCK_SIZE, 0)
            self._count = payload // self._slot_size
            if payload % self._slot_size:
                # A torn extend left a partial slot at the tail; drop it —
                # it was never part of any committed state.
                self._file.truncate(self._offset(self._count))
        else:
            self.format_version = 1
            self.checksums = False
            self._base = 0
            self._slot_size = self.page_size
            if size % self.page_size:
                raise PageError(f"file size {size} is not a multiple of "
                                f"page size {self.page_size}")
            self._count = size // self.page_size

    def _offset(self, page_id: int) -> int:
        return self._base + page_id * self._slot_size

    # -- trailer helpers -----------------------------------------------------

    def set_write_generation(self, generation: int) -> None:
        """Generation stamped into the trailer of every subsequent write."""
        self._write_generation = generation

    def _make_trailer(self, data: bytes) -> bytes:
        tail = PAGE_TRAILER.pack(0, TRAILER_TAG, self._write_generation)
        crc = zlib.crc32(tail, zlib.crc32(data))
        return PAGE_TRAILER.pack(crc, TRAILER_TAG, self._write_generation)

    def _verify_trailer(self, page_id: int, data: bytes,
                        trailer: bytes) -> int:
        crc, tag, generation = PAGE_TRAILER.unpack(trailer)
        if tag != TRAILER_TAG:
            raise TornWriteError(
                f"page {page_id}: invalid trailer (torn or never-completed "
                f"write)")
        probe = PAGE_TRAILER.pack(0, tag, generation)
        expected = zlib.crc32(probe, zlib.crc32(data))
        if crc != expected:
            raise ChecksumError(
                f"page {page_id}: checksum mismatch (stored {crc:#010x}, "
                f"computed {expected:#010x})")
        return generation

    # -- device API ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("page device is closed")

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._count:
            raise PageError(f"page id {page_id} out of range "
                            f"[0, {self._count})")

    def read(self, page_id: int) -> bytes:
        self._check_open()
        self._check_id(page_id)
        self._file.seek(self._offset(page_id))
        blob = self._file.read(self._slot_size)
        if len(blob) != self._slot_size:
            raise PageError(f"short read on page {page_id}")
        if not self.checksums:
            return blob
        data, trailer = blob[:self.page_size], blob[self.page_size:]
        self._verify_trailer(page_id, data, trailer)
        return data

    def check_page(self, page_id: int) -> int:
        """Verify one page's trailer; returns its write generation.

        Raises :class:`TornWriteError`/:class:`ChecksumError` on corruption.
        Format-v1 pages have no trailer and always verify with generation 0.
        """
        self._check_open()
        self._check_id(page_id)
        if not self.checksums:
            return 0
        self._file.seek(self._offset(page_id))
        blob = self._file.read(self._slot_size)
        if len(blob) != self._slot_size:
            raise TornWriteError(f"page {page_id}: short slot on disk")
        return self._verify_trailer(page_id, blob[:self.page_size],
                                    blob[self.page_size:])

    def _write_at(self, page_id: int, data: bytes) -> None:
        blob = data + self._make_trailer(data) if self.checksums else data
        self._file.seek(self._offset(page_id))
        self._file.write(blob)

    def write(self, page_id: int, data: bytes) -> None:
        self._check_open()
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise PageError(f"page data must be exactly {self.page_size} "
                            f"bytes, got {len(data)}")
        self._write_at(page_id, data)

    def extend(self) -> int:
        """Append one zeroed page and return its id."""
        self._check_open()
        page_id = self._count
        self._write_at(page_id, b"\x00" * self.page_size)
        self._count += 1
        return page_id

    def truncate(self, page_count: int) -> None:
        """Discard every page with id >= ``page_count`` (recovery only)."""
        self._check_open()
        if not 0 <= page_count <= self._count:
            raise PageError(f"cannot truncate to {page_count} pages "
                            f"(device holds {self._count})")
        self._file.flush()
        self._file.truncate(self._offset(page_count))
        self._count = page_count

    def page_count(self) -> int:
        return self._count

    def sync(self) -> None:
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.flush()
            self._file.close()

    # -- raw slot access (fault injection and forensics) ---------------------

    def _read_raw(self, page_id: int) -> bytes:
        """The physical slot bytes (data + trailer), unverified."""
        self._check_open()
        self._check_id(page_id)
        self._file.seek(self._offset(page_id))
        blob = self._file.read(self._slot_size)
        return blob.ljust(self._slot_size, b"\x00")

    def _write_raw(self, page_id: int, blob: bytes) -> None:
        """Overwrite the physical slot verbatim — below the checksum layer."""
        self._check_open()
        self._check_id(page_id)
        if len(blob) != self._slot_size:
            raise PageError(f"raw slot must be exactly {self._slot_size} "
                            f"bytes, got {len(blob)}")
        self._file.seek(self._offset(page_id))
        self._file.write(blob)


class MemoryPageDevice:
    """Pages stored in memory; same contract as :class:`FilePageDevice`."""

    format_version = 2
    checksums = False

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: list[bytes] = []
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("page device is closed")

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(f"page id {page_id} out of range "
                            f"[0, {len(self._pages)})")

    def read(self, page_id: int) -> bytes:
        self._check_open()
        self._check_id(page_id)
        return self._pages[page_id]

    def check_page(self, page_id: int) -> int:
        self._check_open()
        self._check_id(page_id)
        return 0

    def write(self, page_id: int, data: bytes) -> None:
        self._check_open()
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise PageError(f"page data must be exactly {self.page_size} "
                            f"bytes, got {len(data)}")
        self._pages[page_id] = bytes(data)

    def extend(self) -> int:
        self._check_open()
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def truncate(self, page_count: int) -> None:
        self._check_open()
        if not 0 <= page_count <= len(self._pages):
            raise PageError(f"cannot truncate to {page_count} pages "
                            f"(device holds {len(self._pages)})")
        del self._pages[page_count:]

    def page_count(self) -> int:
        return len(self._pages)

    def sync(self) -> None:
        self._check_open()

    def close(self) -> None:
        self._closed = True
