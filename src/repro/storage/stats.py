"""IO statistics counters.

The SWST paper (Section V) reports *node accesses* — logical page fetches —
as its primary cost metric, because it is independent of the buffer cache
state and of the host language.  :class:`IOStats` tracks both the logical
counters (every ``fetch`` through the buffer pool) and the physical ones
(actual file reads/writes that missed the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counter block shared by a pager and its buffer pool.

    Attributes:
        logical_reads: number of page fetches requested by callers.  This is
            the paper's "node accesses" metric.
        logical_writes: number of page write requests (mark-dirty events).
        physical_reads: pages actually read from the file (cache misses).
        physical_writes: pages actually written back to the file.
        allocations: pages newly allocated.
        frees: pages returned to the free list.
        node_parses: pages decoded into node objects (cache misses of the
            decoded-node cache, or every fetch when that cache is disabled).
        node_cache_hits: node fetches served from the decoded-node cache
            without re-parsing the page bytes.
        node_serializations: node objects encoded back to page bytes
            (deferred to eviction/flush; never larger than the number of
            logical writes they replace).
    """

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    allocations: int = 0
    frees: int = 0
    node_parses: int = 0
    node_cache_hits: int = 0
    node_serializations: int = 0

    @property
    def node_accesses(self) -> int:
        """Total node accesses (logical reads + logical writes).

        The paper counts the pages touched during an operation; both read and
        written pages count as accessed nodes.
        """
        return self.logical_reads + self.logical_writes

    def reset(self) -> None:
        """Zero every counter in place."""
        self.logical_reads = 0
        self.logical_writes = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.allocations = 0
        self.frees = 0
        self.node_parses = 0
        self.node_cache_hits = 0
        self.node_serializations = 0

    def snapshot(self) -> "IOStats":
        """Return an immutable-by-convention copy of the current counters."""
        return IOStats(
            logical_reads=self.logical_reads,
            logical_writes=self.logical_writes,
            physical_reads=self.physical_reads,
            physical_writes=self.physical_writes,
            allocations=self.allocations,
            frees=self.frees,
            node_parses=self.node_parses,
            node_cache_hits=self.node_cache_hits,
            node_serializations=self.node_serializations,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter deltas since ``earlier`` (a prior snapshot)."""
        return IOStats(
            logical_reads=self.logical_reads - earlier.logical_reads,
            logical_writes=self.logical_writes - earlier.logical_writes,
            physical_reads=self.physical_reads - earlier.physical_reads,
            physical_writes=self.physical_writes - earlier.physical_writes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            node_parses=self.node_parses - earlier.node_parses,
            node_cache_hits=self.node_cache_hits - earlier.node_cache_hits,
            node_serializations=(self.node_serializations
                                 - earlier.node_serializations),
        )


@dataclass
class StatsRecorder:
    """Convenience wrapper to measure the IO cost of a code region.

    Example::

        rec = StatsRecorder(pool.stats)
        with rec:
            index.insert(...)
        print(rec.delta.node_accesses)
    """

    stats: IOStats
    delta: IOStats = field(default_factory=IOStats)
    _start: IOStats | None = None

    def __enter__(self) -> "StatsRecorder":
        self._start = self.stats.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.delta = self.stats.diff(self._start)
        self._start = None
