"""Fault injection: a page device wrapper that breaks on command.

:class:`FaultInjectingPageDevice` wraps any page device and injects
failures *below* the checksum layer, so the corruption it produces is
exactly what the recovery machinery must detect:

* **crash at write k** — the k-th write (counting ``write`` and ``extend``
  together) optionally tears (a prefix of the physical slot — data *and*
  trailer — is written, the suffix keeps its old bytes) and then raises
  :class:`OSError`; every later write or sync also raises, simulating a
  process that died at that instant.
* **scriptable error schedules** — map read/write ordinals to arbitrary
  exceptions for targeted ``OSError`` testing.
* **stored bit flips** — :meth:`flip_stored_bit` XORs a byte of the raw
  slot on disk (under the CRC), modelling bit rot.

The wrapper satisfies the :class:`repro.storage.page.PageDevice` protocol
and plugs under :class:`repro.storage.pager.Pager` either directly
(``Pager(device=...)``) or through ``SWSTConfig.device_factory``.

:class:`FaultInjectingFileOps` is the same idea one level up: it wraps
the engine's durable-file seam (:class:`repro.storage.fileops.FileOps`)
so the *manifest protocol* — temp-file writes, ``os.replace`` flips,
directory fsyncs, marker unlinks — can be killed at any single step.
The engine-level crash matrix iterates ``fail_op`` over every ordinal of
a ``save()`` and proves each prefix leaves a recoverable directory.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, MutableSequence

from .fileops import DURABLE_FILE_OPS, FileOps
from .page import PageDevice


class InjectedFault(OSError):
    """The fault injector fired (distinguishable from real IO errors)."""


def crash_devices(devices: MutableSequence["FaultInjectingPageDevice"],
                  ) -> None:
    """Simulate a process kill across ``devices``.

    Sets ``crashed`` on every registered wrapper so any further IO — a
    buffer-pool flush, a pager header commit, the close path — raises
    :class:`InjectedFault`.  Whatever already reached the disk stays;
    nothing else gets through.  The crash matrices pair this with the
    ``registry`` argument of :func:`per_path_device_factory`.
    """
    for device in devices:
        device.crashed = True


def per_path_device_factory(
        match: str,
        base_factory: Callable[[str, int], Any] | None = None,
        registry: MutableSequence["FaultInjectingPageDevice"] | None = None,
        **fault_kwargs: Any) -> Callable[[str, int], Any]:
    """Build a ``device_factory`` that injects faults for selected paths.

    The sharded engine opens one page device per shard through the same
    ``SWSTConfig.device_factory``; each shard is distinguished only by its
    file path (``shard-000.pages``, ``shard-001.pages``, ...).  The factory
    returned here wraps the device in a
    :class:`FaultInjectingPageDevice` configured with ``fault_kwargs``
    *only* when ``match`` occurs in the path, so a single shard of an
    engine can be made to fail while its siblings stay healthy.

    Args:
        match: substring of the path that selects the faulty device(s).
        base_factory: how to build the underlying device; defaults to a
            plain :class:`~repro.storage.page.FilePageDevice`.
        registry: optional mutable sequence that collects every wrapper
            built; the engine crash matrix uses it to flip ``crashed``
            on all of an engine's devices at once (simulated kill).
        **fault_kwargs: passed to :class:`FaultInjectingPageDevice`.

    Returns:
        A ``(path, page_size) -> PageDevice`` callable for
        ``SWSTConfig.device_factory``.
    """
    def factory(path: str, page_size: int) -> Any:
        from .page import FilePageDevice

        device = (base_factory(path, page_size)
                  if base_factory is not None
                  else FilePageDevice(path, page_size))
        try:
            if match in os.fspath(path):
                wrapper = FaultInjectingPageDevice(device, **fault_kwargs)
                if registry is not None:
                    registry.append(wrapper)
                return wrapper
            return device
        except BaseException:
            device.close()
            raise

    return factory


class FaultInjectingPageDevice:
    """Wrap ``device``, injecting faults according to the configuration.

    Args:
        device: the real page device (usually a
            :class:`~repro.storage.page.FilePageDevice`).
        fail_write: 1-based ordinal of the write operation at which to
            crash, or ``None`` to never crash.
        tear_bytes: how many bytes of the crashing write's physical slot
            reach the disk before the crash (0 = none; the write is lost
            entirely).
        fail_read: 1-based ordinal of the read operation at which to
            crash (sets ``crashed``, so every later operation fails
            too), or ``None`` to never crash on read.
        write_errors: optional map of write ordinal -> exception to raise
            *instead of* performing that write (the device stays usable).
        read_errors: optional map of read ordinal -> exception to raise
            instead of performing that read.
    """

    def __init__(self, device: PageDevice, *,
                 fail_write: int | None = None,
                 tear_bytes: int = 0,
                 fail_read: int | None = None,
                 write_errors: Mapping[int, Exception] | None = None,
                 read_errors: Mapping[int, Exception] | None = None) -> None:
        self._inner = device
        self.fail_write = fail_write
        self.tear_bytes = tear_bytes
        self.fail_read = fail_read
        self.write_errors = dict(write_errors or {})
        self.read_errors = dict(read_errors or {})
        self.writes_seen = 0
        self.reads_seen = 0
        self.crashed = False

    # -- delegated attributes ------------------------------------------------

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def checksums(self) -> bool:
        return getattr(self._inner, "checksums", False)

    @property
    def format_version(self) -> int:
        return getattr(self._inner, "format_version", 1)

    def set_write_generation(self, generation: int) -> None:
        setter = getattr(self._inner, "set_write_generation", None)
        if setter is not None:
            setter(generation)

    def check_page(self, page_id: int) -> int:
        return self._inner.check_page(page_id)

    def page_count(self) -> int:
        return self._inner.page_count()

    # -- fault machinery -----------------------------------------------------

    def _check_crashed(self) -> None:
        if self.crashed:
            raise InjectedFault("device crashed by fault injection")

    def _next_write(self) -> None:
        """Advance the write ordinal; raise if a fault is scheduled."""
        self._check_crashed()
        self.writes_seen += 1
        error = self.write_errors.pop(self.writes_seen, None)
        if error is not None:
            raise error

    def _crash_due(self) -> bool:
        return self.fail_write is not None \
            and self.writes_seen == self.fail_write

    def _tear_slot(self, page_id: int, data: bytes, fresh: bool) -> None:
        """Leave a torn physical slot: new prefix, stale suffix."""
        inner = self._inner
        if hasattr(inner, "_write_raw") and inner.checksums:
            new_blob = data + inner._make_trailer(data)
            old_blob = (b"\xff" * len(new_blob) if fresh
                        else inner._read_raw(page_id))
        else:
            new_blob = data
            old_blob = (b"\x00" * len(data) if fresh
                        else inner.read(page_id))
        tear = min(self.tear_bytes, len(new_blob))
        torn = new_blob[:tear] + old_blob[tear:]
        if hasattr(inner, "_write_raw") and inner.checksums:
            inner._write_raw(page_id, torn)
        else:
            inner.write(page_id, torn)

    def flip_stored_bit(self, page_id: int, byte_offset: int,
                        mask: int = 0x01) -> None:
        """XOR one stored byte of the page's physical slot (bit rot)."""
        inner = self._inner
        if hasattr(inner, "_read_raw"):
            blob = bytearray(inner._read_raw(page_id))
            blob[byte_offset] ^= mask
            inner._write_raw(page_id, bytes(blob))
        else:
            data = bytearray(inner.read(page_id))
            data[byte_offset] ^= mask
            inner.write(page_id, bytes(data))

    # -- device API ----------------------------------------------------------

    def read(self, page_id: int) -> bytes:
        self._check_crashed()
        self.reads_seen += 1
        error = self.read_errors.pop(self.reads_seen, None)
        if error is not None:
            raise error
        if self.fail_read is not None and self.reads_seen == self.fail_read:
            self.crashed = True
            raise InjectedFault(
                f"injected crash at read {self.reads_seen} "
                f"(page {page_id})")
        return self._inner.read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._next_write()
        if self._crash_due():
            self.crashed = True
            if self.tear_bytes > 0:
                self._tear_slot(page_id, data, fresh=False)
            raise InjectedFault(
                f"injected crash at write {self.writes_seen} "
                f"(page {page_id}, {self.tear_bytes} bytes reached disk)")
        self._inner.write(page_id, data)

    def extend(self) -> int:
        self._next_write()
        if self._crash_due():
            self.crashed = True
            if self.tear_bytes > 0:
                page_id = self._inner.extend()
                self._tear_slot(page_id, b"\x00" * self.page_size,
                                fresh=True)
            raise InjectedFault(
                f"injected crash at write {self.writes_seen} (extend, "
                f"{self.tear_bytes} bytes reached disk)")
        return self._inner.extend()

    def truncate(self, page_count: int) -> None:
        self._check_crashed()
        self._inner.truncate(page_count)

    def sync(self) -> None:
        self._check_crashed()
        self._inner.sync()

    def close(self) -> None:
        # Always release the real device, even after a simulated crash —
        # the *handle* must not leak just because the *disk* died.
        self._inner.close()


class FaultInjectingFileOps:
    """Wrap a :class:`~repro.storage.fileops.FileOps`, failing on command.

    Counts every durable-file operation the engine's manifest protocol
    performs — ``write_file``, ``replace``, ``fsync_dir``, ``unlink`` —
    and crashes at a chosen ordinal, after which every further operation
    fails too (the process is dead).  ``ops`` records each completed or
    attempted operation as ``(name, path)``, so the crash matrix can
    first run a fault-free save to learn the protocol length, then kill
    at every ordinal ``1..len(ops)``.

    Args:
        inner: the real implementation; defaults to the shared
            :data:`~repro.storage.fileops.DURABLE_FILE_OPS`.
        fail_op: 1-based ordinal of the operation at which to crash, or
            ``None`` to never crash.  The crashing operation does *not*
            reach the inner implementation — the kill lands just before
            the syscall.
        op_errors: optional map of ordinal -> exception raised instead
            of performing that operation (the ops object stays usable:
            a transient fault, not a kill).
        short_writes: optional map of op ordinal -> byte count.  When a
            ``write_file``/``append_file`` lands on a scheduled ordinal,
            only that many bytes of its payload reach the inner
            implementation before the process "dies" (``crashed`` is
            set and :class:`InjectedFault` raised) — a torn small-file
            write, the failure a WAL's CRC trailers must detect.
        fsync_errors: optional map of *fsync ordinal* -> exception.  The
            fsync ordinal counts ``fsync_file`` and ``fsync_dir`` calls
            only (1-based, separate from the global op counter), so a
            group-commit barrier can be failed without first counting
            the appends that led up to it.  Transient: the ops object
            stays usable, modelling a disk that rejected one barrier.
    """

    def __init__(self, inner: FileOps | None = None, *,
                 fail_op: int | None = None,
                 op_errors: Mapping[int, Exception] | None = None,
                 short_writes: Mapping[int, int] | None = None,
                 fsync_errors: Mapping[int, Exception] | None = None,
                 ) -> None:
        self._inner: FileOps = inner if inner is not None \
            else DURABLE_FILE_OPS
        self.fail_op = fail_op
        self.op_errors = dict(op_errors or {})
        self.short_writes = dict(short_writes or {})
        self.fsync_errors = dict(fsync_errors or {})
        self.ops: list[tuple[str, str]] = []
        self.fsyncs_seen = 0
        self.crashed = False

    def _next_op(self, name: str, path: str) -> None:
        if self.crashed:
            raise InjectedFault("file ops crashed by fault injection")
        self.ops.append((name, path))
        ordinal = len(self.ops)
        error = self.op_errors.pop(ordinal, None)
        if error is not None:
            raise error
        if self.fail_op is not None and ordinal == self.fail_op:
            self.crashed = True
            raise InjectedFault(
                f"injected crash at file op {ordinal} ({name} {path!r})")

    def _short_write_due(self) -> int | None:
        """Bytes to let through if this op is a scheduled short write."""
        return self.short_writes.pop(len(self.ops), None)

    def _next_fsync(self, name: str, path: str) -> None:
        """Advance the fsync ordinal; raise a scheduled transient error."""
        self.fsyncs_seen += 1
        error = self.fsync_errors.pop(self.fsyncs_seen, None)
        if error is not None:
            raise error

    def write_file(self, path: str, data: bytes) -> None:
        self._next_op("write_file", path)
        tear = self._short_write_due()
        if tear is not None:
            self._inner.write_file(path, data[:tear])
            self.crashed = True
            raise InjectedFault(
                f"injected short write at file op {len(self.ops)} "
                f"({tear}/{len(data)} bytes of {path!r} reached disk)")
        self._inner.write_file(path, data)

    def replace(self, src: str, dst: str) -> None:
        self._next_op("replace", dst)
        self._inner.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        self._next_op("fsync_dir", path)
        self._next_fsync("fsync_dir", path)
        self._inner.fsync_dir(path)

    def unlink(self, path: str) -> None:
        self._next_op("unlink", path)
        self._inner.unlink(path)

    def append_file(self, path: str, data: bytes) -> None:
        self._next_op("append_file", path)
        tear = self._short_write_due()
        if tear is not None:
            self._inner.append_file(path, data[:tear])
            self.crashed = True
            raise InjectedFault(
                f"injected short append at file op {len(self.ops)} "
                f"({tear}/{len(data)} bytes of {path!r} reached disk)")
        self._inner.append_file(path, data)

    def fsync_file(self, path: str) -> None:
        self._next_op("fsync_file", path)
        self._next_fsync("fsync_file", path)
        self._inner.fsync_file(path)

    def truncate_file(self, path: str, size: int) -> None:
        self._next_op("truncate_file", path)
        self._inner.truncate_file(path, size)

    def copy_file(self, src: str, dst: str) -> None:
        self._next_op("copy_file", dst)
        self._inner.copy_file(src, dst)

    def mkdir(self, path: str) -> None:
        self._next_op("mkdir", path)
        self._inner.mkdir(path)

    def rmdir(self, path: str) -> None:
        self._next_op("rmdir", path)
        self._inner.rmdir(path)
