"""Exception hierarchy for the storage layer.

All storage-level failures derive from :class:`StorageError` so callers can
catch one base class at the public-API boundary.
"""


class StorageError(Exception):
    """Base class for all storage-layer failures."""


class PageError(StorageError):
    """A page id is invalid, out of range, or refers to a freed page."""


class PagerClosedError(StorageError):
    """An operation was attempted on a closed pager or buffer pool."""


class CorruptPageFileError(StorageError):
    """The on-disk page file failed a structural sanity check."""
