"""Exception hierarchy for the storage layer.

All storage-level failures derive from :class:`StorageError` so callers can
catch one base class at the public-API boundary.  Corruption detected on the
read path is further split: :class:`TornWriteError` (a page whose trailer was
never completely written — the classic crash-mid-write signature) versus
:class:`ChecksumError` (a complete trailer whose CRC disagrees with the page
body — bit rot or a torn body under an old trailer).  Both subclass
:class:`CorruptPageFileError` so recovery code can treat them uniformly.
"""


class StorageError(Exception):
    """Base class for all storage-layer failures."""


class PageError(StorageError):
    """A page id is invalid, out of range, or refers to a freed page."""


class PagerClosedError(StorageError):
    """An operation was attempted on a closed pager or buffer pool."""


class CorruptPageFileError(StorageError):
    """The on-disk page file failed a structural sanity check."""


class NoCatalogError(CorruptPageFileError):
    """The page file holds no committed catalog (it was never saved).

    Distinct from damage: a fresh page file whose owner died before its
    first commit looks exactly like this, and recovery layers that keep
    a write-ahead log may treat the durable base state as "empty"
    rather than refusing to open.
    """


class ChecksumError(CorruptPageFileError):
    """A page's stored CRC32 disagrees with its contents."""


class TornWriteError(CorruptPageFileError):
    """A page's trailer is missing or incomplete (interrupted write)."""
