"""Durable small-file operations (the sharded engine's manifest seam).

The engine's two-phase epoch commit hinges on a handful of filesystem
operations being *durable* and *ordered*: write a temp file and fsync it
(so its bytes are on disk before it gets a name), ``os.replace`` it over
the target (atomic on POSIX), fsync the containing directory (so the
rename itself survives power loss), unlink a marker file.  This module
wraps those four operations behind the :class:`FileOps` protocol so the
crash-matrix harness can substitute
:class:`repro.storage.fault.FaultInjectingFileOps` and kill the protocol
at every step.

Page-level IO has its own seam (``SWSTConfig.device_factory``); this one
is for the *metadata* files that live next to the page files.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable


@runtime_checkable
class FileOps(Protocol):
    """Durable filesystem operations used by directory-level commits."""

    def write_file(self, path: str, data: bytes) -> None:
        """Create/truncate ``path`` with ``data``, flushed and fsynced."""
        ...  # pragma: no cover - protocol

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        ...  # pragma: no cover - protocol

    def fsync_dir(self, path: str) -> None:
        """fsync directory ``path`` so renames/unlinks inside it persist."""
        ...  # pragma: no cover - protocol

    def unlink(self, path: str) -> None:
        """Remove ``path`` if it exists (missing is not an error)."""
        ...  # pragma: no cover - protocol

    def append_file(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path`` (created if missing), *not* fsynced.

        Durability is deferred to an explicit :meth:`fsync_file` so a WAL
        writer can batch many appends under one fsync (group commit).
        """
        ...  # pragma: no cover - protocol

    def fsync_file(self, path: str) -> None:
        """fsync ``path``'s contents (the group-commit barrier)."""
        ...  # pragma: no cover - protocol

    def truncate_file(self, path: str, size: int) -> None:
        """Truncate ``path`` to ``size`` bytes and fsync it."""
        ...  # pragma: no cover - protocol

    def copy_file(self, src: str, dst: str) -> None:
        """Durably copy ``src`` over ``dst``.

        The copy itself must be atomic with respect to crashes: either
        ``dst`` keeps its old bytes (or stays absent) or it holds a
        complete, fsynced copy of ``src``.  The containing directory is
        *not* fsynced here — callers batch that behind one
        :meth:`fsync_dir`, the same discipline as :meth:`replace`.
        """
        ...  # pragma: no cover - protocol

    def mkdir(self, path: str) -> None:
        """Create directory ``path`` (already existing is not an error)."""
        ...  # pragma: no cover - protocol

    def rmdir(self, path: str) -> None:
        """Remove empty directory ``path`` (missing is not an error)."""
        ...  # pragma: no cover - protocol


class DurableFileOps:
    """The real thing: plain ``os`` calls with the full fsync discipline."""

    def write_file(self, path: str, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        fd = -1
        try:
            fd = os.open(path, os.O_RDONLY)
            os.fsync(fd)
        finally:
            if fd >= 0:
                os.close(fd)

    def unlink(self, path: str) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def append_file(self, path: str, data: bytes) -> None:
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()

    def fsync_file(self, path: str) -> None:
        fd = -1
        try:
            fd = os.open(path, os.O_RDONLY)
            os.fsync(fd)
        finally:
            if fd >= 0:
                os.close(fd)

    def truncate_file(self, path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def copy_file(self, src: str, dst: str) -> None:
        with open(src, "rb") as handle:
            blob = handle.read()
        tmp = dst + ".tmp"
        self.write_file(tmp, blob)
        self.replace(tmp, dst)

    def mkdir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def rmdir(self, path: str) -> None:
        try:
            os.rmdir(path)
        except FileNotFoundError:
            pass


#: Shared default instance (the operations are stateless).
DURABLE_FILE_OPS = DurableFileOps()
