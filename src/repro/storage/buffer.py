"""LRU buffer pool with IO accounting.

Every index structure in this repository (SWST's B+ trees, the R-trees
backing MV3R and the 3-D baseline) does all its page IO through a
:class:`BufferPool`.  The pool is where the paper's *node accesses* metric is
measured: each :meth:`fetch` and :meth:`write` increments the logical
counters regardless of whether the page was cached.
"""

from __future__ import annotations

from collections import OrderedDict

from .errors import PagerClosedError
from .pager import Pager
from .stats import IOStats

DEFAULT_CAPACITY = 256


class BufferPool:
    """Write-back LRU cache of pages on top of a :class:`Pager`.

    Args:
        pager: the underlying pager.
        capacity: maximum number of cached pages; least-recently-used dirty
            pages are written back on eviction.
        stats: optional shared :class:`IOStats`; a fresh one is created if
            omitted.
    """

    def __init__(self, pager: Pager, capacity: int = DEFAULT_CAPACITY,
                 stats: IOStats | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.pager = pager
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self._closed = False

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("buffer pool is closed")

    def _evict_if_needed(self) -> None:
        while len(self._cache) > self.capacity:
            victim, data = self._cache.popitem(last=False)
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.pager.write(victim, data)
                self.stats.physical_writes += 1

    # -- public API ----------------------------------------------------------

    def fetch(self, page_id: int) -> bytes:
        """Return the page contents, counting one logical read."""
        self._check_open()
        self.stats.logical_reads += 1
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        data = self.pager.read(page_id)
        self.stats.physical_reads += 1
        self._cache[page_id] = data
        self._evict_if_needed()
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Stage new page contents, counting one logical write."""
        self._check_open()
        if len(data) != self.page_size:
            raise ValueError(f"page data must be exactly {self.page_size} "
                             f"bytes, got {len(data)}")
        self.stats.logical_writes += 1
        self._cache[page_id] = bytes(data)
        self._cache.move_to_end(page_id)
        self._dirty.add(page_id)
        self._evict_if_needed()

    def allocate(self) -> int:
        """Allocate a fresh page (not yet cached)."""
        self._check_open()
        self.stats.allocations += 1
        return self.pager.allocate()

    def free(self, page_id: int) -> None:
        """Drop a page from the cache and return it to the pager free list."""
        self._check_open()
        self._cache.pop(page_id, None)
        self._dirty.discard(page_id)
        self.stats.frees += 1
        self.pager.free(page_id)

    def flush(self) -> None:
        """Write every dirty page back to the pager."""
        self._check_open()
        for page_id in sorted(self._dirty):
            self.pager.write(page_id, self._cache[page_id])
            self.stats.physical_writes += 1
        self._dirty.clear()

    def drop_cache(self) -> None:
        """Flush then empty the cache (used to make cold-cache measurements)."""
        self.flush()
        self._cache.clear()

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
