"""LRU buffer pool with IO accounting and a decoded-node object cache.

Every index structure in this repository (SWST's B+ trees, the R-trees
backing MV3R and the 3-D baseline) does all its page IO through a
:class:`BufferPool`.  The pool is where the paper's *node accesses* metric is
measured: each :meth:`fetch` and :meth:`write` increments the logical
counters regardless of whether the page was cached.

On top of the raw byte cache the pool keeps a second LRU of *decoded* node
objects (:meth:`fetch_node` / :meth:`write_node`).  Structures whose pages
are expensive to (de)serialise register a decode/encode pair per access and
get back the parsed object; serialisation of dirty nodes is deferred until
eviction or :meth:`flush`.  The logical counters are incremented exactly as
for the raw path, so the paper's node-access figures are unchanged — only
CPU work and *physical* IO differ.  See ``docs/internals.md`` ("Storage hot
path") for the coherence rules between the two caches.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from .errors import PagerClosedError
from .pager import Pager
from .stats import IOStats

DEFAULT_CAPACITY = 256


class _CachedNode:
    """One decoded-node cache slot: the object, its encoder, a dirty bit."""

    __slots__ = ("node", "encode", "dirty")

    def __init__(self, node: Any, encode: Callable[[Any], bytes] | None,
                 dirty: bool) -> None:
        self.node = node
        self.encode = encode
        self.dirty = dirty


class BufferPool:
    """Write-back LRU cache of pages on top of a :class:`Pager`.

    Args:
        pager: the underlying pager.
        capacity: maximum number of cached pages; least-recently-used dirty
            pages are written back on eviction.
        stats: optional shared :class:`IOStats`; a fresh one is created if
            omitted.
        node_capacity: maximum number of decoded nodes kept by the
            node-object cache; ``None`` (default) mirrors ``capacity``,
            ``0`` disables the node cache (every ``fetch_node`` re-parses,
            every ``write_node`` serialises eagerly — the pre-cache
            behaviour, kept for A/B benchmarking).

    Invariant: a page id is never dirty in both caches at once.  A
    ``write_node`` supersedes and drops any raw copy; a raw ``write``
    supersedes and drops any cached node; a raw ``fetch`` of a dirty node
    first demotes it to dirty bytes so both paths observe the same data.
    """

    def __init__(self, pager: Pager, capacity: int = DEFAULT_CAPACITY,
                 stats: IOStats | None = None,
                 node_capacity: int | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if node_capacity is not None and node_capacity < 0:
            raise ValueError(f"node_capacity must be >= 0, "
                             f"got {node_capacity}")
        self.pager = pager
        self.capacity = capacity
        self.node_capacity = capacity if node_capacity is None \
            else node_capacity
        self.stats = stats if stats is not None else IOStats()
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self._nodes: OrderedDict[int, _CachedNode] = OrderedDict()
        self._closed = False

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("buffer pool is closed")

    def _evict_if_needed(self) -> None:
        while len(self._cache) > self.capacity:
            victim, data = self._cache.popitem(last=False)
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.pager.write(victim, data)
                self.stats.physical_writes += 1

    def _evict_nodes_if_needed(self) -> None:
        while len(self._nodes) > self.node_capacity:
            victim, slot = self._nodes.popitem(last=False)
            if slot.dirty:
                self.pager.write(victim, slot.encode(slot.node))
                self.stats.node_serializations += 1
                self.stats.physical_writes += 1

    def _store_raw(self, page_id: int, data: bytes) -> None:
        """Stage raw bytes as dirty without logical accounting."""
        self._cache[page_id] = bytes(data)
        self._cache.move_to_end(page_id)
        self._dirty.add(page_id)
        self._evict_if_needed()

    def _demote_dirty_node(self, page_id: int) -> None:
        """Serialise a dirty cached node into the byte cache.

        Called before raw accesses so byte-level readers never observe a
        stale page; the node stays cached, now clean.
        """
        slot = self._nodes.get(page_id)
        if slot is not None and slot.dirty:
            slot.dirty = False
            self.stats.node_serializations += 1
            self._store_raw(page_id, slot.encode(slot.node))

    # -- public API ----------------------------------------------------------

    def fetch(self, page_id: int) -> bytes:
        """Return the page contents, counting one logical read."""
        self._check_open()
        self._demote_dirty_node(page_id)
        self.stats.logical_reads += 1
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        data = self.pager.read(page_id)
        self.stats.physical_reads += 1
        self._cache[page_id] = data
        self._evict_if_needed()
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Stage new page contents, counting one logical write."""
        self._check_open()
        if len(data) != self.page_size:
            raise ValueError(f"page data must be exactly {self.page_size} "
                             f"bytes, got {len(data)}")
        self.stats.logical_writes += 1
        # Raw bytes supersede any decoded copy of the page.
        self._nodes.pop(page_id, None)
        self._store_raw(page_id, data)

    def fetch_node(self, page_id: int,
                   decode: Callable[[bytes], Any]) -> Any:
        """Return the decoded node of a page, counting one logical read.

        On a node-cache hit the cached object is returned without touching
        the page bytes; on a miss the bytes are read (from the byte cache
        or the pager) and parsed with ``decode``.  The returned object is
        shared with the cache: callers that mutate it must publish the
        mutation with :meth:`write_node` before the next access.
        """
        self._check_open()
        self.stats.logical_reads += 1
        slot = self._nodes.get(page_id)
        if slot is not None:
            self._nodes.move_to_end(page_id)
            self.stats.node_cache_hits += 1
            return slot.node
        data = self._cache.get(page_id)
        if data is not None:
            self._cache.move_to_end(page_id)
        else:
            data = self.pager.read(page_id)
            self.stats.physical_reads += 1
        node = decode(data)
        self.stats.node_parses += 1
        if self.node_capacity:
            self._nodes[page_id] = _CachedNode(node, None, False)
            self._evict_nodes_if_needed()
        return node

    def write_node(self, page_id: int, node: Any,
                   encode: Callable[[Any], bytes]) -> None:
        """Stage a decoded node as the page's newest contents.

        Counts one logical write; serialisation via ``encode`` is deferred
        until the node is evicted, flushed, or demoted by a raw access.
        """
        self._check_open()
        self.stats.logical_writes += 1
        if not self.node_capacity:
            self._nodes.pop(page_id, None)
            data = encode(node)
            self.stats.node_serializations += 1
            if len(data) != self.page_size:
                raise ValueError(f"page data must be exactly "
                                 f"{self.page_size} bytes, got {len(data)}")
            self._store_raw(page_id, data)
            return
        # The node supersedes any raw copy (clean or dirty): the raw bytes
        # either predate this write or were serialised from this very
        # object, so dropping them loses nothing.
        self._cache.pop(page_id, None)
        self._dirty.discard(page_id)
        slot = self._nodes.get(page_id)
        if slot is not None:
            slot.node = node
            slot.encode = encode
            slot.dirty = True
            self._nodes.move_to_end(page_id)
        else:
            self._nodes[page_id] = _CachedNode(node, encode, True)
            self._evict_nodes_if_needed()

    def allocate(self) -> int:
        """Allocate a fresh page (not yet cached)."""
        self._check_open()
        self.stats.allocations += 1
        return self.pager.allocate()

    def free(self, page_id: int) -> None:
        """Drop a page from both caches and return it to the free list."""
        self._check_open()
        self._cache.pop(page_id, None)
        self._dirty.discard(page_id)
        self._nodes.pop(page_id, None)
        self.stats.frees += 1
        self.pager.free(page_id)

    def flush(self) -> None:
        """Write every dirty page (decoded or raw) back to the pager."""
        self._check_open()
        for page_id in sorted(pid for pid, slot in self._nodes.items()
                              if slot.dirty):
            slot = self._nodes[page_id]
            slot.dirty = False
            self.pager.write(page_id, slot.encode(slot.node))
            self.stats.node_serializations += 1
            self.stats.physical_writes += 1
        for page_id in sorted(self._dirty):
            self.pager.write(page_id, self._cache[page_id])
            self.stats.physical_writes += 1
        self._dirty.clear()

    def drop_cache(self) -> None:
        """Flush then empty both caches (for cold-cache measurements)."""
        self.flush()
        self._cache.clear()
        self._nodes.clear()

    def close(self) -> None:
        if not self._closed:
            try:
                self.flush()
            finally:
                self._closed = True

    def discard(self) -> None:
        """Close without flushing: dirty pages are dropped, not written.

        The crash-equivalent shutdown.  A warm worker closes its shard
        this way on purpose — its write-ahead log, not the page file, is
        the durable record between epoch commits, so flushing here would
        only smear uncommitted page mutations over the last committed
        state (exactly what recovery must then undo).
        """
        self._closed = True
        self._cache.clear()
        self._dirty.clear()
        self._nodes.clear()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
