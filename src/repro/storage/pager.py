"""Pager: page allocation and a persistent free list on top of a page device.

Layout:

* Page 0 is the header page::

      magic (8 bytes)  page_size (u32)  free_head (u64)  meta... (rest)

  The tail of the header page after the fixed fields is available to the
  owner as an opaque *meta blob* (SWST stores its tree catalog pointer
  there).
* Freed pages are chained through their first 8 bytes.

Header updates from ``allocate``/``free``/``meta`` are deferred: they set a
dirty flag and the header page is rewritten once per :meth:`Pager.sync` or
:meth:`Pager.close` rather than on every call.

The pager performs raw device IO only; caching and IO accounting live in
:class:`repro.storage.buffer.BufferPool`, which sits on top.
"""

from __future__ import annotations

import os
import struct

from .errors import CorruptPageFileError, PageError
from .page import (DEFAULT_PAGE_SIZE, FilePageDevice, MemoryPageDevice,
                   PageDevice)

_MAGIC = b"SWSTPGR1"
_HEADER = struct.Struct("<8sIQ")  # magic, page_size, free_head
_FREE_LINK = struct.Struct("<Q")

#: Path sentinel selecting the in-memory device.
MEMORY = ":memory:"


class Pager:
    """Allocate, free, read and write fixed-size pages.

    Args:
        path: file path, or :data:`MEMORY` for an in-memory device.
        page_size: page size in bytes (must match an existing file).
    """

    def __init__(self, path: str | os.PathLike[str] = MEMORY,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self._device: PageDevice
        if os.fspath(path) == MEMORY:
            self._device = MemoryPageDevice(page_size)
        else:
            self._device = FilePageDevice(path, page_size)
        self.page_size = self._device.page_size
        self.meta_capacity = self.page_size - _HEADER.size
        self._header_dirty = False
        self._closed = False
        if self._device.page_count() == 0:
            self._device.extend()  # header page
            self._free_head = 0
            self._meta = b""
            self._write_header()
        else:
            self._read_header()

    # -- header ------------------------------------------------------------

    def _write_header(self) -> None:
        fixed = _HEADER.pack(_MAGIC, self.page_size, self._free_head)
        body = self._meta.ljust(self.meta_capacity, b"\x00")
        self._device.write(0, fixed + body)
        self._header_dirty = False

    def _flush_header(self) -> None:
        """Write the header page if allocate/free/meta changed it.

        Header writes are deferred: ``allocate``/``free``/``meta`` only set
        a dirty flag, and the page is written once per :meth:`sync` /
        :meth:`close` instead of once per call.  In-memory state is always
        authoritative while the pager is open.
        """
        if self._header_dirty:
            self._write_header()

    def _read_header(self) -> None:
        raw = self._device.read(0)
        magic, page_size, free_head = _HEADER.unpack_from(raw)
        if magic != _MAGIC:
            raise CorruptPageFileError("bad magic in page file header")
        if page_size != self.page_size:
            raise CorruptPageFileError(
                f"file page size {page_size} != requested {self.page_size}")
        self._free_head = free_head
        self._meta = raw[_HEADER.size:].rstrip(b"\x00")

    @property
    def meta(self) -> bytes:
        """Opaque owner-controlled blob persisted in the header page."""
        return self._meta

    @meta.setter
    def meta(self, blob: bytes) -> None:
        if len(blob) > self.meta_capacity:
            raise ValueError(f"meta blob of {len(blob)} bytes exceeds "
                             f"capacity {self.meta_capacity}")
        self._meta = bytes(blob)
        self._header_dirty = True

    # -- page lifecycle ----------------------------------------------------

    def allocate(self) -> int:
        """Return the id of a fresh zeroed page (reusing freed pages)."""
        if self._free_head:
            page_id = self._free_head
            raw = self._device.read(page_id)
            (self._free_head,) = _FREE_LINK.unpack_from(raw)
            self._header_dirty = True
            self._device.write(page_id, b"\x00" * self.page_size)
            return page_id
        return self._device.extend()

    def free(self, page_id: int) -> None:
        """Return ``page_id`` to the free list."""
        if page_id == 0:
            raise PageError("cannot free the header page")
        link = _FREE_LINK.pack(self._free_head)
        self._device.write(page_id, link.ljust(self.page_size, b"\x00"))
        self._free_head = page_id
        self._header_dirty = True

    def read(self, page_id: int) -> bytes:
        if page_id == 0:
            raise PageError("page 0 is the pager header; use .meta")
        return self._device.read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        if page_id == 0:
            raise PageError("page 0 is the pager header; use .meta")
        self._device.write(page_id, data)

    def page_count(self) -> int:
        """Total pages in the device, including header and freed pages."""
        return self._device.page_count()

    def free_list_length(self) -> int:
        """Walk the free list and return its length (O(list) reads)."""
        count = 0
        head = self._free_head
        seen: set[int] = set()
        while head:
            if head in seen:
                raise CorruptPageFileError("cycle in free list")
            seen.add(head)
            count += 1
            (head,) = _FREE_LINK.unpack_from(self._device.read(head))
        return count

    def sync(self) -> None:
        self._flush_header()
        self._device.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_header()
        self._closed = True
        self._device.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
