"""Pager: page allocation and a persistent free list on top of a page device.

Format-v2 layout (the default for new files):

* Pages 0 and 1 are the two *header slots*.  Each holds::

      magic (8)  page_size (u32)  generation (u64)  page_count (u64)
      free_head (u64)  flags (u8)  meta_len (u32)  crc32 (u32)  meta...

  A commit writes the header to the slot holding the *older* generation,
  so the previous committed header survives a torn write; recovery picks
  the valid slot with the highest generation.  The tail after the fixed
  fields is available to the owner as an opaque *meta blob* (SWST stores
  its tree catalog pointer there).
* Freed pages are chained through their first 8 bytes.

Commit protocol: every device write between commits is stamped (in the
page trailer, see :mod:`repro.storage.page`) with ``generation + 1`` — the
generation of the *next* commit.  :meth:`sync` and :meth:`close` commit:
data is fsynced, the header (naming that generation) is written to the
older slot, and the file is fsynced again.  The first mutation of a
session first commits a header with the *dirty* flag, so recovery knows a
write window was open; :meth:`close` commits with the *clean* flag.

Recovery on open (format v2): pick the newest valid header slot; pages
beyond its committed ``page_count`` are uncommitted extends and are
truncated away; if the header is dirty (crashed session), every committed
page is checksum-verified and any page stamped with a generation newer
than the committed one — an in-place overwrite that never got committed —
raises :class:`CorruptPageFileError`.  A successful dirty recovery
commits a clean header so later opens skip the sweep.  Finally the free
list is walked (with cycle and range checks) into an in-memory freed-set,
which makes double frees detectable at :meth:`free` time.

Legacy format-v1 files (single in-place header on page 0, no checksums)
are detected by their magic and stay fully usable, without the
crash-safety guarantees.

The pager performs raw device IO only; caching and IO accounting live in
:class:`repro.storage.buffer.BufferPool`, which sits on top.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any

from .errors import CorruptPageFileError, PageError, PagerClosedError
from .page import (DEFAULT_PAGE_SIZE, FilePageDevice, MemoryPageDevice,
                   PageDevice)

_MAGIC_V1 = b"SWSTPGR1"
_MAGIC_V2 = b"SWSTPGR2"
_HEADER_V1 = struct.Struct("<8sIQ")  # magic, page_size, free_head
# magic, page_size, generation, page_count, free_head, flags, meta_len, crc
_HEADER_V2 = struct.Struct("<8sIQQQBII")
_FREE_LINK = struct.Struct("<Q")
_FLAG_CLEAN = 0x01

#: Path sentinel selecting the in-memory device.
MEMORY = ":memory:"


class Pager:
    """Allocate, free, read and write fixed-size pages.

    Args:
        path: file path, or :data:`MEMORY` for an in-memory device.
        page_size: page size in bytes (must match an existing file).
        device: pre-built page device to use instead of constructing one
            from ``path`` (e.g. a
            :class:`repro.storage.fault.FaultInjectingPageDevice`).
    """

    def __init__(self, path: str | os.PathLike[str] = MEMORY,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 device: PageDevice | None = None) -> None:
        self._device: PageDevice
        if device is not None:
            self._device = device
        elif os.fspath(path) == MEMORY:
            self._device = MemoryPageDevice(page_size)
        else:
            self._device = FilePageDevice(path, page_size)
        self.page_size = self._device.page_size
        self._closed = False
        self._header_dirty = False   # legacy v1 deferred-header flag
        self._mutated = False        # any mutation since the last v2 commit
        self._marked = False         # dirty header committed this session
        self._freed: set[int] = set()
        self._meta = b""
        self._free_head = 0
        self._generation = 0
        self._slot = 1
        try:
            if self._device.page_count() == 0:
                self._init_fresh()
            else:
                self._open_existing()
        except BaseException:
            self._closed = True
            self._device.close()
            raise

    # -- open / create -------------------------------------------------------

    @property
    def _checksums(self) -> bool:
        return getattr(self._device, "checksums", False)

    @property
    def first_data_page(self) -> int:
        """Lowest page id available to callers (header pages come first)."""
        return 2 if self.format_version == 2 else 1

    @property
    def meta_capacity(self) -> int:
        header = _HEADER_V2 if self.format_version == 2 else _HEADER_V1
        return self.page_size - header.size

    @property
    def generation(self) -> int:
        """Generation of the last committed header (0 for format v1)."""
        return self._generation

    @property
    def session_marked(self) -> bool:
        """True once this session's dirty header has been committed.

        Exactly one dirty-mark commit happens per pager session (at the
        first mutation after open); knowing whether it already fired lets
        a caller predict the generation a ``sync()`` commit will reach —
        the sharded engine's two-phase epoch commit records that
        expectation in its PREPARE record.
        """
        return self._marked

    def _init_fresh(self) -> None:
        self.format_version = 2
        if self._checksums:
            self._device.set_write_generation(1)
        self._device.extend()  # header slot 0
        self._device.extend()  # header slot 1
        self._commit_header(clean=False)
        self._marked = True

    def _open_existing(self) -> None:
        if self._checksums:
            self._open_v2()
            return
        raw = self._device.read(0)
        magic = raw[:8]
        if magic == _MAGIC_V2:
            self.format_version = 2
            self._open_v2()
        elif magic == _MAGIC_V1:
            self.format_version = 1
            self._read_header_v1(raw)
            self._load_free_list()
        else:
            raise CorruptPageFileError("bad magic in page file header")

    def _open_v2(self) -> None:
        self.format_version = 2
        slots = [self._parse_header_slot(slot) for slot in (0, 1)]
        valid = [header for header in slots if header is not None]
        if not valid:
            raise CorruptPageFileError(
                "neither header slot holds a valid committed header")
        best = max(valid, key=lambda header: header["generation"])
        self._slot = best["slot"]
        self._generation = best["generation"]
        self._free_head = best["free_head"]
        self._meta = best["meta"]
        clean = bool(best["flags"] & _FLAG_CLEAN)
        committed = best["page_count"]
        present = self._device.page_count()
        if present < committed:
            raise CorruptPageFileError(
                f"file truncated: {present} pages on disk, "
                f"{committed} committed")
        if present > committed:
            # Uncommitted extends past the last commit; drop them.
            self._device.truncate(committed)
        if self._checksums:
            self._device.set_write_generation(self._generation + 1)
            if not clean:
                self._recovery_sweep(committed)
        self._load_free_list()
        if not clean and self._checksums:
            # The sweep proved the file is byte-exact at this generation;
            # commit a clean header so later opens skip it.
            self._commit_header(clean=True)

    def _parse_header_slot(self, slot: int) -> dict[str, Any] | None:
        try:
            raw = self._device.read(slot)
        except (CorruptPageFileError, PageError):
            return None
        try:
            (magic, page_size, generation, page_count, free_head, flags,
             meta_len, crc) = _HEADER_V2.unpack_from(raw)
        except struct.error:
            return None
        if magic != _MAGIC_V2 or page_size != self.page_size:
            return None
        if meta_len > len(raw) - _HEADER_V2.size:
            return None
        meta = raw[_HEADER_V2.size:_HEADER_V2.size + meta_len]
        probe = _HEADER_V2.pack(magic, page_size, generation, page_count,
                                free_head, flags, meta_len, 0)
        if zlib.crc32(probe + meta) != crc:
            return None
        return {"slot": slot, "generation": generation,
                "page_count": page_count, "free_head": free_head,
                "flags": flags, "meta": meta}

    def _recovery_sweep(self, committed_pages: int) -> None:
        """Full verify after an unclean shutdown.

        Every committed page must pass its checksum and carry a write
        generation no newer than the committed header — a newer stamp is
        an in-place overwrite from the crashed write window, which means
        the committed snapshot is gone.
        """
        for page_id in range(2, committed_pages):
            generation = self._device.check_page(page_id)
            if generation > self._generation:
                raise CorruptPageFileError(
                    f"page {page_id} holds uncommitted data from "
                    f"generation {generation} (committed "
                    f"{self._generation}); the last committed state did "
                    f"not survive the crash")

    def _read_header_v1(self, raw: bytes) -> None:
        magic, page_size, free_head = _HEADER_V1.unpack_from(raw)
        if page_size != self.page_size:
            raise CorruptPageFileError(
                f"file page size {page_size} != requested {self.page_size}")
        self._free_head = free_head
        self._meta = raw[_HEADER_V1.size:].rstrip(b"\x00")

    def _load_free_list(self) -> None:
        """Walk the on-disk free list into the in-memory freed-set.

        Validates every link (range, cycles) so a corrupt chain is caught
        at open time instead of corrupting allocations later.
        """
        seen: set[int] = set()
        head = self._free_head
        while head:
            if head in seen:
                raise CorruptPageFileError("cycle in free list")
            if not self.first_data_page <= head < self._device.page_count():
                raise CorruptPageFileError(
                    f"free list links to invalid page {head}")
            seen.add(head)
            (head,) = _FREE_LINK.unpack_from(self._device.read(head))
        self._freed = seen

    # -- header commits ------------------------------------------------------

    def _commit_header(self, clean: bool) -> None:
        """Atomically publish the current state (format v2).

        Data is fsynced first, then the header naming it is written to the
        slot holding the older generation and fsynced in turn, so a torn
        header write can only lose the *new* commit, never the old one.
        """
        generation = self._generation + 1
        flags = _FLAG_CLEAN if clean else 0
        probe = _HEADER_V2.pack(_MAGIC_V2, self.page_size, generation,
                                self._device.page_count(), self._free_head,
                                flags, len(self._meta), 0)
        crc = zlib.crc32(probe + self._meta)
        fixed = _HEADER_V2.pack(_MAGIC_V2, self.page_size, generation,
                                self._device.page_count(), self._free_head,
                                flags, len(self._meta), crc)
        page = (fixed + self._meta).ljust(self.page_size, b"\x00")
        slot = 1 - self._slot
        self._device.sync()
        self._device.write(slot, page)
        self._device.sync()
        self._slot = slot
        self._generation = generation
        self._mutated = False
        if self._checksums:
            self._device.set_write_generation(self._generation + 1)

    def _ensure_marked(self) -> None:
        """Commit a dirty header before the session's first mutation."""
        if self.format_version == 2 and not self._marked:
            self._marked = True
            self._commit_header(clean=False)

    def _write_header_v1(self) -> None:
        fixed = _HEADER_V1.pack(_MAGIC_V1, self.page_size, self._free_head)
        body = self._meta.ljust(self.meta_capacity, b"\x00")
        self._device.write(0, fixed + body)
        self._header_dirty = False

    # -- meta ----------------------------------------------------------------

    @property
    def meta(self) -> bytes:
        """Opaque owner-controlled blob persisted in the header page."""
        self._check_open()
        return self._meta

    @meta.setter
    def meta(self, blob: bytes) -> None:
        self._check_open()
        if len(blob) > self.meta_capacity:
            raise ValueError(f"meta blob of {len(blob)} bytes exceeds "
                             f"capacity {self.meta_capacity}")
        self._ensure_marked()
        self._meta = bytes(blob)
        self._header_dirty = True
        self._mutated = True

    # -- page lifecycle ------------------------------------------------------

    def allocate(self) -> int:
        """Return the id of a fresh zeroed page (reusing freed pages)."""
        self._check_open()
        self._ensure_marked()
        self._mutated = True
        if self._free_head:
            page_id = self._free_head
            if page_id not in self._freed:
                raise CorruptPageFileError(
                    f"free list head {page_id} is not a freed page")
            raw = self._device.read(page_id)
            (next_free,) = _FREE_LINK.unpack_from(raw)
            if next_free and next_free not in self._freed:
                raise CorruptPageFileError(
                    f"free page {page_id} links to non-free page "
                    f"{next_free}")
            self._free_head = next_free
            self._freed.discard(page_id)
            self._header_dirty = True
            self._device.write(page_id, b"\x00" * self.page_size)
            return page_id
        return self._device.extend()

    def free(self, page_id: int) -> None:
        """Return ``page_id`` to the free list.

        Raises :class:`PageError` on a header page, an out-of-range id, or
        a page that is already free (double free).
        """
        self._check_open()
        if page_id < self.first_data_page:
            raise PageError("cannot free the header page")
        if page_id >= self._device.page_count():
            raise PageError(f"page id {page_id} out of range "
                            f"[0, {self._device.page_count()})")
        if page_id in self._freed:
            raise PageError(f"double free of page {page_id}")
        self._ensure_marked()
        link = _FREE_LINK.pack(self._free_head)
        self._device.write(page_id, link.ljust(self.page_size, b"\x00"))
        self._free_head = page_id
        self._freed.add(page_id)
        self._header_dirty = True
        self._mutated = True

    def page_is_free(self, page_id: int) -> bool:
        """True if ``page_id`` is currently on the free list."""
        self._check_open()
        return page_id in self._freed

    def read(self, page_id: int) -> bytes:
        self._check_open()
        if page_id < self.first_data_page:
            raise PageError(f"page {page_id} is a pager header page; "
                            f"use .meta")
        return self._device.read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        self._check_open()
        if page_id < self.first_data_page:
            raise PageError(f"page {page_id} is a pager header page; "
                            f"use .meta")
        self._ensure_marked()
        self._mutated = True
        self._device.write(page_id, data)

    def page_count(self) -> int:
        """Total pages in the device, including header and freed pages."""
        self._check_open()
        return self._device.page_count()

    def free_list_length(self) -> int:
        """Walk the free list and return its length (O(list) reads)."""
        self._check_open()
        count = 0
        head = self._free_head
        seen: set[int] = set()
        while head:
            if head in seen:
                raise CorruptPageFileError("cycle in free list")
            seen.add(head)
            count += 1
            (head,) = _FREE_LINK.unpack_from(self._device.read(head))
        return count

    def sync(self) -> None:
        self._check_open()
        if self.format_version == 2:
            if self._mutated or self._header_dirty:
                self._commit_header(clean=False)
            else:
                self._device.sync()
        else:
            if self._header_dirty:
                self._write_header_v1()
            self._device.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self.format_version == 2:
                if self._marked:
                    self._commit_header(clean=True)
            elif self._header_dirty:
                self._write_header_v1()
        finally:
            self._device.close()

    def abort(self) -> None:
        """Close without committing: the header keeps its last durable state.

        The crash-equivalent counterpart of :meth:`close`.  If the session
        marked the header dirty, the file is left exactly as a kill would
        leave it — recovery-on-open (or a WAL replay above it) is the
        only way forward, which is precisely the discipline warm workers
        rely on.
        """
        if self._closed:
            return
        self._closed = True
        self._device.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PagerClosedError("pager is closed")

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
