"""Disk substrate: paged files, free lists, buffer pool, IO accounting.

This package is the "disk" every index in the repository runs on.  The
paper's primary cost metric — node accesses — is counted at the
:class:`BufferPool` boundary.  Crash safety lives below it: checksummed
pages (:mod:`repro.storage.page`), the dual-slot header commit protocol
(:mod:`repro.storage.pager`), durable small-file operations for
directory-level commits (:mod:`repro.storage.fileops`), fault injection
for testing all of it (:mod:`repro.storage.fault`) and the offline
integrity sweep (:mod:`repro.storage.scrub`).
"""

from .buffer import DEFAULT_CAPACITY, BufferPool
from .errors import (ChecksumError, CorruptPageFileError,
                     NoCatalogError, PageError, PagerClosedError,
                     StorageError, TornWriteError)
from .fault import (FaultInjectingFileOps, FaultInjectingPageDevice,
                    InjectedFault, crash_devices, per_path_device_factory)
from .fileops import DURABLE_FILE_OPS, DurableFileOps, FileOps
from .page import DEFAULT_PAGE_SIZE, FilePageDevice, MemoryPageDevice
from .pager import MEMORY, Pager
from .scrub import (ScrubReport, probe_committed_generation,
                    probe_page_file, scrub_page_file)
from .stats import IOStats, StatsRecorder

__all__ = [
    "BufferPool",
    "ChecksumError",
    "CorruptPageFileError",
    "DEFAULT_CAPACITY",
    "DEFAULT_PAGE_SIZE",
    "DURABLE_FILE_OPS",
    "DurableFileOps",
    "FaultInjectingFileOps",
    "FaultInjectingPageDevice",
    "FileOps",
    "FilePageDevice",
    "IOStats",
    "InjectedFault",
    "MEMORY",
    "MemoryPageDevice",
    "NoCatalogError",
    "PageError",
    "Pager",
    "PagerClosedError",
    "ScrubReport",
    "StatsRecorder",
    "StorageError",
    "TornWriteError",
    "crash_devices",
    "per_path_device_factory",
    "probe_committed_generation",
    "probe_page_file",
    "scrub_page_file",
]
