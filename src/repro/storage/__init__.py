"""Disk substrate: paged files, free lists, buffer pool, IO accounting.

This package is the "disk" every index in the repository runs on.  The
paper's primary cost metric — node accesses — is counted at the
:class:`BufferPool` boundary.
"""

from .buffer import DEFAULT_CAPACITY, BufferPool
from .errors import (CorruptPageFileError, PageError, PagerClosedError,
                     StorageError)
from .page import DEFAULT_PAGE_SIZE, FilePageDevice, MemoryPageDevice
from .pager import MEMORY, Pager
from .stats import IOStats, StatsRecorder

__all__ = [
    "BufferPool",
    "CorruptPageFileError",
    "DEFAULT_CAPACITY",
    "DEFAULT_PAGE_SIZE",
    "FilePageDevice",
    "IOStats",
    "MEMORY",
    "MemoryPageDevice",
    "PageError",
    "Pager",
    "PagerClosedError",
    "StatsRecorder",
    "StorageError",
]
