"""R005 — executor task callables must not mutate closed-over state.

The scatter-gather fan-out (PR 3) hands callables to
``executor.map``/``submit``; with the threaded executor those run
concurrently against live shards, so a task that *writes* something it
closed over (an accumulator list, an engine attribute) is a data race
the serial executor will never show.  Tasks must return their results
and let the caller merge — reading closed-over state is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._util import chain_root

_SUBMIT_METHODS = frozenset({"map", "submit"})
#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "write", "put",
})


def _local_names(func: ast.Lambda | ast.FunctionDef) -> set[str]:
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    if isinstance(func, ast.FunctionDef):
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.Nonlocal, ast.Global)):
                names.difference_update(node.names)
    return names


def _mutations(func: ast.Lambda | ast.FunctionDef
               ) -> Iterator[tuple[int, int, str]]:
    """(line, col, description) for each shared-state write in ``func``."""
    local = _local_names(func)
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                kind = ("nonlocal" if isinstance(node, ast.Nonlocal)
                        else "global")
                yield (node.lineno, node.col_offset,
                       f"{kind} declaration {', '.join(node.names)}")
            elif isinstance(node, ast.NamedExpr) and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id not in local:
                yield (node.lineno, node.col_offset,
                       f"walrus assignment to closed-over "
                       f"{node.target.id!r}")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = chain_root(target)
                        if root is not None and root.id not in local:
                            yield (node.lineno, node.col_offset,
                                   f"store into closed-over "
                                   f"{root.id!r}")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS:
                root = chain_root(node.func.value)
                if root is not None and root.id not in local:
                    yield (node.lineno, node.col_offset,
                           f"mutating call .{node.func.attr}() on "
                           f"closed-over {root.id!r}")


@register
class ExecutorClosures(Rule):
    rule_id = "R005"
    title = "executor tasks must not mutate closed-over state"
    rationale = ("map/submit callables run concurrently under the "
                 "threaded executor; writes to closed-over state race — "
                 "return results and merge in the caller")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and node.args):
                continue
            task = node.args[0]
            func = self._resolve_callable(ctx, node, task)
            if func is None:
                continue
            for line, col, description in _mutations(func):
                yield self.finding(
                    ctx, line, col,
                    f"executor task passed to .{node.func.attr}() "
                    f"mutates shared state ({description}) — data race "
                    f"under the threaded executor")

    def _resolve_callable(self, ctx: FileContext, call: ast.Call,
                          task: ast.expr
                          ) -> ast.Lambda | ast.FunctionDef | None:
        if isinstance(task, ast.Lambda):
            return task
        if isinstance(task, ast.Name):
            # A nested def passed by name from the same scope.
            scope = ctx.enclosing_scope(call)
            body = getattr(scope, "body", [])
            for stmt in body if isinstance(body, list) else []:
                if isinstance(stmt, ast.FunctionDef) and \
                        stmt.name == task.id:
                    return stmt
        return None
