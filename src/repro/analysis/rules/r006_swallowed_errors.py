"""R006 — no broad ``except`` that swallows crash-safety errors.

``ChecksumError`` and ``TornWriteError`` are how the storage layer
reports on-disk corruption (PR 2); a bare ``except:`` or a silent
``except Exception:`` converts detected corruption into silent data
loss.  A broad handler is accepted only when it visibly propagates or
records the error: it re-raises, or it binds the exception
(``as exc``) and actually uses the name (logging, wrapping, stashing
for later re-raise).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_catch(handler: ast.ExceptHandler) -> str | None:
    """The broad class name this handler catches, or None if narrow."""
    if handler.type is None:
        return "bare except"
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return node.id
    return None


@register
class SwallowedErrors(Rule):
    rule_id = "R006"
    title = "no bare/broad except swallowing ChecksumError/TornWriteError"
    rationale = ("a silent broad handler turns detected on-disk "
                 "corruption into silent data loss; re-raise, narrow the "
                 "types, or use the bound exception")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_catch(node)
            if broad is None:
                continue
            if any(isinstance(sub, ast.Raise)
                   for stmt in node.body for sub in ast.walk(stmt)):
                continue
            if node.name is not None and any(
                    isinstance(sub, ast.Name) and sub.id == node.name
                    for stmt in node.body for sub in ast.walk(stmt)):
                continue
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                f"{broad} handler swallows ChecksumError/TornWriteError "
                f"— narrow the exception types, re-raise, or handle the "
                f"bound exception")
