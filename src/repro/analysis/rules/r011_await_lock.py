"""R011 — no ``await`` while a synchronous lock is held in a coroutine.

A sync ``threading.Lock`` held across an ``await`` is the event-loop
version of holding a spinlock across a context switch: the coroutine
suspends with the lock held, the loop schedules other tasks, and any
pool thread (or other coroutine resuming on a different tick) that
touches the same lock now blocks for an unbounded number of loop
iterations — or deadlocks outright if the lock's release depends on a
task parked behind it.  The facade's design keeps sync locks strictly
inside pool-thread closures (``AsyncEngine._run`` takes the mutex *on
the pool thread*); coroutine bodies coordinate with the
:class:`~repro.serve.gate.SlideGate` (``async with gate.read()``),
which is built to suspend.

Flagged: an ``await`` anywhere inside a synchronous ``with`` whose
context expression is a sync lock (name heuristics shared with R008),
in any ``async def`` under ``serve/`` or ``engine/``.  Nested
``def``/``lambda`` bodies are skipped — code inside them does not run
while the ``with`` frame holds the lock.  ``async with`` on the gate
is the sanctioned pattern and never matches.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._locks import direct_region, with_lock_items

_SCOPE = frozenset({"serve", "engine"})


def _awaits_under(node: ast.With) -> Iterator[ast.Await]:
    """Await expressions in the with-body that run in this frame."""
    for stmt in node.body:
        stack: list[ast.AST] = [stmt]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Await):
                yield current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(current))


@register
class AwaitHoldingLock(Rule):
    rule_id = "R011"
    title = "no await while a synchronous lock is held in a coroutine"
    rationale = ("suspending with a sync lock held blocks pool threads "
                 "for unbounded loop iterations and can deadlock the "
                 "serving plane; sync locks belong inside pool-thread "
                 "closures, coroutines coordinate via the gate")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage not in _SCOPE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for stmt in direct_region(node):
                if not isinstance(stmt, ast.With):
                    continue
                tokens = [token for token, _ in with_lock_items(stmt)
                          if token is not None]
                if not tokens:
                    continue
                for awaited in _awaits_under(stmt):
                    yield self.finding(
                        ctx, awaited.lineno, awaited.col_offset,
                        f"await while holding sync lock "
                        f"{tokens[0]!r} — the coroutine suspends with "
                        f"the lock held; move the lock into the pool-"
                        f"thread closure or use the gate")
