"""R010 — durable-write paths follow the fsync discipline.

The crash-consistency story (PR 2's recovery, PR 5's two-phase epoch
commit, PR 7's WAL acknowledgement barrier) rests on a small set of
filesystem orderings, all routed through the
:class:`~repro.storage.fileops.FileOps` seam:

* **tmp -> fsync -> replace -> dirfsync** for every metadata file: the
  bytes are durable before the name flips (``write_file`` fsyncs by
  contract), the flip is atomic (``replace``), and the flip itself is
  durable (``fsync_dir``).  A ``write_file`` straight onto the final
  path, or a ``replace``/``unlink`` with no directory fsync after it,
  silently re-opens the torn-state window ALICE-style checkers exist
  to catch.
* **directory-entry mutation -> dirfsync** for the structural ops the
  reshard/snapshot machinery (PR 10) leans on: ``copy_file``,
  ``mkdir`` and ``rmdir`` each create or remove a directory entry, and
  until the parent directory is fsynced a crash can forget the entry —
  a generation directory or snapshot copy that silently vanishes on
  reboot is exactly the "mixed generation" state the reshard crash
  matrix rules out.
* **append -> fsync before acknowledgement** for the WAL: a worker may
  only ack a batch after ``fsync_file`` (group commit); an
  ``append_file`` with no fsync on the path to the return, or a
  ``WalWriter.log`` with no ``commit``, can acknowledge a write that a
  crash then forgets — exactly the redelivery contract violation the
  worker crash matrix exists to rule out.

Checks are per durable-write function, ordered by source position, but
*interprocedural in the satisfying direction*: a later call to a
helper whose transitive callees perform the required fsync counts —
the common ``commit(); self._finish_cleanup()`` shape stays clean.
Receivers are matched by name (``fops``/``ops``/``file_ops`` and
``wal``/``writer``), so delegating wrappers (``self._inner.replace``)
and raw ``os`` calls (the seam's own implementation) stay out of
scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import ClassInfo, FunctionInfo, ProjectContext
from ..findings import Finding
from ..registry import Rule, register
from ._util import name_tokens

_SCOPE = frozenset({"storage", "engine", "core"})

_FOPS_RECEIVERS = frozenset({"fops", "ops", "fileops", "file_ops"})
_FOPS_OPS = frozenset({"write_file", "append_file", "fsync_file",
                       "fsync_dir", "truncate_file", "replace", "unlink",
                       "copy_file", "mkdir", "rmdir"})
_WAL_RECEIVERS = frozenset({"wal", "writer", "walwriter", "wal_writer"})


def _fops_receiver(node: ast.AST) -> bool:
    tokens = name_tokens(node)
    return bool(tokens) and tokens[-1] in _FOPS_RECEIVERS


def _wal_receiver(node: ast.AST) -> bool:
    tokens = name_tokens(node)
    return bool(tokens) and (tokens[-1] in _WAL_RECEIVERS
                             or tokens[-1].endswith("wal"))


def _fops_calls(fn: FunctionInfo) -> list[tuple[str, ast.Call]]:
    """``(op, call)`` pairs for FileOps/WAL calls in ``fn``'s own frame,
    in source order."""
    found: list[tuple[str, ast.Call]] = []
    for call in fn.direct_calls:
        if not isinstance(call.func, ast.Attribute):
            continue
        attr = call.func.attr
        if attr in _FOPS_OPS and _fops_receiver(call.func.value):
            found.append((attr, call))
        elif attr in ("log", "commit") and _wal_receiver(call.func.value):
            found.append((f"wal.{attr}", call))
    found.sort(key=lambda pair: (pair[1].lineno, pair[1].col_offset))
    return found


def _has_tmp_target(call: ast.Call) -> bool:
    """True if the write's destination looks like a temp file."""
    if not call.args:
        return False
    for node in ast.walk(call.args[0]):
        if isinstance(node, ast.Name) and "tmp" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "tmp" in node.attr.lower():
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and "tmp" in node.value.lower():
            return True
    return False


@register
class FsyncDiscipline(Rule):
    rule_id = "R010"
    title = "durable writes follow tmp→fsync→replace→dirfsync; WAL " \
            "appends reach fsync before acknowledgement"
    rationale = ("a rename or unlink that is never made durable, or a "
                 "WAL append acked before its fsync, re-opens the torn-"
                 "state windows the crash matrices exist to rule out")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        ops_of = self._transitive_ops(project)
        for fn in project.iter_functions():
            if fn.subpackage not in _SCOPE:
                continue
            yield from self._check_function(project, fn, ops_of)

    # -- transitive op sets ------------------------------------------------

    def _transitive_ops(self, project: ProjectContext
                        ) -> dict[FunctionInfo, set[str]]:
        """Which FileOps/WAL ops each function performs, transitively."""
        direct: dict[FunctionInfo, set[str]] = {}
        callees: dict[FunctionInfo, list[FunctionInfo]] = {}
        for fn in project.iter_functions():
            direct[fn] = {op for op, _ in _fops_calls(fn)}
            targets: list[FunctionInfo] = list(fn.nested)
            for call in fn.direct_calls:
                resolved = project.resolve_call(fn, call)
                if isinstance(resolved, ClassInfo):
                    resolved = resolved.methods.get("__init__")
                if isinstance(resolved, FunctionInfo):
                    targets.append(resolved)
            callees[fn] = targets
        changed = True
        while changed:
            changed = False
            for fn, targets in callees.items():
                mine = direct[fn]
                before = len(mine)
                for target in targets:
                    mine |= direct.get(target, set())
                if len(mine) != before:
                    changed = True
        return direct

    # -- per-function checks -----------------------------------------------

    def _check_function(self, project: ProjectContext, fn: FunctionInfo,
                        ops_of: dict[FunctionInfo, set[str]]
                        ) -> Iterator[Finding]:
        calls = _fops_calls(fn)
        if not calls:
            return

        def later_ops(after: ast.Call) -> set[str]:
            """Ops performed at or after ``after``'s position, in this
            frame or inside any later-called helper."""
            position = (after.lineno, after.col_offset)
            found = {op for op, call in calls
                     if (call.lineno, call.col_offset) > position}
            for call in fn.direct_calls:
                if (call.lineno, call.col_offset) <= position:
                    continue
                resolved = project.resolve_call(fn, call)
                if isinstance(resolved, ClassInfo):
                    resolved = resolved.methods.get("__init__")
                if isinstance(resolved, FunctionInfo):
                    found |= ops_of.get(resolved, set())
            return found

        for op, call in calls:
            if op == "write_file" and not _has_tmp_target(call) \
                    and "replace" not in later_ops(call):
                yield self._site(fn, call,
                                 "durable write lands on its final path "
                                 "— write a tmp file and os.replace it "
                                 "(tmp→fsync→replace→dirfsync)")
            elif op in ("replace", "unlink") \
                    and "fsync_dir" not in later_ops(call):
                yield self._site(fn, call,
                                 f".{op}() never followed by a directory "
                                 f"fsync — the rename/removal is not "
                                 f"durable across a crash")
            elif op in ("copy_file", "mkdir", "rmdir") \
                    and "fsync_dir" not in later_ops(call):
                yield self._site(fn, call,
                                 f".{op}() never followed by a directory "
                                 f"fsync — the new or removed directory "
                                 f"entry can vanish across a crash")
            elif op == "append_file" \
                    and "fsync_file" not in later_ops(call):
                yield self._site(fn, call,
                                 "WAL append with no fsync_file barrier "
                                 "before return — an acknowledged write "
                                 "could vanish in a crash")
            elif op == "wal.log" and "wal.commit" not in later_ops(call):
                yield self._site(fn, call,
                                 "WAL .log() with no .commit() on the "
                                 "path to acknowledgement — the group-"
                                 "commit fsync is the durability barrier")

    def _site(self, fn: FunctionInfo, call: ast.Call,
              message: str) -> Finding:
        return Finding(path=fn.ctx.path, line=call.lineno,
                       col=call.col_offset, rule_id=self.rule_id,
                       message=message)
