"""R004 — resource acquisitions must be lifecycle-managed.

PR 2 made init/close chains exception-safe (the suite runs under
``-W error::ResourceWarning``); this rule keeps new call sites honest.
An acquisition — ``open(...)``, a pager/device/index/engine constructor,
``resolve_executor(...)`` — must be one of:

* the context expression of a ``with`` (directly or via
  ``contextlib.closing``),
* registered on an ``ExitStack`` (``enter_context``/``callback``/
  ``push``),
* returned directly to the caller (ownership transfer),
* assigned to an attribute or container slot (the owner's ``close``
  manages it),
* assigned to a name that some ``finally`` or ``except`` block in the
  same function ``.close()``s,
* inside a ``try`` whose handler/finally performs cleanup (a ``close``/
  ``abandon`` call) and re-raises.

Anything else leaks the handle on the exception path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._util import callee_simple_name, chain_root

#: Constructors/factories whose result owns an OS resource (file handle,
#: worker pool) or a dirty buffer that must be flushed.
_ACQUIRER_NAMES = frozenset({
    "open",
    "Pager", "FilePageDevice", "MemoryPageDevice", "BufferPool",
    "FaultInjectingPageDevice",
    "SWSTIndex", "ShardedEngine", "WorkerEngine", "MV3RTree",
    "AsyncEngine",
    "resolve_executor",
})
_ACQUIRER_SUFFIX = "Executor"
_STACK_METHODS = frozenset({"enter_context", "callback", "push", "closing"})
_CLEANUP_HINTS = ("close", "abandon", "release", "shutdown")


def _is_acquisition(call: ast.Call) -> bool:
    name = callee_simple_name(call)
    if name is None:
        return False
    if name in _ACQUIRER_NAMES or name.endswith(_ACQUIRER_SUFFIX):
        return True
    # Classmethod constructors: SWSTIndex.open(...), ShardedEngine.open(...)
    if name == "open" and isinstance(call.func, ast.Attribute):
        root = chain_root(call.func.value)
        return root is not None and root.id in _ACQUIRER_NAMES
    return False


def _closed_names(scope: ast.AST) -> set[str]:
    """Names ``n`` with a cleanup-path ``n.close()`` or ExitStack
    registration anywhere in ``scope``."""
    closed: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            cleanup_bodies = list(node.finalbody)
            for handler in node.handlers:
                cleanup_bodies.extend(handler.body)
            for stmt in cleanup_bodies:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and \
                            isinstance(sub.func, ast.Attribute) and \
                            sub.func.attr == "close" and \
                            isinstance(sub.func.value, ast.Name):
                        closed.add(sub.func.value.id)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _STACK_METHODS:
            for arg in node.args:
                root = chain_root(arg)
                if root is not None:
                    closed.add(root.id)
    return closed


def _has_cleanup_try(ctx: FileContext, node: ast.AST) -> bool:
    """Is ``node`` inside a try whose handler/finally cleans up and
    (for handlers) re-raises?"""
    current: ast.AST = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.Try):
            if current in ancestor.body:
                if _cleanup_calls(ancestor.finalbody):
                    return True
                for handler in ancestor.handlers:
                    raises = any(isinstance(sub, ast.Raise)
                                 for stmt in handler.body
                                 for sub in ast.walk(stmt))
                    if raises and _cleanup_calls(handler.body):
                        return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            break
        current = ancestor
    return False


def _cleanup_calls(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                name = callee_simple_name(sub)
                if name is not None and \
                        any(h in name.lower() for h in _CLEANUP_HINTS):
                    return True
    return False


@register
class ResourceGuard(Rule):
    rule_id = "R004"
    title = "resource acquisitions context-managed or try/finally-guarded"
    rationale = ("an unguarded acquisition leaks its file handle or "
                 "worker pool on the exception path (suite runs under "
                 "-W error::ResourceWarning)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_acquisition(node)):
                continue
            if self._is_guarded(ctx, node):
                continue
            name = callee_simple_name(node)
            yield self.finding(
                ctx, node.lineno, node.col_offset,
                f"acquisition {name}(...) is not context-managed, "
                f"try/finally-guarded, or returned — leaks on the "
                f"exception path")

    def _is_guarded(self, ctx: FileContext, call: ast.Call) -> bool:
        parent = ctx.parent(call)
        # with acquire(...) as x:  /  closing(acquire(...))
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Call):
            wrapper = callee_simple_name(parent)
            if wrapper in _STACK_METHODS:
                return True
        statement = ctx.statement_of(call)
        # return acquire(...) — ownership transfers to the caller.
        if isinstance(statement, ast.Return):
            return True
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (statement.targets
                       if isinstance(statement, ast.Assign)
                       else [statement.target])
            scope = ctx.enclosing_scope(call)
            closed = _closed_names(scope)
            for target in targets:
                # self.device = acquire(...) / shards[i] = acquire(...):
                # the owning object's close() manages it.
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
                if isinstance(target, ast.Name) and target.id in closed:
                    return True
        # Constructed inside a try whose cleanup path closes/abandons.
        return _has_cleanup_try(ctx, call)
