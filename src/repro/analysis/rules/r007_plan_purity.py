"""R007 — compiled query plans are immutable after construction.

A :class:`~repro.core.plan.QueryPlan` is shared: between the queries
that hit the plan cache, between every shard of a
:class:`~repro.engine.ShardedEngine` fan-out (including process workers
it is pickled to), and between retry attempts of a failed shard task.
Mutating one in place — even "harmlessly" annotating it — is therefore
a cross-query correctness bug and, under the threaded executor, a data
race.  The frozen dataclass stops attribute rebinding at runtime, but
not mutation of its container fields (``column_of``, ``by_tree``); this
rule stops both statically across ``core/`` and ``engine/``.

Flagged: attribute/subscript stores, augmented assignments, deletions
and mutator-method calls (``update``, ``append``, ``clear``, ...) on
any name chain rooted at or passing through ``plan`` / ``*_plan``.
Rebinding a plain local (``plan = other_plan``) is fine — that replaces
the reference, not the shared object.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._util import name_tokens

_CHECKED_SUBPACKAGES = frozenset({"core", "engine"})
#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def _is_plan_token(token: str) -> bool:
    return token == "plan" or token.endswith("_plan")


def _is_plan_chain(node: ast.AST) -> bool:
    """True if the chain is rooted at / passes through a plan object."""
    return any(_is_plan_token(token) for token in name_tokens(node))


def _stores_into_plan(target: ast.Attribute | ast.Subscript) -> bool:
    """True if a store target writes *into* a plan object.

    The plan must appear in the *owner* chain of the store: a store to
    ``plan.column_of[k]``, ``plan["by_tree"]`` or ``entry.plan.q_lo``
    mutates the shared plan, while ``self.plan = ...`` merely rebinds a
    holder's slot to a (new) plan and is how plan-owning objects are
    initialised.
    """
    return _is_plan_chain(target.value)


@register
class PlanPurity(Rule):
    rule_id = "R007"
    title = "query plans must not be mutated after construction"
    rationale = ("plans are shared across cached queries, shard fan-outs "
                 "and retry attempts; in-place mutation is a cross-query "
                 "correctness bug and a data race")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage not in _CHECKED_SUBPACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and _stores_into_plan(target):
                        yield self.finding(
                            ctx, node.lineno, node.col_offset,
                            f"store into shared query plan "
                            f"{'.'.join(name_tokens(target))} — plans are "
                            f"immutable after construction (shared across "
                            f"cache hits, shards and retries)")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and _stores_into_plan(target):
                        yield self.finding(
                            ctx, node.lineno, node.col_offset,
                            f"delete on shared query plan "
                            f"{'.'.join(name_tokens(target))} — plans are "
                            f"immutable after construction")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and _is_plan_chain(node.func.value):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"mutating call .{node.func.attr}() on shared query "
                    f"plan {'.'.join(name_tokens(node.func.value))} — "
                    f"plans are immutable after construction")
