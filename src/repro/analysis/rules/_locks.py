"""Shared lock/seam identification for the concurrency rules.

The concurrency rules (R008-R011) all need to answer the same two
questions about an expression: *is this a synchronous lock?* and *is
this one side of the slide gate?*  Identification is by receiver-name
heuristics — the codebase's locks are few and consistently named
(``threading.Lock`` instances called ``*mutex*``/``*lock*``, the one
:class:`~repro.serve.gate.SlideGate` always reachable through a name
containing ``gate``) — so the heuristics survive aliasing
(``mutex = self._mutex``) that defeats type-based resolution.

A :class:`LockId` names a lock for the acquisition-order graph.  Sync
locks are qualified by the module and class that use them (two classes'
``self._mutex`` are different locks; one class's aliased ``mutex`` is
the same lock), while the gate's two sides are global — there is one
slide gate per serving facade and the rules reason about its order
against every other lock in the process.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ._util import name_tokens

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..callgraph import FunctionInfo

#: Name tokens (underscores stripped) that mark a synchronous lock.
LOCK_TOKENS = frozenset({"lock", "rlock", "mutex", "cond", "condition"})

#: Constructor names whose result is a synchronous lock.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                               "BoundedSemaphore"})

#: Gate acquisition methods, by side.
GATE_SHARED_ATTRS = frozenset({"read", "acquire_read"})
GATE_EXCLUSIVE_ATTRS = frozenset({"write", "acquire_write"})

GATE_SHARED_KEY = "SlideGate.shared"
GATE_EXCLUSIVE_KEY = "SlideGate.exclusive"


@dataclass(frozen=True, slots=True)
class LockId:
    """One node of the lock-acquisition graph."""

    key: str          # stable identity ("serve.async_engine.…mutex")
    subpackage: str   # where the lock lives (engine-side check needs this)
    display: str      # short human name for messages

    @property
    def is_gate_exclusive(self) -> bool:
        return self.key == GATE_EXCLUSIVE_KEY

    @property
    def reentrant(self) -> bool:
        return "rlock" in self.key.lower()


def is_lock_token(token: str) -> bool:
    """True if a (stripped) identifier names a synchronous lock."""
    return (token in LOCK_TOKENS
            or token.endswith("lock") or token.endswith("mutex"))


def sync_lock_token(node: ast.AST) -> str | None:
    """The lock token of a plain Name/Attribute chain, if lock-ish."""
    if not isinstance(node, (ast.Name, ast.Attribute)):
        return None
    tokens = name_tokens(node)
    if tokens and is_lock_token(tokens[-1]):
        return tokens[-1]
    return None


def gate_side_of_call(node: ast.AST) -> str | None:
    """``"shared"``/``"exclusive"`` for a ``<gate>.read()/.write()``-shaped
    call (including ``acquire_read``/``acquire_write``), else ``None``."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return None
    attr = node.func.attr
    if attr not in GATE_SHARED_ATTRS and attr not in GATE_EXCLUSIVE_ATTRS:
        return None
    receiver = name_tokens(node.func.value)
    if not any(token == "gate" or token.endswith("gate")
               for token in receiver):
        return None
    return "shared" if attr in GATE_SHARED_ATTRS else "exclusive"


def gate_lock_id(side: str) -> LockId:
    key = GATE_SHARED_KEY if side == "shared" else GATE_EXCLUSIVE_KEY
    return LockId(key=key, subpackage="serve", display=key)


def sync_lock_id(fn: "FunctionInfo", token: str) -> LockId:
    """Identity of a sync lock used inside ``fn``.

    Locks are collapsed per (module, class, token): ``self._mutex`` and
    a local alias ``mutex`` inside the same class are one lock; the
    same token in two classes is two.  A deliberate over-merge — a
    false *shared* identity can at worst report a cycle one function
    too early, never hide one.
    """
    owner = (f"{fn.module}.{fn.class_name}" if fn.class_name
             else fn.module) or "<toplevel>"
    return LockId(key=f"{owner}.{token}", subpackage=fn.subpackage,
                  display=f"{fn.class_name or fn.module}.{token}")


def direct_region(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, stopping at nested defs and lambdas.

    Statements inside a nested ``def``/``lambda`` execute when the
    closure is *called*, not where it is defined — rules that reason
    about what one stack frame does must skip them.
    """
    body = getattr(fn_node, "body", [])
    stack: list[ast.AST] = list(body) if isinstance(body, list) else []
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def with_lock_items(node: ast.With | ast.AsyncWith
                    ) -> Iterator[tuple[str | None, str | None]]:
    """Classify each ``with`` item as ``(lock_token, gate_side)``.

    ``(token, None)`` for a sync lock (identity needs the enclosing
    function — callers qualify it via :func:`sync_lock_id`),
    ``(None, side)`` for a gate side, ``(None, None)`` otherwise.
    """
    for item in node.items:
        expr = item.context_expr
        token = sync_lock_token(expr)
        if token is None and isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "acquire":
            token = sync_lock_token(expr.func.value)
        side = gate_side_of_call(expr)
        yield (token, side)
