"""R003 — storage/ and engine/ raise only typed errors.

PR 2 and PR 3 built dedicated hierarchies (``StorageError`` ->
``ChecksumError``/``TornWriteError``/``PagerClosedError``/...,
``EngineError`` -> ``ShardOpenError``/``EngineClosedError``) precisely so
callers can distinguish crash-safety conditions from plain bugs.  Raising
a generic builtin (``RuntimeError``, ``OSError``, bare ``Exception``)
from these layers collapses that contract.  ``ValueError``/``TypeError``
for argument validation and ``AssertionError``/``NotImplementedError``
for programming contracts remain allowed — those signal caller bugs, not
storage conditions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext

_SCOPE = frozenset({"storage", "engine"})
_BANNED = frozenset({
    "Exception", "BaseException", "RuntimeError", "OSError", "IOError",
    "EnvironmentError", "SystemError", "KeyError", "IndexError",
    "LookupError", "ArithmeticError", "ZeroDivisionError",
    "StopIteration", "StopAsyncIteration", "EOFError", "BufferError",
})


@register
class TypedErrors(Rule):
    rule_id = "R003"
    title = "only typed errors raised from storage/ and engine/"
    rationale = ("generic builtins erase the StorageError/EngineError "
                 "contract callers use to detect crash-safety conditions")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage not in _SCOPE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _BANNED:
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"raise of generic builtin {exc.id} in "
                    f"{ctx.subpackage}/ — use the module's typed error "
                    f"hierarchy (StorageError/EngineError subclasses)")
