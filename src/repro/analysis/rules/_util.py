"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def name_tokens(node: ast.AST) -> list[str]:
    """Identifier segments of a Name/Attribute/Subscript chain.

    ``self._shards[i].pager`` -> ``["self", "_shards", "pager"]``; used
    for suffix matching, so leading underscores are stripped.
    """
    tokens: list[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            tokens.append(current.attr.lstrip("_"))
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            tokens.append(current.id.lstrip("_"))
            return list(reversed(tokens))
        else:
            return list(reversed(tokens))


def callee_simple_name(call: ast.Call) -> str | None:
    """Last identifier of the called expression (``x.y.Pager`` -> Pager)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def chain_root(node: ast.AST) -> ast.Name | None:
    """Leftmost Name of an attribute/subscript/call chain, if any."""
    current = node
    while True:
        if isinstance(current, (ast.Attribute, ast.Starred)):
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            return current
        else:
            return None
