"""R009 — no blocking call is reachable from a serve/ coroutine.

The serving layer is a single event loop: one blocking call anywhere on
a coroutine's call path stalls every request in flight (and, held
behind the slide gate, can wedge the whole barrier).  The architecture
routes every blocking engine call through the Executor seam
(``executor.submit`` / ``loop.run_in_executor``) onto a pool thread —
so the invariant is *reachability*: starting from any ``async def`` in
``serve/`` and walking the call graph through **synchronous** callees
(the code that runs inline on the loop), no path may reach

* ``time.sleep``,
* ``os.fsync``/``os.fdatasync`` or a FileOps durability call
  (``fsync_file``, ``fsync_dir``, ``write_file``, ``append_file``,
  ``truncate_file``, ``replace`` on a ``fops``-shaped receiver),
* a blocking ``<lock>.acquire()``,
* socket I/O (``recv``/``send``/``accept``/``connect`` on a socket-
  shaped receiver, ``socket.create_connection``),
* a direct engine method (``query_interval``, ``extend``,
  ``advance_time``, ...) on an ``engine``-shaped receiver that is not
  awaited — the async facade's methods share those names, so an
  *awaited* call is the facade and fine; a bare one is the blocking
  engine.

The traversal is what makes this interprocedural: a coroutine calling
a sync helper calling another helper that sleeps is flagged, with the
full call chain in the message.  Deferred code is excluded — nested
defs and lambdas run wherever they are *called* (usually the pool via
``submit``), not where they are defined — and unknown callees end the
walk (under-approximate, per the project soundness posture).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import FunctionInfo, ProjectContext
from ..findings import Finding
from ..registry import Rule, register
from ._locks import sync_lock_token
from ._util import dotted_name, name_tokens

_ENTRY_SUBPACKAGE = "serve"

_BLOCKING_DOTTED = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "os.sync",
    "socket.create_connection",
})
#: FileOps durability methods, blocking by contract.
_FOPS_ATTRS = frozenset({"write_file", "append_file", "fsync_file",
                         "fsync_dir", "truncate_file", "replace"})
_FOPS_RECEIVERS = frozenset({"fops", "ops", "fileops", "file_ops"})
_SOCKET_ATTRS = frozenset({"recv", "recv_into", "recvfrom", "send",
                           "sendall", "sendto", "accept", "connect"})
#: Engine methods that run the blocking index stack.
_ENGINE_METHODS = frozenset({
    "query_interval", "query_timeslice", "query_interval_many",
    "count_interval", "query_knn", "insert", "report", "extend",
    "close_object", "advance_time", "save", "open", "close",
})
#: Calls that hand work to a pool thread: the legitimate seam.
_SEAM_ATTRS = frozenset({"submit", "run_in_executor"})

_MAX_DEPTH = 32


def _is_fops_receiver(node: ast.AST) -> bool:
    tokens = name_tokens(node)
    return bool(tokens) and tokens[-1] in _FOPS_RECEIVERS


def _is_socket_receiver(node: ast.AST) -> bool:
    tokens = name_tokens(node)
    return bool(tokens) and any(token == "sock" or token.endswith("sock")
                                or token == "socket"
                                for token in tokens)


def _is_engine_receiver(node: ast.AST) -> bool:
    tokens = name_tokens(node)
    return any(token == "engine" or token.endswith("engine")
               for token in tokens)


def _classify_blocking(project: ProjectContext, fn: FunctionInfo,
                       call: ast.Call, awaited: bool) -> str | None:
    """A short description if ``call`` is a blocking primitive."""
    dotted = dotted_name(call.func)
    if dotted in _BLOCKING_DOTTED:
        return f"blocking call {dotted}()"
    if isinstance(call.func, ast.Name):
        # ``from time import sleep`` and friends: resolve the bare name
        # through the module's import map.
        imported = project.imports.get(fn.module, {}).get(call.func.id)
        if imported in _BLOCKING_DOTTED:
            return f"blocking call {imported}()"
        return None
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    receiver = call.func.value
    if attr in _FOPS_ATTRS and _is_fops_receiver(receiver):
        return f"blocking FileOps call .{attr}()"
    if attr == "acquire" and sync_lock_token(receiver) is not None:
        return "blocking lock .acquire()"
    if attr in _SOCKET_ATTRS and _is_socket_receiver(receiver):
        return f"blocking socket I/O .{attr}()"
    if attr in _ENGINE_METHODS and _is_engine_receiver(receiver) \
            and not awaited:
        return (f"direct engine call .{attr}() outside the "
                f"Executor seam")
    return None


def _is_seam(call: ast.Call) -> bool:
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr in _SEAM_ATTRS)


@register
class AsyncBlocking(Rule):
    rule_id = "R009"
    title = "no blocking call reachable from a serve/ coroutine"
    rationale = ("one blocking call on the event loop stalls every "
                 "in-flight request; blocking engine work must cross "
                 "the Executor seam onto a pool thread")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        reported: set[tuple[str, int, int, str]] = set()
        for entry in project.iter_functions():
            if not entry.is_async \
                    or entry.subpackage != _ENTRY_SUBPACKAGE:
                continue
            yield from self._scan(project, entry, [entry], {entry},
                                  reported)

    def _scan(self, project: ProjectContext, fn: FunctionInfo,
              chain: list[FunctionInfo], seen: set[FunctionInfo],
              reported: set[tuple[str, int, int, str]]
              ) -> Iterator[Finding]:
        if len(chain) > _MAX_DEPTH:
            return
        for call in fn.direct_calls:
            awaited = call in fn.awaited_calls
            what = _classify_blocking(project, fn, call, awaited)
            if what is not None:
                key = (fn.ctx.path, call.lineno, call.col_offset, what)
                if key not in reported:
                    reported.add(key)
                    yield self._finding(fn, call, what, chain)
                continue
            if _is_seam(call):
                continue
            target = project.resolve_call(fn, call)
            if not isinstance(target, FunctionInfo):
                continue
            if target.is_async or target in seen:
                continue
            yield from self._scan(project, target, chain + [target],
                                  seen | {target}, reported)

    def _finding(self, fn: FunctionInfo, call: ast.Call, what: str,
                 chain: list[FunctionInfo]) -> Finding:
        entry = chain[0]
        if len(chain) == 1:
            route = f"directly in async def {entry.qualname}"
        else:
            hops = " -> ".join(info.qualname for info in chain[1:])
            route = (f"reachable from async def {entry.qualname} "
                     f"via {hops}")
        return Finding(
            path=fn.ctx.path, line=call.lineno, col=call.col_offset,
            rule_id=self.rule_id,
            message=f"{what} {route} — blocks the event loop; route "
                    f"through the Executor seam")
