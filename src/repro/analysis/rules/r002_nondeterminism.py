"""R002 — no wall-clock or RNG nondeterminism in the index stack.

The reproduction's headline claim is that logical node accesses match
the paper's cost model exactly, independent of machine and run.  Any
``time``/``random`` use inside ``core/``, ``btree/``, ``storage/``,
``engine/`` or ``serve/`` could leak into eviction order, key layout,
query plans or request batching and break run-to-run reproducibility.
The serving layer is in scope on purpose: its linger timers and retry
jitter must come through injected seams (wired at the CLI edge), so a
test driving the event loop sees identical coalescing every run.
Benchmarks (``bench/``) and data generation (``datagen/``, seeded) are
deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._util import dotted_name

_SCOPE = frozenset({"core", "btree", "storage", "engine", "serve"})
_BANNED_MODULES = frozenset({"random", "time", "secrets", "uuid",
                             "datetime"})
_BANNED_CALLS = frozenset({"os.urandom", "os.getrandom"})


@register
class Nondeterminism(Rule):
    rule_id = "R002"
    title = ("no wall-clock/random nondeterminism in "
             "core/btree/storage/engine/serve")
    rationale = ("node-access counts must be bit-for-bit reproducible; "
                 "clocks and RNGs belong in bench/ and datagen/ only")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage not in _SCOPE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        yield self._import_finding(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if node.level == 0 and top in _BANNED_MODULES:
                    yield self._import_finding(ctx, node, node.module or "")
                elif node.level == 0 and top == "os":
                    for alias in node.names:
                        if alias.name in ("urandom", "getrandom"):
                            yield self._import_finding(
                                ctx, node, f"os.{alias.name}")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _BANNED_CALLS:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        f"nondeterministic call {name}() in "
                        f"{ctx.subpackage}/ breaks node-access "
                        f"reproducibility")

    def _import_finding(self, ctx: FileContext, node: ast.stmt,
                        module: str) -> Finding:
        return self.finding(
            ctx, node.lineno, node.col_offset,
            f"import of nondeterministic module {module!r} in "
            f"{ctx.subpackage}/ breaks node-access reproducibility")
