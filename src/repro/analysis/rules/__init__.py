"""Built-in rules; importing this package registers all of them."""

from __future__ import annotations

from .r001_raw_page_io import RawPageIO
from .r002_nondeterminism import Nondeterminism
from .r003_typed_errors import TypedErrors
from .r004_resource_guard import ResourceGuard
from .r005_executor_closures import ExecutorClosures
from .r006_swallowed_errors import SwallowedErrors
from .r007_plan_purity import PlanPurity
from .r008_lock_order import LockOrder
from .r009_async_blocking import AsyncBlocking
from .r010_fsync_discipline import FsyncDiscipline
from .r011_await_lock import AwaitHoldingLock

__all__ = [
    "RawPageIO",
    "Nondeterminism",
    "TypedErrors",
    "ResourceGuard",
    "ExecutorClosures",
    "SwallowedErrors",
    "PlanPurity",
    "LockOrder",
    "AsyncBlocking",
    "FsyncDiscipline",
    "AwaitHoldingLock",
]
