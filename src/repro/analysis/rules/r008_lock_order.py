"""R008 — the lock-acquisition graph over serve/ + engine/ is a DAG.

The serving stack holds locks across calls into other layers: a read
request holds the :class:`~repro.serve.gate.SlideGate`'s shared side
while the facade takes ``AsyncEngine._mutex`` on a pool thread, a slide
holds the exclusive side across the same path.  That is safe exactly as
long as every thread acquires locks in one global order — the moment
two code paths nest the same pair of locks in opposite directions, a
scheduler interleaving exists that deadlocks both, and no test is
guaranteed to find it.

This rule extracts the acquisition-order graph interprocedurally: an
edge ``A -> B`` means some call path acquires ``B`` while ``A`` is
held (``with A:`` around code whose transitive callees acquire ``B``).
Sync locks (``threading.Lock``/``RLock``/``Condition``, matched by
receiver-name heuristics that survive aliasing) and the gate's two
sides are all nodes.  Findings:

* any **cycle** in the graph (the deadlock precondition);
* acquiring an **engine-side lock while the gate's exclusive side is
  held** — the slide barrier must stay leaf-like: it already excludes
  every reader, so blocking inside it on an engine-layer lock hands
  the whole serving plane to whoever holds that lock.

Unknown callees contribute no edges (under-approximate, per the
project soundness posture); nested closures *do* contribute — a
closure defined under a lock is conservatively assumed to run there.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from ..callgraph import ClassInfo, FunctionInfo, ProjectContext
from ..findings import Finding
from ..registry import Rule, register
from ._locks import (LockId, gate_lock_id, gate_side_of_call, sync_lock_id,
                     sync_lock_token, with_lock_items)

_SCOPE = frozenset({"serve", "engine"})


def _direct_acquisitions(fn: FunctionInfo) -> list[tuple[LockId, ast.AST]]:
    """Every lock acquisition in ``fn``'s own subtree (nested included:
    a closure's acquisition happens on whatever thread runs it, and the
    function that created the closure is how it got there)."""
    found: list[tuple[LockId, ast.AST]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for token, side in with_lock_items(node):
                if token is not None:
                    found.append((sync_lock_id(fn, token), node))
                elif side is not None:
                    found.append((gate_lock_id(side), node))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            side = gate_side_of_call(node)
            if side is not None:
                found.append((gate_lock_id(side), node))
            elif node.func.attr == "acquire":
                token = sync_lock_token(node.func.value)
                if token is not None:
                    found.append((sync_lock_id(fn, token), node))
    return found


class _Graph:
    """Acquisition-order digraph with one representative site per edge."""

    def __init__(self) -> None:
        self.edges: dict[str, dict[str, tuple[LockId, LockId,
                                              str, int, int]]] = {}
        self.locks: dict[str, LockId] = {}

    def add(self, held: LockId, acquired: LockId, path: str,
            line: int, col: int) -> None:
        self.locks[held.key] = held
        self.locks[acquired.key] = acquired
        self.edges.setdefault(held.key, {}).setdefault(
            acquired.key, (held, acquired, path, line, col))

    def cycles(self) -> list[list[str]]:
        """Elementary cycles, one per strongly connected component.

        The graph is tiny (a handful of locks), so a DFS that returns
        the first cycle found inside each multi-node SCC — plus every
        self-loop — names the problem without enumerating permutations.
        """
        sccs = _tarjan(self.edges)
        cycles: list[list[str]] = []
        for component in sccs:
            members = set(component)
            if len(component) == 1:
                node = component[0]
                if node in self.edges.get(node, {}):
                    cycles.append([node, node])
                continue
            cycles.append(_first_cycle(self.edges, members))
        return cycles


def _tarjan(edges: Mapping[str, Mapping[str, object]]) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(targets)

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in edges.get(node, {}):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: list[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            sccs.append(component)

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return sccs


def _first_cycle(edges: Mapping[str, Mapping[str, object]],
                 members: set[str]) -> list[str]:
    start = min(members)
    path = [start]
    seen = {start}
    node = start
    while True:
        succ = min(s for s in edges.get(node, {}) if s in members)
        if succ == start:
            return path + [start]
        if succ in seen:
            return path[path.index(succ):] + [succ]
        path.append(succ)
        seen.add(succ)
        node = succ


@register
class LockOrder(Rule):
    rule_id = "R008"
    title = "lock-acquisition order over serve/ and engine/ is cycle-free"
    rationale = ("two call paths nesting the same locks in opposite "
                 "order can deadlock under some interleaving; the slide "
                 "gate's exclusive side must additionally never wait on "
                 "an engine-side lock")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        scoped = [fn for fn in project.iter_functions()
                  if fn.subpackage in _SCOPE]
        acquires = self._transitive_acquisitions(project)
        graph = _Graph()
        for fn in scoped:
            self._add_edges(project, fn, acquires, graph)
        yield from self._report(graph)

    # -- transitive acquisition sets (fixpoint over the call graph) --------

    def _transitive_acquisitions(self, project: ProjectContext
                                 ) -> dict[FunctionInfo, dict[str, LockId]]:
        direct: dict[FunctionInfo, dict[str, LockId]] = {}
        callees: dict[FunctionInfo, list[FunctionInfo]] = {}
        for fn in project.iter_functions():
            direct[fn] = {lock.key: lock
                          for lock, _ in _direct_acquisitions(fn)}
            targets = []
            for call in fn.direct_calls:
                resolved = project.resolve_call(fn, call)
                if isinstance(resolved, ClassInfo):
                    resolved = resolved.methods.get("__init__")
                if isinstance(resolved, FunctionInfo):
                    targets.append(resolved)
            for nested in fn.nested:
                targets.append(nested)
            callees[fn] = targets
        # Worklist fixpoint: recursion-safe, and the lattice (sets of
        # locks) is finite, so it terminates.
        changed = True
        while changed:
            changed = False
            for fn, targets in callees.items():
                mine = direct[fn]
                before = len(mine)
                for target in targets:
                    mine.update(direct.get(target, {}))
                if len(mine) != before:
                    changed = True
        return direct

    # -- edges -------------------------------------------------------------

    def _add_edges(self, project: ProjectContext, fn: FunctionInfo,
                   acquires: dict[FunctionInfo, dict[str, LockId]],
                   graph: _Graph) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held: list[LockId] = []
            for token, side in with_lock_items(node):
                if token is not None:
                    held.append(sync_lock_id(fn, token))
                elif side is not None:
                    held.append(gate_lock_id(side))
            if not held:
                continue
            # The with-statement's own context expressions are the
            # acquisition of ``held`` itself, not an inner acquisition.
            item_nodes = {id(sub) for item in node.items
                          for sub in ast.walk(item.context_expr)}
            for inner in ast.walk(node):
                if inner is node or id(inner) in item_nodes:
                    continue
                if isinstance(inner, (ast.With, ast.AsyncWith)):
                    for token, side in with_lock_items(inner):
                        lock = (sync_lock_id(fn, token)
                                if token is not None
                                else gate_lock_id(side)
                                if side is not None else None)
                        if lock is not None:
                            for outer in held:
                                graph.add(outer, lock, fn.ctx.path,
                                          inner.lineno, inner.col_offset)
                elif isinstance(inner, ast.Call):
                    side = gate_side_of_call(inner)
                    if side is not None:
                        for outer in held:
                            graph.add(outer, gate_lock_id(side),
                                      fn.ctx.path, inner.lineno,
                                      inner.col_offset)
                        continue
                    resolved = project.resolve_call(fn, inner)
                    if isinstance(resolved, ClassInfo):
                        resolved = resolved.methods.get("__init__")
                    if not isinstance(resolved, FunctionInfo):
                        continue
                    for lock in acquires.get(resolved, {}).values():
                        for outer in held:
                            graph.add(outer, lock, fn.ctx.path,
                                      inner.lineno, inner.col_offset)

    # -- findings ----------------------------------------------------------

    def _report(self, graph: _Graph) -> Iterator[Finding]:
        reported: set[frozenset[str]] = set()
        for cycle in graph.cycles():
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            if len(key) == 1:
                lock = graph.locks[cycle[0]]
                if lock.reentrant:
                    continue
                _, _, path, line, col = graph.edges[cycle[0]][cycle[0]]
                yield Finding(
                    path=path, line=line, col=col, rule_id=self.rule_id,
                    message=f"lock {lock.display} re-acquired while "
                            f"already held — self-deadlock for "
                            f"non-reentrant locks")
                continue
            rendered = " -> ".join(graph.locks[k].display for k in cycle)
            first, second = cycle[0], cycle[1]
            _, _, path, line, col = graph.edges[first][second]
            yield Finding(
                path=path, line=line, col=col, rule_id=self.rule_id,
                message=f"lock-order cycle {rendered} — opposite "
                        f"nesting orders can deadlock under some "
                        f"thread interleaving")
        for sources in graph.edges.values():
            for held, acquired, path, line, col in sources.values():
                if held.is_gate_exclusive \
                        and acquired.subpackage == "engine":
                    yield Finding(
                        path=path, line=line, col=col,
                        rule_id=self.rule_id,
                        message=f"engine-side lock {acquired.display} "
                                f"acquired while holding the slide "
                                f"gate's exclusive side — the barrier "
                                f"must not wait on engine locks")
