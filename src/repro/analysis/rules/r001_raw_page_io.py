"""R001 — raw page I/O stays inside ``storage/``.

Every page read/write outside the storage layer must go through
:class:`~repro.storage.buffer.BufferPool`, which is what maintains the
logical node-access counters (the paper's cost metric, PR 1) and the
checksum/generation trailers (PR 2).  A direct ``pager.read(...)`` or
``device.write(...)`` elsewhere silently skews the reproduced figures
and can bypass torn-write detection.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext
from ._util import name_tokens

_IO_METHODS = frozenset({"read", "write"})
_RAW_SUFFIXES = ("pager", "device")


@register
class RawPageIO(Rule):
    rule_id = "R001"
    title = "no raw pager/device page I/O outside storage/"
    rationale = ("page reads/writes outside storage/ bypass the buffer "
                 "pool's node-access counters and checksum handling")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage == "storage":
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _IO_METHODS):
                continue
            tokens = name_tokens(node.func.value)
            if any(token.endswith(_RAW_SUFFIXES) for token in tokens):
                receiver = ".".join(tokens) or "<expr>"
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"raw page I/O {receiver}.{node.func.attr}() outside "
                    f"storage/ — route through BufferPool so node-access "
                    f"counters and checksums stay correct")
