"""Rule registry: rules self-register at import time via :func:`register`.

A rule is a class with ``rule_id`` / ``title`` / ``rationale`` class
attributes and a ``check(ctx)`` method yielding :class:`Finding` objects
for one parsed file.  Registration keys on ``rule_id`` so a duplicate id
is an immediate error rather than a silently shadowed rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, ClassVar, Iterator, TypeVar

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import ProjectContext
    from .runner import FileContext


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    Instances are reused across files within one run, so ``check`` must
    derive everything from ``ctx`` rather than instance state.
    """

    #: Stable identifier, e.g. ``"R001"`` — referenced by baselines,
    #: suppression comments and docs; never renumber.
    rule_id: ClassVar[str] = ""
    #: One-line summary shown by ``--list-rules``.
    title: ClassVar[str] = ""
    #: Which invariant the rule guards and why it matters.
    rationale: ClassVar[str] = ""
    #: Project-level rules see the whole tree at once: the runner calls
    #: :meth:`check_project` exactly once per run with the shared
    #: :class:`~repro.analysis.callgraph.ProjectContext` instead of
    #: calling :meth:`check` per file.
    project: ClassVar[bool] = False

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", line: int, col: int,
                message: str) -> Finding:
        return Finding(path=ctx.path, line=line, col=col,
                       rule_id=self.rule_id, message=message)


_R = TypeVar("_R", bound=type[Rule])

_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: _R) -> _R:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}: "
                         f"{existing.__name__} and {cls.__name__}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Import for the side effect of @register; late import avoids a
    # registry<->rules cycle.
    from . import rules as _rules  # noqa: F401


def all_rules(only: Callable[[type[Rule]], bool] | None = None
              ) -> list[Rule]:
    """Fresh instances of every registered rule, sorted by rule id."""
    _load_builtin_rules()
    classes = sorted(_REGISTRY.values(), key=lambda cls: cls.rule_id)
    return [cls() for cls in classes if only is None or only(cls)]


def get_rule(rule_id: str) -> type[Rule]:
    """Look up one registered rule class by id."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]
