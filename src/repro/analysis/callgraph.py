"""Interprocedural layer: symbol table + call graph (``ProjectContext``).

The per-file rules (R001-R007) are intraprocedural: each looks at one
parsed module.  The concurrency and durability invariants (R008-R011)
are properties of *call paths* — a blocking call is only a bug if a
coroutine can reach it, a lock order is only a cycle across the
functions that nest the acquisitions.  This module builds, once per
lint run, the project-wide structures those rules share:

* a **symbol table** of module-qualified functions, methods and
  classes (``serve.app.ServeApp.handle``), each tagged ``async`` or
  sync, with per-module import maps resolved to project-relative
  dotted names (``repro.`` is stripped, relative imports expanded);
* light **type inference** for the two receiver shapes that dominate
  this codebase — ``self.attr = KnownClass(...)`` in ``__init__`` and
  ``local = KnownClass(...)`` in a function body — so attribute calls
  through those receivers resolve to methods;
* a **call graph**: for every function, its call sites with the callee
  resolved to a :class:`FunctionInfo` / :class:`ClassInfo` where the
  heuristics above succeed, ``None`` otherwise.

Soundness posture: resolution is *best effort and under-approximate*.
An unresolved callee contributes no edges — rules must treat unknown
callees conservatively in the non-flagging direction (no finding), so
the analyzer stays quiet rather than wrong.  Dynamic dispatch,
``getattr``, reassigned attributes and inheritance overrides are out of
scope; the known seams the rules care about (Executor, FileOps,
WalWriter, SlideGate) are additionally matched by receiver-name
heuristics inside the rules themselves so they survive aliasing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner uses us)
    from .runner import FileContext

_FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


def module_name_of(package_parts: tuple[str, ...]) -> str:
    """Dotted module name from a file's path inside the package.

    ``("serve", "app.py")`` -> ``"serve.app"``; ``__init__.py`` names
    the package itself; a top-level file names a bare module.
    """
    parts = list(package_parts)
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(parts)


def subpackage_of(module: str) -> str:
    """First package component of a dotted module name ('' if bare)."""
    if "." in module:
        return module.split(".", 1)[0]
    return ""


def _strip_repro(dotted: str) -> str:
    """Normalise absolute imports to the project-relative spelling."""
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro."):]
    return dotted


@dataclass
class FunctionInfo:
    """One function or method, with everything the rules ask about."""

    qualname: str               # module-qualified, stable across runs
    module: str                 # dotted module ("serve.app")
    name: str                   # bare name ("handle")
    class_name: str | None      # enclosing class, if a method
    is_async: bool
    node: _FuncNode
    ctx: FileContext
    nested: list["FunctionInfo"] = field(default_factory=list)
    #: Call nodes whose nearest enclosing function is this one (calls
    #: inside nested defs/lambdas belong to the nested scope — they run
    #: when the closure runs, not when this body does).
    direct_calls: list[ast.Call] = field(default_factory=list)
    #: Direct call nodes that appear as ``await <call>``.
    awaited_calls: set[ast.Call] = field(default_factory=set)
    #: Inferred classes of local variables (``x = KnownClass(...)``).
    local_types: dict[str, "ClassInfo"] = field(default_factory=dict)

    @property
    def subpackage(self) -> str:
        return subpackage_of(self.module)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class ClassInfo:
    """One class: its methods and inferred attribute types."""

    qualname: str               # "engine.wal.WalWriter"
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr = KnownClass(...)`` assignments seen in any method.
    attr_types: dict[str, "ClassInfo"] = field(default_factory=dict)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


def _import_map(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> project-relative dotted target, for one module."""
    package = module.rsplit(".", 1)[0] if "." in module else ""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = _strip_repro(alias.name)
                local = alias.asname or alias.name.split(".")[0]
                if alias.asname is None:
                    # ``import os.path`` binds ``os``.
                    target = _strip_repro(alias.name.split(".")[0])
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = _strip_repro(node.module or "")
            else:
                parts = package.split(".") if package else []
                keep = len(parts) - (node.level - 1)
                base = ".".join(parts[:keep]) if keep > 0 else ""
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = (f"{base}.{alias.name}" if base
                                  else alias.name)
    return imports


def _direct_region(fn: _FuncNode) -> Iterator[ast.AST]:
    """Walk a function body, stopping at nested defs and lambdas."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ProjectContext:
    """Project-wide view handed to ``check_project`` rules.

    Built once per lint run from every parsed file; exposes the symbol
    table, the call graph and the per-file contexts (rules still need
    those for suppression comments and subpackage scoping).
    """

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.files: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self._module_of: dict[str, str] = {}
        self._by_node: dict[ast.AST, FunctionInfo] = {}
        for ctx in contexts:
            self._add_file(ctx)
        self._infer_types()

    # -- construction ------------------------------------------------------

    def _add_file(self, ctx: FileContext) -> None:
        module = module_name_of(ctx.package_parts)
        self.files[ctx.path] = ctx
        self._module_of[ctx.path] = module
        self.imports[module] = _import_map(ctx.tree, module)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, module, stmt, class_info=None,
                                   prefix=module)
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{module}.{stmt.name}" if module
                    else stmt.name,
                    module=module, name=stmt.name, node=stmt, ctx=ctx)
                self.classes[cls.qualname] = cls
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._add_function(ctx, module, item,
                                           class_info=cls,
                                           prefix=cls.qualname)

    def _add_function(self, ctx: FileContext, module: str, node: _FuncNode,
                      class_info: ClassInfo | None,
                      prefix: str) -> FunctionInfo:
        info = FunctionInfo(
            qualname=f"{prefix}.{node.name}" if prefix else node.name,
            module=module, name=node.name,
            class_name=class_info.name if class_info else None,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            node=node, ctx=ctx)
        self.functions[info.qualname] = info
        self._by_node[node] = info
        if class_info is not None:
            class_info.methods[node.name] = info
        for child in _direct_region(node):
            if isinstance(child, ast.Call):
                info.direct_calls.append(child)
            elif isinstance(child, ast.Await) \
                    and isinstance(child.value, ast.Call):
                info.awaited_calls.add(child.value)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                nested = self._add_function(
                    ctx, module, child, class_info=class_info,
                    prefix=f"{info.qualname}.<locals>")
                info.nested.append(nested)
        return info

    def _infer_types(self) -> None:
        # Second pass: every symbol exists, so constructor calls can be
        # resolved to classes for attribute/local receiver typing.
        for fn in list(self.functions.values()):
            for call in fn.direct_calls:
                target = self.resolve_call(fn, call, _typed=False)
                if not isinstance(target, ClassInfo):
                    continue
                parent = fn.ctx.parent(call)
                if not (isinstance(parent, ast.Assign)
                        and len(parent.targets) == 1):
                    continue
                dest = parent.targets[0]
                if isinstance(dest, ast.Name):
                    fn.local_types[dest.id] = target
                elif (isinstance(dest, ast.Attribute)
                      and isinstance(dest.value, ast.Name)
                      and dest.value.id == "self"
                      and fn.class_name is not None):
                    owner = self.classes.get(
                        f"{fn.module}.{fn.class_name}" if fn.module
                        else fn.class_name)
                    if owner is not None:
                        owner.attr_types[dest.attr] = target

    # -- lookups -----------------------------------------------------------

    def function_of(self, node: ast.AST) -> FunctionInfo | None:
        """The :class:`FunctionInfo` for a def node, if registered."""
        return self._by_node.get(node)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()

    def _lookup(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        return self.functions.get(dotted) or self.classes.get(dotted)

    def _class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.class_name is None:
            return None
        qual = (f"{fn.module}.{fn.class_name}" if fn.module
                else fn.class_name)
        return self.classes.get(qual)

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, fn: FunctionInfo, call: ast.Call, *,
                     _typed: bool = True
                     ) -> FunctionInfo | ClassInfo | None:
        """Best-effort resolution of one call site inside ``fn``.

        Returns the callee's :class:`FunctionInfo`, the
        :class:`ClassInfo` for a constructor call, or ``None`` when the
        callee cannot be determined (rules must not flag on ``None``).
        """
        func = call.func
        imports = self.imports.get(fn.module, {})
        if isinstance(func, ast.Name):
            for nested in fn.nested:
                if nested.name == func.id:
                    return nested
            local = self._lookup(f"{fn.module}.{func.id}"
                                 if fn.module else func.id)
            if local is not None:
                return local
            target = imports.get(func.id)
            if target is not None:
                return self._lookup(target)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = self._receiver_class(fn, func.value, imports,
                                     _typed=_typed)
        if owner is not None:
            return owner.methods.get(func.attr)
        # ``mod.func(...)`` through an imported module alias.
        if isinstance(func.value, ast.Name):
            target = imports.get(func.value.id)
            if target is not None:
                return self._lookup(f"{target}.{func.attr}")
        elif isinstance(func.value, ast.Attribute):
            dotted = _dotted(func.value)
            if dotted is not None:
                root, _, rest = dotted.partition(".")
                base = imports.get(root)
                if base is not None:
                    prefix = f"{base}.{rest}" if rest else base
                    return self._lookup(f"{prefix}.{func.attr}")
        return None

    def _receiver_class(self, fn: FunctionInfo, value: ast.AST,
                        imports: dict[str, str], *,
                        _typed: bool) -> ClassInfo | None:
        """The class of a call's receiver expression, if inferable."""
        if isinstance(value, ast.Name):
            if value.id == "self" and fn.class_name is not None:
                return self._class_of(fn)
            if _typed and value.id in fn.local_types:
                return fn.local_types[value.id]
            target = imports.get(value.id)
            if target is not None:
                found = self.classes.get(target)
                if found is not None:
                    return found
            # A class in the same module used by bare name.
            found = self.classes.get(f"{fn.module}.{value.id}"
                                     if fn.module else value.id)
            return found
        if (_typed and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"):
            owner = self._class_of(fn)
            if owner is not None:
                return owner.attr_types.get(value.attr)
        return None


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
