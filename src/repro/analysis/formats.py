"""Output renderers for lint findings: text, GitHub annotations, SARIF.

``--format text`` is the classic one-line-per-finding report (also the
baseline key format).  ``--format github`` emits workflow commands
(``::error file=...``) that GitHub's runner turns into inline PR
annotations.  ``--format sarif`` emits a minimal SARIF 2.1.0 log that
code-scanning uploads understand; only the fields consumers actually
read are populated (rule metadata, message, one physical location).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .findings import Finding
from .registry import Rule

FORMATS = ("text", "github", "sarif")


def _escape_github(value: str) -> str:
    """Escape per the workflow-command rules (data vs property position)."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _escape_github_property(value: str) -> str:
    return (_escape_github(value).replace(":", "%3A").replace(",", "%2C"))


def render_github(findings: Iterable[Finding]) -> list[str]:
    """One ``::error`` workflow command per finding."""
    lines = []
    for finding in findings:
        lines.append(
            f"::error file={_escape_github_property(finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={_escape_github_property(finding.rule_id)}::"
            f"{_escape_github(f'{finding.rule_id} {finding.message}')}")
    return lines


def render_sarif(findings: Sequence[Finding],
                 rules: Sequence[Rule]) -> str:
    """A SARIF 2.1.0 run: rule metadata plus one result per finding."""
    by_id = {rule.rule_id: rule for rule in rules}
    rule_order = sorted({finding.rule_id for finding in findings}
                        | set(by_id))
    sarif_rules = []
    for rule_id in rule_order:
        rule = by_id.get(rule_id)
        sarif_rules.append({
            "id": rule_id,
            "shortDescription": {
                "text": rule.title if rule else rule_id},
            "fullDescription": {
                "text": rule.rationale if rule else ""},
        })
    index_of = {rule_id: index for index, rule_id
                in enumerate(rule_order)}
    results = [{
        "ruleId": finding.rule_id,
        "ruleIndex": index_of[finding.rule_id],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
    } for finding in findings]
    log = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": sarif_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
