"""Shared driver behind ``python -m repro.analysis`` and ``repro lint``."""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import IO, Iterable, Sequence

from .baseline import compare_to_baseline, load_baseline, write_baseline
from .formats import FORMATS, render_github, render_sarif
from .registry import all_rules
from .runner import lint_paths

DEFAULT_PATHS = ("src",)
DEFAULT_BASELINE = "lint-baseline.txt"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options (shared with the ``repro lint`` CLI)."""
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of pinned findings "
                             "(default: lint-baseline.txt)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings (header comments preserved) and "
                             "exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", default="text", choices=FORMATS,
                        dest="output_format",
                        help="report format: text (default), github "
                             "(workflow-command annotations), sarif")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run per-file rules on N worker processes "
                             "(call-graph pass stays single-pass; "
                             "default: 1)")
    parser.add_argument("--verbose", action="store_true",
                        help="report file count and wall time on stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")


def run_lint(args: argparse.Namespace,
             out: IO[str] | None = None) -> int:
    """Execute a lint run described by parsed ``args``; returns exit code."""
    stream = out if out is not None else sys.stdout

    def emit(line: str = "") -> None:
        print(line, file=stream)

    if args.list_rules:
        for rule in all_rules():
            emit(f"{rule.rule_id}  {rule.title}")
            emit(f"      {rule.rationale}")
        return 0

    selected: Iterable[str] | None = None
    if args.select:
        selected = {rule_id.strip() for rule_id in args.select.split(",")}
    rules = all_rules() if selected is None else [
        rule for rule in all_rules() if rule.rule_id in selected]

    if args.jobs < 1:
        emit(f"--jobs must be >= 1, got {args.jobs}")
        return 2

    # Anchor finding paths at the baseline's directory so entries match
    # the committed file no matter where the lint is invoked from.
    root = Path(args.baseline).resolve().parent
    started = time.monotonic()
    findings = lint_paths(args.paths, root=root, rules=rules,
                          jobs=args.jobs)
    if args.verbose:
        elapsed = time.monotonic() - started
        print(f"[repro lint] {len(rules)} rule(s), jobs={args.jobs}, "
              f"{elapsed:.2f}s wall", file=sys.stderr)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        emit(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    baseline = [] if args.no_baseline else load_baseline(args.baseline)
    diff = compare_to_baseline(findings, baseline)

    if args.output_format == "github":
        for line in render_github(diff.new):
            emit(line)
    elif args.output_format == "sarif":
        emit(render_sarif(diff.new, rules))
    else:
        for finding in diff.new:
            emit(finding.render())
    if diff.pinned:
        emit(f"[{len(diff.pinned)} pinned finding(s) allowed by "
             f"{args.baseline}]")
    failed = False
    for entry in diff.stale:
        if args.output_format == "github":
            emit(f"::error title=stale baseline entry::{entry} is "
                 f"pinned in {args.baseline} but no longer fires — "
                 f"remove it (or run --update-baseline)")
        else:
            emit(f"stale baseline entry (fixed? run --update-baseline "
                 f"to drop it): {entry}")
        failed = True
    if diff.new:
        emit(f"{len(diff.new)} new finding(s)")
        failed = True
    if failed:
        if diff.stale and not diff.new:
            emit(f"{len(diff.stale)} stale baseline entr"
                 f"{'y' if len(diff.stale) == 1 else 'ies'}")
        return 1
    emit("ok")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant lint for the SWST reproduction")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
