"""Walk files, parse them once, run every rule, honour suppressions.

The runner owns everything rules share: the parsed AST, a child->parent
map (rules climb it to classify the context of a node), the source lines
(for ``# repro-lint: ignore[...]`` suppression comments) and the file's
position inside the package (rules scope themselves to subpackages).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from .findings import Finding
from .registry import Rule, all_rules

#: Inline suppression: ``# repro-lint: ignore[R001]`` silences one rule on
#: that line, ``# repro-lint: ignore`` silences every rule.  Use sparingly
#: and justify in a neighbouring comment; prefer the baseline for legacy
#: findings.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Z0-9, ]+)\])?")


@dataclass
class FileContext:
    """Everything a rule may want to know about one file."""

    path: str                       # posix-style path used in findings
    tree: ast.Module
    source_lines: Sequence[str]
    package_parts: tuple[str, ...]  # path inside the repro package
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        posix = PurePosixPath(path.replace(os.sep, "/"))
        parts = posix.parts
        package = (parts[parts.index("repro") + 1:]
                   if "repro" in parts else parts)
        return cls(path=str(posix),
                   tree=ast.parse(source, filename=str(posix)),
                   source_lines=source.splitlines(),
                   package_parts=tuple(package))

    # -- helpers rules lean on --------------------------------------------

    @property
    def subpackage(self) -> str:
        """First package directory under ``repro`` ('' for top level)."""
        if len(self.package_parts) > 1:
            return self.package_parts[0]
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda, else the module."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                return ancestor
        return self.tree

    def statement_of(self, node: ast.AST) -> ast.stmt:
        """The smallest statement containing ``node``."""
        current: ast.AST = node
        while not isinstance(current, ast.stmt):
            parent = self._parents.get(current)
            if parent is None:
                raise ValueError("node is not inside a statement")
            current = parent
        return current

    def is_suppressed(self, finding: Finding) -> bool:
        index = finding.line - 1
        if not 0 <= index < len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[index])
        if match is None:
            return False
        rules = match.group("rules")
        if rules is None:
            return True
        return finding.rule_id in {r.strip() for r in rules.split(",")}


def lint_source(source: str, path: str,
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory source blob (the fixture tests' entry point)."""
    ctx = FileContext.from_source(source, path)
    active = list(rules) if rules is not None else all_rules()
    findings = [finding
                for rule in active
                for finding in rule.check(ctx)
                if not ctx.is_suppressed(finding)]
    return sorted(findings)


def lint_file(path: str | Path, *, root: str | Path | None = None,
              rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file; finding paths are relative to ``root`` if given.

    Files outside ``root`` keep their given spelling — relativisation is
    best-effort so baseline paths stay stable however the tree is named
    on the command line (absolute, relative, symlinked).
    """
    path = Path(path)
    shown = path
    if root is not None:
        try:
            shown = path.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return lint_source(path.read_text(encoding="utf-8"), str(shown),
                       rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(p for p in entry.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield entry


def lint_paths(paths: Iterable[str | Path], *,
               root: str | Path | None = None,
               rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, root=root, rules=active))
    return sorted(findings)
