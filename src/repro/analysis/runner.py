"""Walk files, parse them once, run every rule, honour suppressions.

The runner owns everything rules share: the parsed AST, a child->parent
map (rules climb it to classify the context of a node), the source lines
(for ``# repro-lint: ignore[...]`` suppression comments) and the file's
position inside the package (rules scope themselves to subpackages).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from .findings import Finding
from .registry import Rule, all_rules

#: Inline suppression: ``# repro-lint: ignore[R001]`` silences one rule on
#: that line, ``# repro-lint: ignore`` silences every rule.  Use sparingly
#: and justify in a neighbouring comment; prefer the baseline for legacy
#: findings.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Z0-9, ]+)\])?")


@dataclass
class FileContext:
    """Everything a rule may want to know about one file."""

    path: str                       # posix-style path used in findings
    tree: ast.Module
    source_lines: Sequence[str]
    package_parts: tuple[str, ...]  # path inside the repro package
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        posix = PurePosixPath(path.replace(os.sep, "/"))
        parts = posix.parts
        package = (parts[parts.index("repro") + 1:]
                   if "repro" in parts else parts)
        return cls(path=str(posix),
                   tree=ast.parse(source, filename=str(posix)),
                   source_lines=source.splitlines(),
                   package_parts=tuple(package))

    # -- helpers rules lean on --------------------------------------------

    @property
    def module(self) -> str:
        """Dotted module name inside the package ("serve.app")."""
        from .callgraph import module_name_of
        return module_name_of(self.package_parts)

    @property
    def subpackage(self) -> str:
        """First package directory under ``repro`` ('' for top level)."""
        if len(self.package_parts) > 1:
            return self.package_parts[0]
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda, else the module."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                return ancestor
        return self.tree

    def statement_of(self, node: ast.AST) -> ast.stmt:
        """The smallest statement containing ``node``."""
        current: ast.AST = node
        while not isinstance(current, ast.stmt):
            parent = self._parents.get(current)
            if parent is None:
                raise ValueError("node is not inside a statement")
            current = parent
        return current

    def is_suppressed(self, finding: Finding) -> bool:
        index = finding.line - 1
        if not 0 <= index < len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[index])
        if match is None:
            return False
        rules = match.group("rules")
        if rules is None:
            return True
        return finding.rule_id in {r.strip() for r in rules.split(",")}


def _check_files(contexts: Sequence[FileContext],
                 rules: Sequence[Rule]) -> list[Finding]:
    """Run the per-file rules over already-parsed contexts."""
    per_file = [rule for rule in rules if not rule.project]
    return [finding
            for ctx in contexts
            for rule in per_file
            for finding in rule.check(ctx)
            if not ctx.is_suppressed(finding)]


def _check_project(contexts: Sequence[FileContext],
                   rules: Sequence[Rule]) -> list[Finding]:
    """Run the project-level rules over one shared ``ProjectContext``.

    The symbol table and call graph are built exactly once per run,
    however many project rules are active; suppression comments still
    apply at the finding's own file/line.
    """
    project_rules = [rule for rule in rules if rule.project]
    if not project_rules:
        return []
    from .callgraph import ProjectContext
    project = ProjectContext(contexts)
    findings = []
    for rule in project_rules:
        for finding in rule.check_project(project):
            ctx = project.files.get(finding.path)
            if ctx is None or not ctx.is_suppressed(finding):
                findings.append(finding)
    return findings


def lint_sources(sources: dict[str, str],
                 rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint a set of in-memory modules as one project.

    ``sources`` maps fake in-repo paths to source text; this is the
    entry point for multi-file fixtures exercising the interprocedural
    rules (a call chain split across modules).
    """
    contexts = [FileContext.from_source(source, path)
                for path, source in sorted(sources.items())]
    active = list(rules) if rules is not None else all_rules()
    return sorted(_check_files(contexts, active)
                  + _check_project(contexts, active))


def lint_source(source: str, path: str,
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory source blob (the fixture tests' entry point).

    Project rules run too, over a one-file project — a fixture whose
    whole call chain lives in one module needs nothing more.
    """
    return lint_sources({path: source}, rules=rules)


def _shown_path(path: Path, root: str | Path | None) -> str:
    """Best-effort relativisation so baseline paths stay stable."""
    if root is not None:
        try:
            return str(path.resolve().relative_to(Path(root).resolve()))
        except ValueError:
            pass
    return str(path)


def lint_file(path: str | Path, *, root: str | Path | None = None,
              rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file; finding paths are relative to ``root`` if given.

    Files outside ``root`` keep their given spelling — relativisation is
    best-effort so baseline paths stay stable however the tree is named
    on the command line (absolute, relative, symlinked).
    """
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"),
                       _shown_path(path, root), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(p for p in entry.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield entry


def _read_sources(paths: Iterable[str | Path],
                  root: str | Path | None) -> dict[str, str]:
    return {_shown_path(file_path, root):
            file_path.read_text(encoding="utf-8")
            for file_path in iter_python_files(paths)}


def _lint_batch(batch: Sequence[tuple[str, str]],
                rule_ids: Sequence[str] | None) -> list[Finding]:
    """Worker entry point for ``--jobs``: per-file rules on one batch.

    Must stay module-level (picklable) and re-instantiate rules from
    their ids — rule objects themselves never cross the process
    boundary.
    """
    from .registry import all_rules as _all_rules
    rules = _all_rules(None if rule_ids is None
                       else lambda cls: cls.rule_id in set(rule_ids))
    contexts = [FileContext.from_source(source, path)
                for path, source in batch]
    return _check_files(contexts, rules)


def lint_paths(paths: Iterable[str | Path], *,
               root: str | Path | None = None,
               rules: Iterable[Rule] | None = None,
               jobs: int = 1) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories).

    With ``jobs > 1`` the per-file rule passes fan out over a process
    pool (one batch of files per worker); the interprocedural pass
    (symbol table + call graph + project rules) always runs single-pass
    in the parent — it needs every file at once and is cheap relative
    to the per-file sweeps.
    """
    active = list(rules) if rules is not None else all_rules()
    sources = _read_sources(paths, root)
    items = sorted(sources.items())
    contexts = [FileContext.from_source(source, path)
                for path, source in items]
    if jobs > 1 and len(items) > 1:
        from concurrent.futures import ProcessPoolExecutor
        jobs = min(jobs, len(items))
        batches = [items[index::jobs] for index in range(jobs)]
        rule_ids = [rule.rule_id for rule in active]
        findings: list[Finding] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for batch_findings in pool.map(
                    _lint_batch, batches, [rule_ids] * len(batches)):
                findings.extend(batch_findings)
    else:
        findings = _check_files(contexts, active)
    findings.extend(_check_project(contexts, active))
    return sorted(findings)
