"""``python -m repro.analysis`` — run the invariant lint."""

from .main import main

if __name__ == "__main__":
    raise SystemExit(main())
