"""Baseline files: pin deliberate legacy findings without blocking CI.

A baseline is a text file of rendered findings (one per line, ``#``
comments and blank lines ignored).  A lint run fails only on findings
*not* in the baseline; baseline entries that no longer fire are reported
as stale so the file can be re-tightened with ``--update-baseline``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .findings import Finding

_HEADER = """\
# repro lint baseline — deliberate legacy findings, pinned.
#
# Each line is one finding in `path:line:col: RULE message` form.
# Regenerate with:  python -m repro.analysis --update-baseline
# New findings (not listed here) fail the lint run; entries that stop
# firing are reported as stale and should be removed.
"""


@dataclass(frozen=True, slots=True)
class BaselineDiff:
    """Result of comparing a lint run against a baseline."""

    new: tuple[Finding, ...]        # fire now, not pinned -> fail
    pinned: tuple[Finding, ...]     # fire now, pinned -> allowed
    stale: tuple[str, ...]          # pinned, no longer fire -> warn

    @property
    def ok(self) -> bool:
        return not self.new


def load_baseline(path: str | Path) -> list[str]:
    """Rendered-finding lines from ``path`` ([] if the file is absent)."""
    path = Path(path)
    if not path.exists():
        return []
    lines = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            lines.append(line)
    return lines


def _existing_header(path: Path) -> str | None:
    """The leading comment block of an existing baseline, if any.

    ``--update-baseline`` must not clobber hand-written justification
    comments: everything from the top of the file down to the first
    non-comment, non-blank line is preserved verbatim on rewrite.
    """
    if not path.exists():
        return None
    kept: list[str] = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if stripped and not stripped.startswith("#"):
            break
        kept.append(raw)
    # Trim trailing blank lines so the header abuts the findings.
    while kept and not kept[-1].strip():
        kept.pop()
    if not kept:
        return None
    return "\n".join(kept) + "\n"


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline at ``path``.

    An existing file's leading comment block (the header plus any
    per-entry justification comments kept up there) survives the
    rewrite; a fresh file gets the default header.
    """
    path = Path(path)
    header = _existing_header(path)
    if header is None:
        header = _HEADER
    body = "".join(finding.render() + "\n"
                   for finding in sorted(set(findings)))
    path.write_text(header + body, encoding="utf-8")


def compare_to_baseline(findings: Iterable[Finding],
                        baseline_lines: Iterable[str]) -> BaselineDiff:
    """Split ``findings`` into new vs pinned, and spot stale entries."""
    baseline = set(baseline_lines)
    new = []
    pinned = []
    seen = set()
    for finding in sorted(set(findings)):
        rendered = finding.render()
        if rendered in baseline:
            pinned.append(finding)
            seen.add(rendered)
        else:
            new.append(finding)
    stale = tuple(sorted(baseline - seen))
    return BaselineDiff(new=tuple(new), pinned=tuple(pinned), stale=stale)
