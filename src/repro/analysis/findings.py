"""Lint findings: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation.

    Ordering is (path, line, col, rule_id) so reports and baseline files
    are stable across runs regardless of rule registration order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical one-line form, also used as the baseline key."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.rule_id} {self.message}"

    @staticmethod
    def parse(text: str) -> "Finding":
        """Invert :meth:`render` (used to read baseline files)."""
        location, _, rest = text.partition(": ")
        rule_id, _, message = rest.partition(" ")
        path, line, col = location.rsplit(":", 2)
        return Finding(path=path, line=int(line), col=int(col),
                       rule_id=rule_id, message=message)
