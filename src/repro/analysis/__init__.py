"""Project-specific static analysis (``repro lint``).

The previous PRs each established invariants that ordinary linters cannot
see: logical node-access counters must match the paper's cost model, the
storage layer owns all raw page I/O, errors cross module boundaries only
through the typed hierarchies, and the executor fan-out must stay free of
shared-state races.  This package machine-checks them.

Rules come in two shapes.  Per-file rules (R001-R007) see one parsed
module at a time through :class:`FileContext`.  Project rules
(R008-R010, plus any rule with ``project = True``) see the whole tree at
once through :class:`ProjectContext` — a symbol table and call graph
built once per run by :mod:`repro.analysis.callgraph` — because the
concurrency and durability invariants (lock-order cycles, blocking calls
reachable from coroutines, fsync-before-acknowledgement) are properties
of call *paths*, not of single files.

Entry points:

* ``python -m repro.analysis [paths...]`` — standalone runner,
* ``repro lint`` — the same runner wired into the main CLI,
* :func:`lint_paths` — programmatic API used by the test suite.

Findings are compared against a committed baseline file
(``lint-baseline.txt`` at the repository root) so deliberate legacy
findings are pinned without blocking CI; any *new* finding fails the run.
"""

from __future__ import annotations

from .baseline import compare_to_baseline, load_baseline, write_baseline
from .callgraph import ClassInfo, FunctionInfo, ProjectContext
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register
from .runner import (FileContext, lint_file, lint_paths, lint_source,
                     lint_sources)

__all__ = [
    "ClassInfo",
    "Finding",
    "FileContext",
    "FunctionInfo",
    "ProjectContext",
    "Rule",
    "all_rules",
    "compare_to_baseline",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "register",
    "write_baseline",
]
