"""Exception types of the serving layer.

The serving front end sits above the engine layer and gets its own
small hierarchy rooted at :class:`ServeError`:

* :class:`BadRequest` — the request itself is malformed (unparseable
  body, missing field, out-of-domain value).  Maps to HTTP 400.
* :class:`Overloaded` — the bounded admission queue is full; the
  request was rejected *without* being queued.  Carries the observed
  depth, the capacity, and a suggested retry delay.  Maps to HTTP 503
  with a ``Retry-After`` header.
* :class:`DeadlineExceeded` — the request's deadline elapsed while it
  was queued, lingering in the coalescer, or waiting out a slide
  barrier.  Maps to HTTP 504.
* :class:`ServeClosedError` — the server is shutting down (or already
  closed) and stopped accepting work.  Maps to HTTP 503.

Engine-layer errors (:class:`~repro.engine.errors.ShardQueryError`,
:class:`~repro.engine.errors.EngineError`) pass through the facade
unchanged; the HTTP layer maps them to 5xx responses.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for serving-layer failures."""


class BadRequest(ServeError):
    """The request is malformed; nothing was executed."""


class Overloaded(ServeError):
    """The admission queue is full; the request was rejected untried.

    Attributes:
        depth: in-flight requests observed at rejection time.
        capacity: the admission queue bound.
        retry_after: suggested client back-off in seconds (jittered
            when the admission controller was given an rng seam).
    """

    def __init__(self, depth: int, capacity: int,
                 retry_after: float) -> None:
        super().__init__(
            f"admission queue full ({depth}/{capacity} in flight); "
            f"retry in {retry_after:.3f}s")
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class DeadlineExceeded(ServeError):
    """The per-request deadline elapsed before a result was produced.

    The engine call itself is never preempted — a request that timed
    out while its batch was already executing completes server-side
    with nobody waiting (same contract as the executor layer's
    per-task deadlines).

    Attributes:
        timeout: the request's deadline in seconds.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(f"request exceeded its {timeout}s deadline")
        self.timeout = timeout


class ServeClosedError(ServeError):
    """An operation was attempted on a closed (or closing) server."""
