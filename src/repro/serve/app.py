"""The serving application: routing, admission, deadlines, error model.

:class:`ServeApp` is the transport-independent core of the front end.
It wires the three serving mechanisms around one
:class:`~repro.serve.async_engine.AsyncEngine`:

* every data-plane request passes **admission control** first (typed
  ``Overloaded`` rejection at the bound; the control plane is exempt so
  slides and health probes work under saturation);
* scalar queries pass through the **coalescer**;
* the handler body runs under the request's **deadline**
  (``X-Deadline`` header, else the server default) — on expiry the
  waiter gets a 504 while any engine call already executing completes
  server-side unobserved (the executor layer's deadline contract).

Failure model (every row tested):

    ==========================  ======  ===================================
    condition                   status  body / headers
    ==========================  ======  ===================================
    malformed request           400     ``error: bad_request`` + detail
    unknown path                404     ``error: not_found``
    wrong method on known path  405     ``error: method_not_allowed``
    degraded (partial) result   206     payload + ``degraded: true``
    admission queue full        503     ``error: overloaded``,
                                        ``Retry-After`` header
    reshard already in flight   409     ``error: reshard_in_progress``
    server closing              503     ``error: closed``
    deadline elapsed            504     ``error: deadline_exceeded``
    strict shard failure        500     ``error: shard_failure`` + shard
    unexpected engine error     500     ``error: internal`` + type name
    ==========================  ======  ===================================
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from ..engine.errors import (EngineClosedError, EngineError,
                             ReshardInProgressError, ShardQueryError)
from .admission import AdmissionController
from .async_engine import AsyncEngine
from .coalesce import Coalescer, Timer
from .errors import (BadRequest, DeadlineExceeded, Overloaded,
                     ServeClosedError)
from .routers import ROUTES, UNGATED
from .stats import ServeStats
from .wire import Request, Response, result_json

Handler = Callable[["ServeApp", Request], Awaitable[Response]]


class ServeApp:
    """Routing core of the serving front end (no sockets in here).

    Args:
        engine: the async facade to serve (borrowed).
        capacity: admission bound — data-plane requests in flight.
        max_batch: coalescer flush threshold; ``1`` disables
            coalescing (the A/B baseline the benchmark compares).
        max_linger: coalescer linger window in seconds (``0`` = one
            event-loop tick).
        request_timeout: default per-request deadline in seconds;
            ``None`` means no deadline unless the client sends
            ``X-Deadline``.
        retry_after: base back-off hint attached to 503 rejections.
        rng: optional jitter seam for the back-off hint
            (``() -> float in [0, 1)``), injected at the CLI edge.
        timer: optional linger-timer seam for the coalescer.
    """

    def __init__(self, engine: AsyncEngine, *, capacity: int = 64,
                 max_batch: int = 64, max_linger: float = 0.0,
                 request_timeout: float | None = None,
                 retry_after: float = 0.05,
                 rng: Callable[[], float] | None = None,
                 timer: Timer | None = None) -> None:
        self.engine = engine
        self.stats: ServeStats = engine.stats
        self.coalescer = Coalescer(engine, self.stats,
                                   max_batch=max_batch,
                                   max_linger=max_linger, timer=timer)
        self.admission = AdmissionController(capacity, self.stats,
                                             retry_after=retry_after,
                                             rng=rng)
        self.request_timeout = request_timeout
        self._routes: dict[tuple[str, str], Handler] = {
            (method, path): handler for method, path, handler in ROUTES}
        self._paths = {path for _, path, _ in ROUTES}

    # -- shared response helpers -----------------------------------------------

    def query_response(self, result: Any) -> Response:
        """Entries + stats; 206 when the result is partial."""
        payload = result_json(result)
        if payload["degraded"]:
            self.stats.degraded_responses += 1
            return Response(206, payload)
        return Response(200, payload)

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters plus live gauges (gate, coalescer, admission)."""
        snapshot = self.stats.snapshot()
        snapshot["gate"] = self.engine.gate.state
        snapshot["admission_capacity"] = self.admission.capacity
        snapshot.update(self.coalescer.stats_view())
        return snapshot

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(self, handler: Handler,
                        request: Request) -> Response:
        deadline = request.deadline(self.request_timeout)
        if deadline is None:
            return await handler(self, request)
        try:
            return await asyncio.wait_for(handler(self, request),
                                          deadline)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(deadline) from None

    async def handle(self, request: Request) -> Response:
        """Route one request through admission, deadline, and the
        error model; always returns a :class:`Response`."""
        self.stats.requests_total += 1
        try:
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                if request.path in self._paths:
                    response = Response(
                        405, {"error": "method_not_allowed",
                              "detail": f"{request.method} not "
                                        f"allowed on {request.path}"})
                else:
                    response = Response(
                        404, {"error": "not_found",
                              "detail": request.path})
            elif (request.method, request.path) in UNGATED:
                response = await self._dispatch(handler, request)
            else:
                async with self.admission.admit():
                    response = await self._dispatch(handler, request)
        except Overloaded as exc:
            response = Response(
                503, {"error": "overloaded", "depth": exc.depth,
                      "capacity": exc.capacity,
                      "retry_after": exc.retry_after},
                {"Retry-After": f"{exc.retry_after:.3f}"})
        except DeadlineExceeded as exc:
            self.stats.deadline_rejections += 1
            response = Response(
                504, {"error": "deadline_exceeded",
                      "timeout": exc.timeout})
        except BadRequest as exc:
            self.stats.bad_requests += 1
            response = Response(400, {"error": "bad_request",
                                      "detail": str(exc)})
        except ShardQueryError as exc:
            self.stats.strict_failures += 1
            response = Response(
                500, {"error": "shard_failure",
                      "shard_id": exc.shard_id, "path": exc.path,
                      "detail": str(exc)})
        except ReshardInProgressError as exc:
            response = Response(409, {"error": "reshard_in_progress",
                                      "detail": str(exc)})
        except (ServeClosedError, EngineClosedError) as exc:
            response = Response(503, {"error": "closed",
                                      "detail": str(exc)})
        except (EngineError, ValueError) as exc:
            # Engine-level invariant violations (bad domain values the
            # wire checks missed, circuit-open strict paths, ...) are
            # server errors, reported by type so clients can tell them
            # apart without parsing prose.
            response = Response(
                500, {"error": "internal",
                      "type": type(exc).__name__, "detail": str(exc)})
        self.stats.responses_total += 1
        return response

    # -- lifecycle -------------------------------------------------------------

    async def drain(self) -> None:
        """Flush the coalescer and wait out in-flight engine calls."""
        await self.coalescer.drain()
        await self.engine.drain()
