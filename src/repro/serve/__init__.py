"""Asynchronous serving front end over the sharded SWST engine.

The serve package turns one :class:`~repro.engine.ShardedEngine` (or
warm-worker :class:`~repro.engine.WorkerEngine`) into a network
service with the paper's sliding-window semantics preserved end to
end:

* :class:`AsyncEngine` — asyncio facade bridging blocking engine calls
  through the Executor seam; reads share a
  :class:`~repro.serve.gate.SlideGate`, mutations run on a
  single-writer FIFO lane, and ``advance_time`` *is* the slide barrier.
* :class:`Coalescer` — concurrent queries sharing a temporal signature
  merge into one plan-cache-aligned ``query_interval_many`` call with
  per-request demultiplexing (strictness included).
* :class:`AdmissionController` — a bounded in-flight window with typed
  :class:`Overloaded` rejection and jittered retry hints.
* :class:`ServeApp` + :class:`HttpServer` — stdlib-only HTTP/JSON
  routing (insert/report/close/extend, query/count/knn scalar and
  batch, slide/save, ``/healthz``, ``/stats``) with per-request
  deadlines and 206-style degraded responses.

``repro serve`` (see :mod:`repro.cli`) assembles the stack via
:func:`~repro.serve.main.serve`; ``docs/internals.md`` documents the
coalescing window semantics, the slide-barrier state machine, and the
failure model.
"""

from .admission import AdmissionController
from .app import ServeApp
from .async_engine import AsyncEngine
from .coalesce import Coalescer
from .errors import (BadRequest, DeadlineExceeded, Overloaded,
                     ServeClosedError, ServeError)
from .gate import SlideGate
from .http import HttpServer
from .main import ServeOptions, build_engine, run, serve
from .stats import ServeStats
from .wire import Request, Response, WireReport

__all__ = [
    "AdmissionController",
    "AsyncEngine",
    "BadRequest",
    "Coalescer",
    "DeadlineExceeded",
    "HttpServer",
    "Overloaded",
    "Request",
    "Response",
    "ServeApp",
    "ServeClosedError",
    "ServeError",
    "ServeOptions",
    "ServeStats",
    "SlideGate",
    "WireReport",
    "build_engine",
    "run",
    "serve",
]
