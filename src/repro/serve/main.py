"""Server assembly: options -> engine -> app -> listening socket.

``repro serve`` lands here.  :func:`serve` builds the whole stack —
engine (sharded or warm-worker), async facade, application, HTTP
adapter — inside one ``AsyncExitStack`` so a failure at *any* stage of
startup (bad directory, torn epoch, port in use) unwinds every resource
already acquired: the socket closes, in-flight work drains, the facade
shuts its pool, the engine closes.  The same stack runs the shutdown
path, so "startup failed halfway" and "clean shutdown" are literally
the same code.

Determinism seams stop at this edge: :class:`ServeOptions` carries the
``rng`` (retry-hint jitter) and ``timer`` (coalescer linger) callables;
``repro.cli`` wires real ``random``/event-loop timers into them, and
tests wire fakes.  The ``serve`` package itself never reads a clock.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from ..core.config import SWSTConfig
from ..engine import (RetryPolicy, ShardedEngine, WorkerEngine,
                      resolve_executor)
from .app import ServeApp
from .async_engine import AsyncEngine
from .coalesce import Timer
from .http import HttpServer, render_curl_examples
from .stats import ServeStats


@dataclass
class ServeOptions:
    """Everything ``repro serve`` needs to assemble a server.

    Attributes:
        index: engine directory to open (or create when ``create``).
        config: index parameters (must match the directory when
            opening).
        create: build a fresh directory instead of opening one.
        workers: run shards in warm worker processes (WAL-durable)
            instead of in-process.
        executor: in-process scatter-gather executor spec
            (``serial`` | ``thread[:N]``); ignored with ``workers``.
        host, port: bind address (port ``0`` = pick a free one).
        capacity: admission bound (concurrent data-plane requests).
        max_batch: coalescer flush threshold (``1`` disables).
        max_linger: coalescer linger window, seconds.
        request_timeout: default per-request deadline, seconds
            (``None`` = no default deadline).
        retry_policy: shard retry policy, wired at the CLI edge.
        rng: retry-hint jitter seam (``() -> float in [0, 1)``).
        timer: coalescer linger-timer seam.
        pool_workers: threads bridging blocking engine calls.
    """

    index: str
    config: SWSTConfig = field(default_factory=SWSTConfig)
    create: bool = False
    workers: bool = False
    executor: str = "thread"
    host: str = "127.0.0.1"
    port: int = 0
    capacity: int = 64
    max_batch: int = 64
    max_linger: float = 0.0
    request_timeout: float | None = None
    retry_policy: RetryPolicy | None = None
    rng: Callable[[], float] | None = None
    timer: Timer | None = None
    pool_workers: int = 2


def build_engine(options: ServeOptions,
                 stack: contextlib.ExitStack) -> Any:
    """Open (or create) the engine named by ``options`` onto ``stack``.

    Mirrors the CLI's ``_open_index`` resource discipline: the resolved
    executor's ``close`` is registered before the engine might fail to
    open, and the engine itself is entered as a context so a later
    startup failure closes it.
    """
    if options.workers:
        engine: Any = (
            WorkerEngine(options.config, options.index,
                         retry_policy=options.retry_policy)
            if options.create
            else WorkerEngine.open(options.index, options.config,
                                   retry_policy=options.retry_policy))
        stack.enter_context(engine)
        return engine
    executor = resolve_executor(options.executor)
    stack.callback(executor.close)
    engine = (
        ShardedEngine(options.config, options.index, executor=executor,
                      retry_policy=options.retry_policy)
        if options.create
        else ShardedEngine.open(options.index, options.config,
                                executor=executor,
                                retry_policy=options.retry_policy))
    stack.enter_context(engine)
    return engine


async def serve(options: ServeOptions, *,
                ready: Callable[[HttpServer, ServeApp],
                                Awaitable[None] | None] | None = None,
                shutdown: asyncio.Event | None = None,
                echo: Callable[[str], None] = print) -> ServeStats:
    """Run the server until ``shutdown`` is set (or forever).

    Args:
        options: the assembly recipe.
        ready: awaited (or called) once the socket is listening —
            tests use it to learn the bound port and drive traffic.
        shutdown: event that ends the serve loop; ``None`` serves
            until cancelled.
        echo: where startup lines go (quiet tests pass a sink).

    Returns the final counters (handy for tests and the bench client).
    """
    if shutdown is None:
        shutdown = asyncio.Event()
    with contextlib.ExitStack() as stack:
        engine = build_engine(options, stack)
        facade = AsyncEngine(engine, max_workers=options.pool_workers)
        stack.callback(facade.close)
        app = ServeApp(facade, capacity=options.capacity,
                       max_batch=options.max_batch,
                       max_linger=options.max_linger,
                       request_timeout=options.request_timeout,
                       rng=options.rng, timer=options.timer)
        server = HttpServer(app, host=options.host, port=options.port)
        await server.start()
        try:
            echo(f"serving {options.index} on {server.address} "
                 f"(capacity={options.capacity}, "
                 f"max_batch={options.max_batch})")
            for line in render_curl_examples(server.address):
                echo(f"  {line}")
            if ready is not None:
                maybe = ready(server, app)
                if maybe is not None:
                    await maybe
            await shutdown.wait()
        finally:
            # Stop the listener first (no new connections), then let
            # lingering batches and engine calls finish before the
            # ExitStack closes the facade and the engine underneath.
            await server.aclose()
            await app.drain()
        return app.stats


def run(options: ServeOptions) -> int:
    """Blocking entry point for the CLI: serve until interrupted."""
    try:
        asyncio.run(serve(options))
    except KeyboardInterrupt:
        return 0
    return 0
