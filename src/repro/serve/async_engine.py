"""Asyncio facade over the sharded engine: the serving data plane.

:class:`AsyncEngine` bridges the blocking engine API
(:class:`~repro.engine.ShardedEngine` / ``WorkerEngine``) into
``asyncio`` through the engine layer's :class:`~repro.engine.Executor`
seam (``submit`` + ``asyncio.wrap_future``), with the concurrency
contract the stack below actually supports:

* **One engine call at a time.**  The SWST stack is explicitly *not*
  thread-safe for concurrent callers (buffer-pool LRU state, the plan
  cache, and circuit-breaker accounting are all unlocked), so every
  call through the facade holds one internal mutex.  Request-level
  concurrency comes from *coalescing* — many queries share one
  ``query_interval_many`` call — and from the engine's own shard-level
  fan-out inside that single call, not from racing engine calls.
* **Reads share, mutations serialize.**  Read requests hold the read
  side of the :class:`~repro.serve.gate.SlideGate`, so any number can
  be in flight (admitted, queued, coalescing) between slides.
  Mutations take the exclusive side, forming the single-writer ingest
  lane: FIFO, one at a time, preserving the report stream's timestamp
  monotonicity whatever the HTTP-level interleaving.
* **The slide is a barrier.**  ``advance_time`` is just a writer, so
  acquiring the exclusive side *is* the barrier: in-flight reads drain,
  the slide runs, parked requests release.  No extra machinery.

The facade borrows the engine — closing the facade shuts down its own
executor (if owned) but leaves the engine to its owner (the server's
``ExitStack``).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Iterable, TypeVar

from ..core.records import Rect, ReportLike
from ..core.results import MultiQueryResult, QueryResult, QueryStats
from ..engine.executor import Executor, ThreadedExecutor
from .errors import ServeClosedError
from .gate import SlideGate
from .stats import ServeStats

T = TypeVar("T")


class AsyncEngine:
    """Async facade over one sharded (or warm-worker) engine.

    Args:
        engine: the engine to serve; must expose the ``ShardedEngine``
            query/ingest surface (``strict=`` keywords included).  The
            facade *borrows* it — the caller owns open/close.
        executor: pool the blocking calls run on, via the Executor
            seam's ``submit``.  Defaults to an owned
            :class:`~repro.engine.ThreadedExecutor` with
            ``max_workers`` threads; remote (process) executors are
            rejected — they cannot see the live engine.
        max_workers: size of the owned default pool.  More than one
            thread only helps overlap a detached straggler (a call
            whose waiter gave up on its deadline) with the next call;
            engine calls themselves are mutually exclusive.
        stats: shared serving counters; a fresh block if omitted.
    """

    def __init__(self, engine: Any, *, executor: Executor | None = None,
                 max_workers: int = 2,
                 stats: ServeStats | None = None) -> None:
        if executor is not None and getattr(executor, "remote", False):
            raise ValueError("AsyncEngine needs an in-process executor; "
                             "remote (process) pools cannot reach the "
                             "live engine")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._engine = engine
        if executor is None:
            self._executor: Executor = ThreadedExecutor(
                max_workers=max_workers)
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False
        self._gate = SlideGate()
        self._mutex = threading.Lock()
        self._stats = stats if stats is not None else ServeStats()
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def engine(self) -> Any:
        """The wrapped engine (borrowed, not owned)."""
        return self._engine

    @property
    def gate(self) -> SlideGate:
        """The slide barrier (read side = queries, write side = lane)."""
        return self._gate

    @property
    def stats(self) -> ServeStats:
        """Shared serving counters."""
        return self._stats

    @property
    def now(self) -> int:
        """Engine stream time (unsynchronised snapshot, diagnostics)."""
        return int(self._engine.now)

    @property
    def config(self) -> Any:
        return self._engine.config

    def _check_open(self) -> None:
        if self._closed:
            raise ServeClosedError("serving facade is closed")

    # -- the bridge ------------------------------------------------------------

    async def _run(self, fn: Callable[[], T]) -> T:
        """Run one blocking engine call on the pool, mutually excluded.

        The mutex is taken *inside* the pool thread so the event loop
        never blocks on it; the submitted callable mutates nothing it
        closes over (R005) — results come back through the future.
        """
        mutex = self._mutex

        def call() -> T:
            with mutex:
                return fn()

        return await asyncio.wrap_future(self._executor.submit(call))

    async def read(self, fn: Callable[[], T]) -> T:
        """Run a read-only engine call under the gate's shared side."""
        self._check_open()
        async with self._gate.read():
            return await self._run(fn)

    async def write(self, fn: Callable[[], T]) -> T:
        """Run a mutating engine call on the single-writer lane."""
        self._check_open()
        async with self._gate.write():
            return await self._run(fn)

    # -- queries (read side) ---------------------------------------------------

    async def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                             window: int | None = None, *,
                             strict: bool = True) -> QueryResult:
        engine = self._engine
        return await self.read(
            lambda: engine.query_interval(area, t_lo, t_hi, window,
                                          strict=strict))

    async def query_timeslice(self, area: Rect, t: int,
                              window: int | None = None, *,
                              strict: bool = True) -> QueryResult:
        return await self.query_interval(area, t, t, window, strict=strict)

    async def query_interval_many(self, areas: Iterable[Rect], t_lo: int,
                                  t_hi: int, window: int | None = None, *,
                                  strict: bool = True) -> MultiQueryResult:
        engine = self._engine
        areas = list(areas)
        return await self.read(
            lambda: engine.query_interval_many(areas, t_lo, t_hi, window,
                                               strict=strict))

    async def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                             window: int | None = None, *,
                             strict: bool = True) -> tuple[int, QueryStats]:
        engine = self._engine
        return await self.read(
            lambda: engine.count_interval(area, t_lo, t_hi, window,
                                          strict=strict))

    async def query_knn(self, x: int, y: int, k: int, t_lo: int,
                        t_hi: int | None = None,
                        window: int | None = None, *,
                        strict: bool = True) -> QueryResult:
        engine = self._engine
        return await self.read(
            lambda: engine.query_knn(x, y, k, t_lo, t_hi, window,
                                     strict=strict))

    # -- mutations (single-writer lane) ----------------------------------------

    async def insert(self, oid: int, x: int, y: int, s: int,
                     d: int | None = None) -> None:
        engine = self._engine
        await self.write(lambda: engine.insert(oid, x, y, s, d))
        self._stats.mutations += 1
        self._stats.ingested_reports += 1

    async def report(self, oid: int, x: int, y: int, t: int) -> None:
        await self.insert(oid, x, y, t, None)

    async def extend(self, reports: Iterable[ReportLike]) -> int:
        engine = self._engine
        batch = list(reports)
        count = int(await self.write(lambda: engine.extend(batch)))
        self._stats.mutations += 1
        self._stats.ingested_reports += count
        return count

    async def close_object(self, oid: int, t: int) -> bool:
        engine = self._engine
        closed = bool(await self.write(lambda: engine.close_object(oid, t)))
        self._stats.mutations += 1
        return closed

    async def advance_time(self, now: int) -> None:
        """Slide barrier: drain in-flight reads, slide, release."""
        engine = self._engine
        await self.write(lambda: engine.advance_time(now))
        self._stats.slides += 1

    async def save(self) -> None:
        """Whole-directory save, exclusive like any other mutation."""
        engine = self._engine
        await self.write(lambda: engine.save())
        self._stats.saves += 1

    # -- lifecycle -------------------------------------------------------------

    async def drain(self) -> None:
        """Wait out every in-flight engine call (a no-op writer pass)."""
        async with self._gate.write():
            pass

    def close(self) -> None:
        """Stop accepting work and shut down the owned pool.

        Synchronous so it slots into the server's ``ExitStack``; the
        borrowed engine is left open for its owner.  Safe to call more
        than once.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_executor:
            self._executor.close()
