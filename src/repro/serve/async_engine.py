"""Asyncio facade over the sharded engine: the serving data plane.

:class:`AsyncEngine` bridges the blocking engine API
(:class:`~repro.engine.ShardedEngine` / ``WorkerEngine``) into
``asyncio`` through the engine layer's :class:`~repro.engine.Executor`
seam (``submit`` + ``asyncio.wrap_future``), with the concurrency
contract the stack below actually supports:

* **One engine call at a time.**  The SWST stack is explicitly *not*
  thread-safe for concurrent callers (buffer-pool LRU state, the plan
  cache, and circuit-breaker accounting are all unlocked), so every
  call through the facade holds one internal mutex.  Request-level
  concurrency comes from *coalescing* — many queries share one
  ``query_interval_many`` call — and from the engine's own shard-level
  fan-out inside that single call, not from racing engine calls.
* **Reads share, mutations serialize.**  Read requests hold the read
  side of the :class:`~repro.serve.gate.SlideGate`, so any number can
  be in flight (admitted, queued, coalescing) between slides.
  Mutations take the exclusive side, forming the single-writer ingest
  lane: FIFO, one at a time, preserving the report stream's timestamp
  monotonicity whatever the HTTP-level interleaving.
* **The slide is a barrier.**  ``advance_time`` is just a writer, so
  acquiring the exclusive side *is* the barrier: in-flight reads drain,
  the slide runs, parked requests release.  No extra machinery.

The facade borrows the engine — closing the facade shuts down its own
executor (if owned) but leaves the engine to its owner (the server's
``ExitStack``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from typing import Any, Callable, Iterable, TypeVar

from ..core.records import Rect, ReportLike
from ..core.results import MultiQueryResult, QueryResult, QueryStats
from ..engine.errors import ReshardError, ReshardInProgressError
from ..engine.executor import Executor, ThreadedExecutor
from ..engine.reshard import GenerationBuild, ReshardReport
from ..engine.worker import WorkerEngine
from .errors import ServeClosedError
from .gate import SlideGate
from .stats import ServeStats

T = TypeVar("T")


class AsyncEngine:
    """Async facade over one sharded (or warm-worker) engine.

    Args:
        engine: the engine to serve; must expose the ``ShardedEngine``
            query/ingest surface (``strict=`` keywords included).  The
            facade *borrows* it — the caller owns open/close.
        executor: pool the blocking calls run on, via the Executor
            seam's ``submit``.  Defaults to an owned
            :class:`~repro.engine.ThreadedExecutor` with
            ``max_workers`` threads; remote (process) executors are
            rejected — they cannot see the live engine.
        max_workers: size of the owned default pool.  More than one
            thread only helps overlap a detached straggler (a call
            whose waiter gave up on its deadline) with the next call;
            engine calls themselves are mutually exclusive.
        stats: shared serving counters; a fresh block if omitted.
    """

    def __init__(self, engine: Any, *, executor: Executor | None = None,
                 max_workers: int = 2,
                 stats: ServeStats | None = None) -> None:
        if executor is not None and getattr(executor, "remote", False):
            raise ValueError("AsyncEngine needs an in-process executor; "
                             "remote (process) pools cannot reach the "
                             "live engine")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._engine = engine
        if executor is None:
            self._executor: Executor = ThreadedExecutor(
                max_workers=max_workers)
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False
        self._gate = SlideGate()
        self._mutex = threading.Lock()
        self._stats = stats if stats is not None else ServeStats()
        self._closed = False
        # Online-reshard state: the facade borrows the engine it was
        # built around, but *owns* any engine it swapped in itself.
        self._owns_engine = False
        self._resharding = False
        #: Catch-up journal: while a reshard's background build runs,
        #: every mutation applied to the live engine is also recorded
        #: here and replayed into the new generation before the flip.
        #: Touched only on pool threads under ``_mutex``.
        self._journal: list[tuple[str, tuple[Any, ...]]] | None = None

    # -- introspection ---------------------------------------------------------

    @property
    def engine(self) -> Any:
        """The wrapped engine (borrowed, not owned)."""
        return self._engine

    @property
    def gate(self) -> SlideGate:
        """The slide barrier (read side = queries, write side = lane)."""
        return self._gate

    @property
    def stats(self) -> ServeStats:
        """Shared serving counters."""
        return self._stats

    @property
    def now(self) -> int:
        """Engine stream time (unsynchronised snapshot, diagnostics)."""
        return int(self._engine.now)

    @property
    def config(self) -> Any:
        return self._engine.config

    def _check_open(self) -> None:
        if self._closed:
            raise ServeClosedError("serving facade is closed")

    # -- the bridge ------------------------------------------------------------

    async def _run(self, fn: Callable[[], T]) -> T:
        """Run one blocking engine call on the pool, mutually excluded.

        The mutex is taken *inside* the pool thread so the event loop
        never blocks on it; the submitted callable mutates nothing it
        closes over (R005) — results come back through the future.
        """
        mutex = self._mutex

        def call() -> T:
            with mutex:
                return fn()

        return await asyncio.wrap_future(self._executor.submit(call))

    async def read(self, fn: Callable[[], T]) -> T:
        """Run a read-only engine call under the gate's shared side."""
        self._check_open()
        async with self._gate.read():
            return await self._run(fn)

    async def write(self, fn: Callable[[], T]) -> T:
        """Run a mutating engine call on the single-writer lane."""
        self._check_open()
        async with self._gate.write():
            return await self._run(fn)

    # -- queries (read side) ---------------------------------------------------

    async def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                             window: int | None = None, *,
                             strict: bool = True) -> QueryResult:
        # Every closure resolves ``self._engine`` *inside* the pool
        # thread (under the mutex), never at call-build time: an online
        # reshard may swap the engine while this request waits its turn.
        return await self.read(
            lambda: self._engine.query_interval(area, t_lo, t_hi, window,
                                                strict=strict))

    async def query_timeslice(self, area: Rect, t: int,
                              window: int | None = None, *,
                              strict: bool = True) -> QueryResult:
        return await self.query_interval(area, t, t, window, strict=strict)

    async def query_interval_many(self, areas: Iterable[Rect], t_lo: int,
                                  t_hi: int, window: int | None = None, *,
                                  strict: bool = True) -> MultiQueryResult:
        areas = list(areas)
        return await self.read(
            lambda: self._engine.query_interval_many(areas, t_lo, t_hi,
                                                     window, strict=strict))

    async def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                             window: int | None = None, *,
                             strict: bool = True) -> tuple[int, QueryStats]:
        return await self.read(
            lambda: self._engine.count_interval(area, t_lo, t_hi, window,
                                                strict=strict))

    async def query_knn(self, x: int, y: int, k: int, t_lo: int,
                        t_hi: int | None = None,
                        window: int | None = None, *,
                        strict: bool = True) -> QueryResult:
        return await self.read(
            lambda: self._engine.query_knn(x, y, k, t_lo, t_hi, window,
                                           strict=strict))

    # -- mutations (single-writer lane) ----------------------------------------

    def _mutate(self, name: str, *args: Any) -> Callable[[], Any]:
        """Closure applying one mutation and journaling it if it took.

        Runs on a pool thread under the mutex; the journal append comes
        *after* the engine call, so a rejected mutation is never
        replayed into a resharding build.
        """
        def op() -> Any:
            result = getattr(self._engine, name)(*args)
            if self._journal is not None:
                self._journal.append((name, args))
            return result

        return op

    async def insert(self, oid: int, x: int, y: int, s: int,
                     d: int | None = None) -> None:
        await self.write(self._mutate("insert", oid, x, y, s, d))
        self._stats.mutations += 1
        self._stats.ingested_reports += 1

    async def report(self, oid: int, x: int, y: int, t: int) -> None:
        await self.insert(oid, x, y, t, None)

    async def extend(self, reports: Iterable[ReportLike]) -> int:
        batch = list(reports)
        count = int(await self.write(self._mutate("extend", batch)))
        self._stats.mutations += 1
        self._stats.ingested_reports += count
        return count

    async def close_object(self, oid: int, t: int) -> bool:
        closed = bool(await self.write(
            self._mutate("close_object", oid, t)))
        self._stats.mutations += 1
        return closed

    async def advance_time(self, now: int) -> None:
        """Slide barrier: drain in-flight reads, slide, release."""
        await self.write(self._mutate("advance_time", now))
        self._stats.slides += 1

    async def save(self) -> None:
        """Whole-directory save, exclusive like any other mutation.

        Refused while a reshard is in flight: the reshard's own commit
        is the next epoch flip, and a concurrent save would race it for
        the manifest (and invalidate the frozen staging copies).
        """
        if self._resharding:
            raise ReshardInProgressError(
                "a reshard is in flight; its commit is the next epoch "
                "flip — retry save() after it completes")
        await self.write(lambda: self._engine.save())
        self._stats.saves += 1

    # -- online reshard --------------------------------------------------------

    async def reshard(self, new_n_shards: int) -> ReshardReport:
        """Reshard the served directory while continuing to serve.

        Three-phase protocol over the slide gate:

        1. **Freeze** (exclusive): checkpoint (``save()``), validate the
           reshard preconditions, stage the source copies
           (:meth:`GenerationBuild.stage`), install the catch-up
           journal.  Bounded work — one save plus one file copy per
           shard.
        2. **Build** (off-gate): stream the frozen copies into the new
           generation on a pool thread.  Reads and writes run normally
           throughout; every mutation is journaled.
        3. **Flip** (exclusive): replay the journal into the new
           generation, commit the generation flip, swap the served
           engine, close the old one.

        A failure in any phase uninstalls the journal and aborts the
        build; the old generation keeps serving untouched.
        """
        self._check_open()
        if self._resharding:
            raise ReshardInProgressError(
                "a reshard is already in flight; retry after it "
                "completes")
        directory = getattr(self._engine, "_dir", None)
        if directory is None:
            raise ReshardError(
                "only disk-backed engines can reshard; this engine has "
                "no directory")
        self._resharding = True
        try:
            async with self._gate.write():
                build = await self._run(
                    lambda: self._freeze_reshard(directory, new_n_shards))
            try:
                await asyncio.wrap_future(self._executor.submit(build.build))
                async with self._gate.write():
                    report = await self._run(
                        lambda: self._flip_reshard(build))
            except BaseException:
                def drop() -> None:
                    self._journal = None
                    build.abort()

                await self._run(drop)
                raise
        finally:
            self._resharding = False
        self._stats.reshards += 1
        return report

    def _freeze_reshard(self, directory: str,
                        new_n_shards: int) -> GenerationBuild:
        """Phase 1 body (pool thread, exclusive): checkpoint + stage."""
        engine = self._engine
        engine.save()
        executor = None
        if not isinstance(engine, WorkerEngine) \
                and not getattr(engine, "_owns_executor", True):
            # The new generation can share a caller-owned executor; an
            # engine-owned one dies with the old engine at the swap.
            executor = engine._executor
        build = GenerationBuild(
            directory, new_n_shards, engine.config, executor=executor,
            file_ops=engine._fops,
            snapshots=getattr(engine, "_snapshots", True))
        build.stage()
        self._journal = []
        return build

    def _flip_reshard(self, build: GenerationBuild) -> ReshardReport:
        """Phase 3 body (pool thread, exclusive): replay, flip, swap."""
        journal, self._journal = self._journal, None
        target = build.engine
        for name, args in journal or ():
            getattr(target, name)(*args)
        report = build.commit()
        old = self._engine
        if isinstance(old, WorkerEngine):
            # The worker engine's process pool must be respawned around
            # the new shard layout; the build's in-process engine only
            # carried the data.
            build.close()
            self._engine = WorkerEngine.open(
                report.directory,
                dataclasses.replace(old.config,
                                    n_shards=report.new_n_shards),
                retry_policy=old._retry_policy, file_ops=old._fops)
        else:
            self._engine = build.detach_engine()
        self._owns_engine = True
        # If the old engine was borrowed, its owner (the server's exit
        # stack) still calls close() at shutdown — close is idempotent —
        # but its workers/pagers must stop serving the dropped
        # generation now.
        old.close()
        return report

    # -- lifecycle -------------------------------------------------------------

    async def drain(self) -> None:
        """Wait out every in-flight engine call (a no-op writer pass)."""
        async with self._gate.write():
            pass

    def close(self) -> None:
        """Stop accepting work and shut down the owned pool.

        Synchronous so it slots into the server's ``ExitStack``; the
        borrowed engine is left open for its owner — but an engine the
        facade swapped in itself (online reshard) is the facade's to
        close.  Safe to call more than once.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_executor:
            self._executor.close()
        if self._owns_engine:
            self._engine.close()
