"""Serving-layer counters surfaced by the ``/stats`` endpoint.

All counters are mutated from the event-loop thread only (handlers,
the coalescer's flush task, and the admission controller all run on the
loop), so no locking is needed.  Engine-side statistics that ride on
query results — plan-cache hits, degraded flags — are *harvested* into
these counters as responses are produced; the serving layer never
reaches into the engine's internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ServeStats:
    """Cumulative counters of one serving front end.

    Attributes:
        requests_total: HTTP/app requests received (parse failures
            included).
        responses_total: responses produced, any status.
        queries: read requests (query/count/knn, scalar or batched).
        mutations: write requests (insert/report/close/extend).
        engine_query_calls: engine-level read calls actually issued —
            with coalescing on, several queries share one call.
        coalesced_batches: flushes that merged >= 2 requests.
        coalesced_requests: requests served by those shared flushes.
        collapsed_requests: requests that shared another request's
            identical rectangle within a flush (request collapsing) —
            the engine evaluated their rectangle once for the batch.
        plan_cache_hits: engine plan-cache hits harvested from results.
        degraded_responses: 206-style responses (partial coverage).
        strict_failures: strict requests failed by a shard failure.
        overload_rejections: requests refused by admission control.
        deadline_rejections: requests whose deadline elapsed in queue.
        bad_requests: malformed requests (400).
        slides: window slides executed through the facade.
        saves: whole-directory saves executed through the facade.
        reshards: online generation flips committed through the facade.
        ingested_reports: reports accepted by insert/report/extend.
        queue_depth: current in-flight (admitted, unfinished) requests.
        queue_depth_peak: high-water mark of ``queue_depth``.
    """

    requests_total: int = 0
    responses_total: int = 0
    queries: int = 0
    mutations: int = 0
    engine_query_calls: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    collapsed_requests: int = 0
    plan_cache_hits: int = 0
    degraded_responses: int = 0
    strict_failures: int = 0
    overload_rejections: int = 0
    deadline_rejections: int = 0
    bad_requests: int = 0
    slides: int = 0
    saves: int = 0
    reshards: int = 0
    ingested_reports: int = 0
    queue_depth: int = 0
    queue_depth_peak: int = 0

    #: Extra gauges merged into :meth:`snapshot` by the owning app
    #: (gate state, bound port, ...).  Not part of the counter set.
    extra: dict[str, Any] = field(default_factory=dict)

    def enter_queue(self) -> None:
        self.queue_depth += 1
        if self.queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = self.queue_depth

    def leave_queue(self) -> None:
        self.queue_depth -= 1

    @property
    def coalesce_ratio(self) -> float:
        """Queries served per engine-level read call (>= 1.0 once any
        query ran; 1.0 means coalescing never merged anything)."""
        if self.engine_query_calls == 0:
            return 1.0
        return self.queries / self.engine_query_calls

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready copy of every counter plus derived ratios."""
        record: dict[str, Any] = {
            name: getattr(self, name)
            for name in (
                "requests_total", "responses_total", "queries",
                "mutations", "engine_query_calls", "coalesced_batches",
                "coalesced_requests", "collapsed_requests",
                "plan_cache_hits",
                "degraded_responses", "strict_failures",
                "overload_rejections", "deadline_rejections",
                "bad_requests", "slides", "saves", "reshards",
                "ingested_reports", "queue_depth", "queue_depth_peak")}
        record["coalesce_ratio"] = round(self.coalesce_ratio, 4)
        record.update(self.extra)
        return record
