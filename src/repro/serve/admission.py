"""Admission control: a bounded in-flight window with typed rejection.

The serving layer never queues unboundedly.  At most ``capacity``
requests may be in flight at once — admitted, lingering in the
coalescer, parked behind a slide, or executing on the engine pool.
Request ``capacity + 1`` is refused *before* any work happens with a
typed :class:`~repro.serve.errors.Overloaded` carrying the observed
depth and a suggested retry delay, which the HTTP layer turns into a
``503`` with a ``Retry-After`` header.  Refusing early keeps the
overload signal cheap (no parsing beyond the route, no engine work) and
keeps queue depth — and therefore queueing delay — bounded by
construction.

The retry hint can be jittered to de-synchronise retrying clients; the
randomness comes through an injected ``rng`` seam (a ``random.Random``
instance wired in at the CLI edge), never from module-level state, so
the serving layer stays deterministic under test (invariant R002).
"""

from __future__ import annotations

import contextlib
from typing import AsyncIterator, Callable

from .errors import Overloaded
from .stats import ServeStats


class AdmissionController:
    """Bounded admission window over the serving request stream.

    Args:
        capacity: maximum requests in flight at once (> 0).
        stats: shared serving counters (queue-depth gauge lives there).
        retry_after: base client back-off hint, in seconds, attached to
            rejections.
        rng: optional ``() -> float in [0, 1)`` seam; when present the
            hint becomes ``retry_after * (1 + rng())`` so rejected
            clients do not retry in lockstep.
    """

    def __init__(self, capacity: int, stats: ServeStats, *,
                 retry_after: float = 0.05,
                 rng: Callable[[], float] | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._stats = stats
        self._retry_after = retry_after
        self._rng = rng

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def depth(self) -> int:
        """Requests currently holding an admission slot."""
        return self._stats.queue_depth

    def _retry_hint(self) -> float:
        if self._rng is None:
            return self._retry_after
        return self._retry_after * (1.0 + self._rng())

    def try_admit(self) -> None:
        """Take one admission slot or raise :class:`Overloaded`.

        Pair every successful call with :meth:`release` (or use
        :meth:`admit`, which does it structurally).
        """
        depth = self._stats.queue_depth
        if depth >= self._capacity:
            self._stats.overload_rejections += 1
            raise Overloaded(depth, self._capacity, self._retry_hint())
        self._stats.enter_queue()

    def release(self) -> None:
        """Give back one admission slot."""
        self._stats.leave_queue()

    @contextlib.asynccontextmanager
    async def admit(self) -> AsyncIterator[None]:
        """Hold one admission slot for the duration of a request."""
        self.try_admit()
        try:
            yield
        finally:
            self.release()
