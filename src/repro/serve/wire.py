"""Transport-agnostic request/response shapes and JSON (de)serialisers.

The router handlers never see sockets: they receive a :class:`Request`
(method, path, query string, headers, raw body) and return a
:class:`Response` (status, JSON-ready payload, extra headers).  The
HTTP layer is one thin adapter over this pair, and the test suite can
drive the application object directly with no network at all.

Field extraction helpers raise :class:`~repro.serve.errors.BadRequest`
(HTTP 400) with a message naming the offending field — malformed input
is the *client's* typed failure mode, never a stack trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from json import JSONDecodeError, loads
from typing import Any

from ..core.records import Entry, Rect
from ..core.results import QueryResult, QueryStats
from ..engine.errors import ShardFailure
from .errors import BadRequest


@dataclass(frozen=True, slots=True)
class WireReport:
    """One position report decoded off the wire (conforms to
    :class:`~repro.core.records.ReportLike`)."""

    oid: int
    x: int
    y: int
    t: int


@dataclass
class Request:
    """One request, already parsed off the wire."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The body as a JSON object; ``{}`` for an empty body."""
        if not self.body:
            return {}
        try:
            payload = loads(self.body)
        except JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        return payload

    def deadline(self, default: float | None) -> float | None:
        """Per-request deadline from ``X-Deadline`` (seconds)."""
        raw = self.headers.get("x-deadline")
        if raw is None:
            return default
        try:
            deadline = float(raw)
        except ValueError as exc:
            raise BadRequest(
                f"X-Deadline is not a number: {raw!r}") from exc
        if deadline <= 0:
            raise BadRequest(f"X-Deadline must be > 0, got {deadline}")
        return deadline


@dataclass
class Response:
    """One JSON response, ready for the transport adapter."""

    status: int
    payload: dict[str, Any] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)


# -- request field extraction ---------------------------------------------------


def get_int(obj: dict[str, Any], key: str) -> int:
    """A required integer field (bools are *not* integers here)."""
    if key not in obj:
        raise BadRequest(f"missing field {key!r}")
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {key!r} must be an integer, "
                         f"got {value!r}")
    return value


def get_opt_int(obj: dict[str, Any], key: str) -> int | None:
    """An optional integer field; absent or ``null`` both mean None."""
    if obj.get(key) is None:
        return None
    return get_int(obj, key)


def get_bool(obj: dict[str, Any], key: str, default: bool) -> bool:
    value = obj.get(key, default)
    if not isinstance(value, bool):
        raise BadRequest(f"field {key!r} must be a boolean, "
                         f"got {value!r}")
    return value


def parse_rect(value: Any, *, key: str = "area") -> Rect:
    """``[x_lo, y_lo, x_hi, y_hi]`` -> :class:`Rect`."""
    if (not isinstance(value, (list, tuple)) or len(value) != 4
            or any(isinstance(v, bool) or not isinstance(v, int)
                   for v in value)):
        raise BadRequest(f"field {key!r} must be a 4-integer array "
                         f"[x_lo, y_lo, x_hi, y_hi], got {value!r}")
    try:
        return Rect(value[0], value[1], value[2], value[3])
    except ValueError as exc:
        raise BadRequest(f"field {key!r}: {exc}") from exc


def get_rect(obj: dict[str, Any], key: str = "area") -> Rect:
    if key not in obj:
        raise BadRequest(f"missing field {key!r}")
    return parse_rect(obj[key], key=key)


def get_rects(obj: dict[str, Any], key: str = "areas") -> list[Rect]:
    value = obj.get(key)
    if not isinstance(value, list) or not value:
        raise BadRequest(f"field {key!r} must be a non-empty array "
                         f"of rectangles")
    return [parse_rect(item, key=f"{key}[{i}]")
            for i, item in enumerate(value)]


def parse_reports(obj: dict[str, Any],
                  key: str = "reports") -> list[WireReport]:
    """``[[oid, x, y, t], ...]`` -> report records for ``extend``."""
    value = obj.get(key)
    if not isinstance(value, list):
        raise BadRequest(f"field {key!r} must be an array of "
                         f"[oid, x, y, t] reports")
    reports: list[WireReport] = []
    for i, item in enumerate(value):
        if (not isinstance(item, (list, tuple)) or len(item) != 4
                or any(isinstance(v, bool) or not isinstance(v, int)
                       for v in item)):
            raise BadRequest(f"field {key}[{i}] must be a 4-integer "
                             f"array [oid, x, y, t], got {item!r}")
        reports.append(WireReport(item[0], item[1], item[2], item[3]))
    return reports


# -- response serialisation -----------------------------------------------------


def entry_json(entry: Entry) -> list[int | None]:
    """Wire shape of one entry: ``[oid, x, y, s, d]`` (``d`` null when
    the entry is still current)."""
    return [entry.oid, entry.x, entry.y, entry.s, entry.d]


def stats_json(stats: QueryStats) -> dict[str, Any]:
    return {
        "node_accesses": stats.node_accesses,
        "candidates": stats.candidates,
        "plan_cache_hits": stats.plan_cache_hits,
        "degraded": stats.degraded,
    }


def failure_json(failure: ShardFailure) -> dict[str, Any]:
    return {
        "shard_id": failure.shard_id,
        "path": failure.path,
        "error": repr(failure.error),
    }


def result_json(result: QueryResult) -> dict[str, Any]:
    """Wire shape of one query result (degraded metadata included)."""
    failures = list(getattr(result, "failures", ()))
    payload: dict[str, Any] = {
        "entries": [entry_json(e) for e in result.entries],
        "stats": stats_json(result.stats),
        "degraded": bool(failures),
    }
    if failures:
        payload["failures"] = [failure_json(f) for f in failures]
    return payload
