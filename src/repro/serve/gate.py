"""The slide barrier: a write-preferring async reader-writer gate.

Queries hold the *read* side of the gate while they execute, so any
number of read requests can be in flight between window slides.  A
mutation — an insert, a batch extend, and above all ``advance_time``
(the slide itself) — takes the *write* side, which is exclusive and
write-preferring:

* **idle** — no writer active or waiting; readers are admitted freely.
* **draining** — a writer queued up.  New readers are parked (they keep
  their admission slots but do not reach the engine) while the in-flight
  readers finish.  Parked readers cannot starve the writer because
  nothing new enters the read side.
* **exclusive** — the drain completed; exactly one writer runs.  Queued
  writers are granted in FIFO order (the single-writer ingest lane —
  mutations execute in arrival order, preserving the stream's timestamp
  monotonicity), then every parked reader is released at once.

Deadlock-freedom with a full admission queue: the gate is *independent*
of the admission queue.  A writer only ever waits for already-running
readers (which finish on their own), never for queued work; queued
readers wait for the writer but hold nothing the writer needs.  The
barrier therefore always completes, even when admission is saturated —
the soak test exercises exactly this interleaving.

The gate is purely ``asyncio``-side state: every method must be called
from the event-loop thread, and no wall clock is involved (invariant
R002 — the serving layer is deterministic given a task schedule).
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
from typing import AsyncIterator


class SlideGate:
    """Write-preferring reader-writer gate for the serving facade.

    Readers share; writers are exclusive, FIFO among themselves, and
    preferred over new readers (a pending slide drains the read side
    instead of waiting behind an endless reader stream).
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writer = False
        self._read_waiters: collections.deque[asyncio.Future[None]] = \
            collections.deque()
        self._write_waiters: collections.deque[asyncio.Future[None]] = \
            collections.deque()

    # -- observability ---------------------------------------------------------

    @property
    def active_readers(self) -> int:
        """Readers currently holding the gate."""
        return self._readers

    @property
    def waiting_readers(self) -> int:
        """Readers parked behind a pending or active writer."""
        return len(self._read_waiters)

    @property
    def waiting_writers(self) -> int:
        """Writers queued for the exclusive side."""
        return len(self._write_waiters)

    @property
    def writer_active(self) -> bool:
        """True while the exclusive side is held."""
        return self._writer

    @property
    def state(self) -> str:
        """Barrier state: ``idle`` | ``draining`` | ``exclusive``."""
        if self._writer:
            return "exclusive"
        if self._write_waiters:
            return "draining"
        return "idle"

    # -- scheduling ------------------------------------------------------------

    def _wake(self) -> None:
        """Grant the gate to whoever is next.

        Writers first (FIFO), and only once the read side is drained;
        with no writer pending, every parked reader is released.
        """
        if self._writer:
            return
        while self._write_waiters and self._write_waiters[0].cancelled():
            self._write_waiters.popleft()
        if self._write_waiters:
            if self._readers == 0:
                waiter = self._write_waiters.popleft()
                self._writer = True
                waiter.set_result(None)
            return
        while self._read_waiters:
            waiter = self._read_waiters.popleft()
            if not waiter.cancelled():
                self._readers += 1
                waiter.set_result(None)

    # -- read side -------------------------------------------------------------

    async def acquire_read(self) -> None:
        """Join the read side; parks while a writer is pending/active."""
        if not self._writer and not self._write_waiters:
            self._readers += 1
            return
        waiter: asyncio.Future[None] = \
            asyncio.get_running_loop().create_future()
        self._read_waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # Granted between resolution and resumption: give the
                # grant back so the drain accounting stays exact.
                self.release_read()
            else:
                with contextlib.suppress(ValueError):
                    self._read_waiters.remove(waiter)
            raise

    def release_read(self) -> None:
        """Leave the read side; the last reader out completes a drain."""
        if self._readers <= 0:
            raise AssertionError("release_read() without a matching "
                                 "acquire_read()")
        self._readers -= 1
        if self._readers == 0:
            self._wake()

    @contextlib.asynccontextmanager
    async def read(self) -> AsyncIterator[None]:
        await self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    async def acquire_write(self) -> None:
        """Queue for the exclusive side (FIFO); returns once granted."""
        waiter: asyncio.Future[None] = \
            asyncio.get_running_loop().create_future()
        self._write_waiters.append(waiter)
        self._wake()
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # Granted but abandoned: release so the gate moves on.
                self.release_write()
            else:
                with contextlib.suppress(ValueError):
                    self._write_waiters.remove(waiter)
                self._wake()
            raise

    def release_write(self) -> None:
        """Release the exclusive side; wakes the next writer or all
        parked readers."""
        if not self._writer:
            raise AssertionError("release_write() without a matching "
                                 "acquire_write()")
        self._writer = False
        self._wake()

    @contextlib.asynccontextmanager
    async def write(self) -> AsyncIterator[None]:
        await self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
