"""Minimal HTTP/1.1 adapter over :class:`~repro.serve.app.ServeApp`.

Built on ``asyncio.start_server`` only — no web framework, no third
party dependency.  The adapter parses a request line, headers, and an
optional ``Content-Length`` body; hands the :class:`Request` to the
application; and writes the JSON response back with keep-alive
connection reuse.  Anything the parser cannot stomach gets a 400 and
the connection closes — malformed framing never reaches the app.

Limits are deliberate and small (this is an index server, not a file
server): request line and headers are capped at 16 KiB, bodies at
8 MiB; chunked transfer encoding is not supported.
"""

from __future__ import annotations

import asyncio
from json import dumps
from urllib.parse import parse_qsl, urlsplit

from .app import ServeApp
from .wire import Request, Response

#: Cap on one header line (request line included).
MAX_LINE = 16 * 1024
#: Cap on the header block as a whole.
MAX_HEADER_BYTES = 16 * 1024
#: Cap on a request body (an ``/extend`` batch is the big one).
MAX_BODY = 8 * 1024 * 1024

_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "HEAD"})


class _BadFraming(Exception):
    """The bytes on the wire are not a parseable HTTP/1.1 request."""


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _BadFraming("truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise _BadFraming("request line too long") from exc
    if len(line) > MAX_LINE:
        raise _BadFraming("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or parts[0] not in _METHODS \
            or not parts[2].startswith("HTTP/1."):
        raise _BadFraming(f"malformed request line: {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise _BadFraming("truncated header block") from exc
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise _BadFraming("header block too large")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadFraming(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise _BadFraming("unparseable Content-Length") from exc
        if length < 0 or length > MAX_BODY:
            raise _BadFraming(f"Content-Length {length} out of range")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise _BadFraming("truncated body") from exc
    elif headers.get("transfer-encoding"):
        raise _BadFraming("chunked transfer encoding not supported")

    return Request(method=method, path=split.path or "/", query=query,
                   headers=headers, body=body)


_REASONS = {200: "OK", 206: "Partial Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


def _encode_response(response: Response, *, keep_alive: bool) -> bytes:
    body = dumps(response.payload, separators=(",", ":"),
                 sort_keys=True).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    lines.extend(f"{name}: {value}"
                 for name, value in response.headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class HttpServer:
    """One listening socket serving a :class:`ServeApp`.

    Args:
        app: the application to serve.
        host: bind address (loopback by default).
        port: bind port; ``0`` picks a free one (read it back from
            :attr:`port` once started).
    """

    def __init__(self, app: ServeApp, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._app = app
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port,
            limit=MAX_LINE)

    async def aclose(self) -> None:
        """Stop listening and wait for connection handlers to finish."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadFraming as exc:
                    self._app.stats.requests_total += 1
                    self._app.stats.bad_requests += 1
                    self._app.stats.responses_total += 1
                    writer.write(_encode_response(
                        Response(400, {"error": "bad_request",
                                       "detail": str(exc)}),
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                response = await self._app.handle(request)
                writer.write(_encode_response(response,
                                              keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            # The client hung up mid-exchange; nothing to answer.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def render_curl_examples(address: str) -> list[str]:
    """Copy-pasteable smoke commands printed by ``repro serve``."""
    return [
        f"curl -s {address}/healthz",
        f"curl -s -X POST {address}/report "
        f"-d '{{\"oid\": 1, \"x\": 10, \"y\": 20, \"t\": 0}}'",
        f"curl -s '{address}/query?area=0,0,63,63&t_lo=0&t_hi=0'",
        f"curl -s {address}/stats",
    ]


__all__ = ["HttpServer", "render_curl_examples", "MAX_BODY",
           "MAX_LINE", "MAX_HEADER_BYTES"]
