"""Read-side routes: interval queries, counts, k-nearest-neighbour.

The scalar ``/query`` route goes through the coalescer — concurrent
requests sharing a temporal signature merge into one engine call; the
batch, count, and knn routes call the facade directly (a batch *is*
already the merged form, counts and knn have no batched engine
entry point).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import BadRequest
from ..wire import (Request, Response, get_bool, get_int, get_opt_int,
                    get_rect, get_rects, result_json)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ServeApp


def _query_object(request: Request) -> dict[str, Any]:
    """Body JSON for POST; query-string fields for GET."""
    if request.method != "GET":
        return request.json()
    obj: dict[str, Any] = {}
    for key, raw in request.query.items():
        if key == "area":
            parts = raw.split(",")
            try:
                obj[key] = [int(p) for p in parts]
            except ValueError as exc:
                raise BadRequest(f"query parameter 'area' must be "
                                 f"x_lo,y_lo,x_hi,y_hi: {raw!r}") from exc
        elif key == "strict":
            if raw not in ("true", "false"):
                raise BadRequest(f"query parameter 'strict' must be "
                                 f"true or false, got {raw!r}")
            obj[key] = raw == "true"
        else:
            try:
                obj[key] = int(raw)
            except ValueError as exc:
                raise BadRequest(f"query parameter {key!r} must be an "
                                 f"integer, got {raw!r}") from exc
    return obj


async def query(app: "ServeApp", request: Request) -> Response:
    """Scalar interval query (coalesced under the covers)."""
    obj = _query_object(request)
    area = get_rect(obj)
    t_lo = get_int(obj, "t_lo")
    t_hi = get_int(obj, "t_hi")
    window = get_opt_int(obj, "window")
    strict = get_bool(obj, "strict", True)
    result = await app.coalescer.query_interval(
        area, t_lo, t_hi, window, strict=strict)
    return app.query_response(result)


async def query_batch(app: "ServeApp", request: Request) -> Response:
    """Multi-rectangle query: the client-side merged form."""
    obj = request.json()
    areas = get_rects(obj)
    t_lo = get_int(obj, "t_lo")
    t_hi = get_int(obj, "t_hi")
    window = get_opt_int(obj, "window")
    strict = get_bool(obj, "strict", True)
    app.stats.queries += 1
    app.stats.engine_query_calls += 1
    batch = await app.engine.query_interval_many(
        areas, t_lo, t_hi, window, strict=strict)
    app.stats.plan_cache_hits += batch.stats.plan_cache_hits
    results = [result_json(r) for r in batch.results]
    degraded = any(r["degraded"] for r in results)
    if degraded:
        app.stats.degraded_responses += 1
    return Response(206 if degraded else 200,
                    {"results": results, "degraded": degraded})


async def count(app: "ServeApp", request: Request) -> Response:
    """Interval count (no entry materialisation on the wire)."""
    obj = _query_object(request)
    area = get_rect(obj)
    t_lo = get_int(obj, "t_lo")
    t_hi = get_int(obj, "t_hi")
    window = get_opt_int(obj, "window")
    strict = get_bool(obj, "strict", True)
    app.stats.queries += 1
    app.stats.engine_query_calls += 1
    n, stats = await app.engine.count_interval(
        area, t_lo, t_hi, window, strict=strict)
    app.stats.plan_cache_hits += stats.plan_cache_hits
    if stats.degraded:
        app.stats.degraded_responses += 1
    return Response(206 if stats.degraded else 200,
                    {"count": n, "degraded": stats.degraded})


async def knn(app: "ServeApp", request: Request) -> Response:
    """k nearest neighbours of a point over a time interval."""
    obj = _query_object(request)
    x = get_int(obj, "x")
    y = get_int(obj, "y")
    k = get_int(obj, "k")
    t_lo = get_int(obj, "t_lo")
    t_hi = get_opt_int(obj, "t_hi")
    window = get_opt_int(obj, "window")
    strict = get_bool(obj, "strict", True)
    app.stats.queries += 1
    app.stats.engine_query_calls += 1
    result = await app.engine.query_knn(
        x, y, k, t_lo, t_hi, window, strict=strict)
    return app.query_response(result)


ROUTES = (
    ("GET", "/query", query),
    ("POST", "/query", query),
    ("POST", "/query/batch", query_batch),
    ("GET", "/count", count),
    ("POST", "/count", count),
    ("GET", "/knn", knn),
    ("POST", "/knn", knn),
)

__all__ = ["ROUTES", "query", "query_batch", "count", "knn"]
