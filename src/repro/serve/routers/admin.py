"""Control-plane routes: slide, save, health, statistics.

These routes bypass admission control on purpose.  The slide barrier
must be able to run — and the operator must be able to observe the
server — precisely when the data plane is saturated; gating them behind
the same bounded queue they are meant to relieve would invert the
design (the soak test drives a slide through a deliberately full
admission queue to prove this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..wire import Request, Response, get_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ServeApp


async def slide(app: "ServeApp", request: Request) -> Response:
    """Advance stream time: drain in-flight reads, slide, release."""
    obj = request.json()
    now = get_int(obj, "now")
    await app.engine.advance_time(now)
    return Response(200, {"ok": True, "now": app.engine.now})


async def save(app: "ServeApp", request: Request) -> Response:
    """Whole-directory save (two-phase epoch commit under the hood)."""
    await app.engine.save()
    return Response(200, {"ok": True})


async def reshard(app: "ServeApp", request: Request) -> Response:
    """Online reshard: rebuild the directory at a new shard count.

    Serving continues throughout — reads never park, writes stall only
    for the checkpoint/stage and flip sections.  A second reshard (or a
    save) racing an in-flight one gets a 409.
    """
    obj = request.json()
    n_shards = get_int(obj, "n_shards")
    report = await app.engine.reshard(n_shards)
    return Response(200, {
        "ok": True,
        "old_n_shards": report.old_n_shards,
        "n_shards": report.new_n_shards,
        "epoch": report.epoch,
        "generation": report.generation,
        "entries": report.entries,
    })


async def healthz(app: "ServeApp", request: Request) -> Response:
    """Liveness: answers from loop state only, no engine call."""
    return Response(200, {
        "ok": True,
        "gate": app.engine.gate.state,
        "queue_depth": app.stats.queue_depth,
    })


async def stats(app: "ServeApp", request: Request) -> Response:
    """Cumulative serving counters plus live gauges."""
    return Response(200, app.stats_snapshot())


ROUTES = (
    ("POST", "/slide", slide),
    ("POST", "/save", save),
    ("POST", "/reshard", reshard),
    ("GET", "/healthz", healthz),
    ("GET", "/stats", stats),
)

#: Routes that skip admission control (see module docstring).
UNGATED = frozenset(
    (method, path) for method, path, _ in ROUTES)

__all__ = ["ROUTES", "UNGATED", "slide", "save", "reshard", "healthz",
           "stats"]
