"""Write-side routes: the single-writer ingest lane over HTTP.

Every handler here runs on the exclusive side of the slide gate, so
mutations execute one at a time in arrival order — the HTTP surface
preserves the report stream's timestamp monotonicity contract exactly
as the in-process engine API does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..wire import (Request, Response, get_int, get_opt_int,
                    parse_reports)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..app import ServeApp


async def insert(app: "ServeApp", request: Request) -> Response:
    """Insert one entry with an explicit (possibly known) duration."""
    obj = request.json()
    oid = get_int(obj, "oid")
    x = get_int(obj, "x")
    y = get_int(obj, "y")
    s = get_int(obj, "s")
    d = get_opt_int(obj, "d")
    await app.engine.insert(oid, x, y, s, d)
    return Response(200, {"ok": True})


async def report(app: "ServeApp", request: Request) -> Response:
    """Append one position report (current entry, open duration)."""
    obj = request.json()
    oid = get_int(obj, "oid")
    x = get_int(obj, "x")
    y = get_int(obj, "y")
    t = get_int(obj, "t")
    await app.engine.report(oid, x, y, t)
    return Response(200, {"ok": True})


async def close_object(app: "ServeApp", request: Request) -> Response:
    """Close an object's current entry at time ``t``."""
    obj = request.json()
    oid = get_int(obj, "oid")
    t = get_int(obj, "t")
    closed = await app.engine.close_object(oid, t)
    return Response(200, {"ok": True, "closed": closed})


async def extend(app: "ServeApp", request: Request) -> Response:
    """Bulk-append a batch of reports in one exclusive pass."""
    obj = request.json()
    reports = parse_reports(obj)
    accepted = await app.engine.extend(reports)
    return Response(200, {"ok": True, "accepted": accepted})


ROUTES = (
    ("POST", "/insert", insert),
    ("POST", "/report", report),
    ("POST", "/close", close_object),
    ("POST", "/extend", extend),
)

__all__ = ["ROUTES", "insert", "report", "close_object", "extend"]
