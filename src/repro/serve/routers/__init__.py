"""Route table of the serving front end.

Three routers — read side (:mod:`.query`), the single-writer ingest
lane (:mod:`.ingest`), and the control plane (:mod:`.admin`) — each
export a ``ROUTES`` tuple of ``(method, path, handler)``; this package
concatenates them and re-exports the control plane's ``UNGATED`` set
(routes that bypass admission so the slide and the health probes work
under saturation).
"""

from __future__ import annotations

from . import admin, ingest, query
from .admin import UNGATED

ROUTES = query.ROUTES + ingest.ROUTES + admin.ROUTES

__all__ = ["ROUTES", "UNGATED", "admin", "ingest", "query"]
